"""Extension experiment E15b — TORA: reference levels and partition detection.

TORA is the deployed descendant of the partial-reversal idea the paper
analyses: the reference-level machinery performs the *partial* reversal
(only the links towards not-yet-reversed neighbours flip), and the reflection
bit turns the non-terminating partition behaviour of plain Gafni–Bertsekas
reversal into explicit partition detection plus route erasure.

Harness:
* sequential single-link failures on a 5×5 grid — every failure is repaired,
  maintenance work stays local, heights stay distinct (acyclic);
* a partitioning cut on a chain — the partition is detected, the cut-off
  component erases its routes in bounded work (contrast with experiment E17's
  unbounded cascade for plain reversal under partition);
* link restoration — routes are rebuilt for the previously erased component.

Expected shape: 100% repair for non-partitioning failures; bounded work and
explicit detection for partitioning ones.
"""

from __future__ import annotations

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E15b", __name__)

from repro.routing.tora import ToraRouter
from repro.topology.generators import chain_instance, grid_instance


def _still_connected_without(router, u, v) -> bool:
    """Whether the current link set minus {u, v} keeps the graph connected."""
    links = set(router.links) - {frozenset((u, v))}
    nodes = router.instance.nodes
    adjacency = {node: [] for node in nodes}
    for link in links:
        a, b = tuple(link)
        adjacency[a].append(b)
        adjacency[b].append(a)
    seen = {nodes[0]}
    frontier = [nodes[0]]
    while frontier:
        current = frontier.pop()
        for nxt in adjacency[current]:
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return len(seen) == len(nodes)


def _grid_failure_sweep():
    instance = grid_instance(5, 5, oriented_towards_destination=True)
    router = ToraRouter(instance)
    rows = []
    failed = 0
    for u, v in instance.initial_edges:
        if failed >= 14:
            break
        if frozenset((u, v)) not in router.links:
            continue
        if not _still_connected_without(router, u, v):
            continue  # only study non-partitioning failures here
        before = router.maintenance_steps
        router.fail_link(u, v)
        failed += 1
        rows.append(
            (
                f"{u}-{v}",
                router.maintenance_steps - before,
                f"{router.routed_fraction():.2f}",
                "yes" if router.is_acyclic() else "NO",
            )
        )
    return router, rows, failed


def test_e15b_tora_grid_failures(benchmark):
    router, rows, failed = benchmark.pedantic(_grid_failure_sweep, rounds=1, iterations=1)
    print_table(
        "E15b — TORA maintenance for successive link failures on a 5x5 grid",
        ["failed link", "maintenance steps", "routed fraction", "acyclic"],
        rows,
    )
    record(benchmark, experiment="E15b-grid", failures=failed, summary=router.summary())
    assert router.routed_fraction() == 1.0
    assert router.partitions_detected == 0
    assert router.is_acyclic()


def _partition_scenario():
    instance = chain_instance(12, towards_destination=True)
    router = ToraRouter(instance)
    router.fail_link(1, 0)  # cuts nodes 1..11 off the destination
    after_cut = router.summary()
    router.restore_link(1, 0)
    after_restore = router.summary()
    return after_cut, after_restore


def test_e15b_tora_partition_detection(benchmark):
    after_cut, after_restore = benchmark.pedantic(_partition_scenario, rounds=1, iterations=1)
    print(
        "\nE15b partition: detected={:d}, maintenance steps={:d}, erased nodes={:d}; "
        "after restore routed fraction={:.2f}".format(
            int(after_cut["partitions_detected"]),
            int(after_cut["maintenance_steps"]),
            int(after_cut["erased_nodes"]),
            after_restore["routed_fraction"],
        )
    )
    record(benchmark, experiment="E15b-partition", after_cut=after_cut,
           after_restore=after_restore)
    assert after_cut["partitions_detected"] >= 1
    # bounded work: far below the quadratic cascade plain reversal would attempt
    assert after_cut["maintenance_steps"] < 12 ** 2
    assert after_restore["routed_fraction"] == 1.0
