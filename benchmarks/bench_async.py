"""Experiment E20 — the compiled asynchronous engine vs the object oracle.

Paper context: the asynchronous message-passing deployment (E17) is the
operational form of the paper's claims; opening delay × loss × churn campaign
cross-products at scale required compiling that layer.  This benchmark pins
the speedup story: :class:`~repro.distributed.fast_network.FastAsyncNetwork`
must run an E17-style quiescence workload at least several times faster than
the object-level :class:`~repro.distributed.network.AsyncLinkReversalNetwork`
while producing field-for-field identical reports (the differential suite
pins exact equality; this benchmark re-asserts it on the timed workload).

Harness: bad chain, grid and random-DAG families, partial and full reversal,
over the deterministic delay models (``zero``, ``fixed`` — the campaign
engine's fastest paths); quiescence times of both engines are measured on
identically constructed networks.  ``bench_async_quiescence`` in
``BENCH_baseline.json`` tracks the fast engine end-to-end (construction +
quiescence), which is what a campaign worker pays per scenario.

Expected shape: ~10x object/fast quiescence ratio locally; the CI assertion
is deliberately conservative (>3x) to tolerate noisy shared runners.
"""

from __future__ import annotations

import time

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E20", __name__)

from repro.distributed.fast_network import FastAsyncNetwork
from repro.distributed.network import DELAY_MODELS, AsyncLinkReversalNetwork
from repro.distributed.protocol import ReversalMode
from repro.topology.generators import (
    chain_instance,
    grid_instance,
    random_dag_instance,
)

FAMILIES = {
    "bad-chain-60": lambda: chain_instance(60, towards_destination=False),
    "grid-8x8": lambda: grid_instance(8, 8, oriented_towards_destination=False),
    "random-dag-60": lambda: random_dag_instance(60, edge_probability=0.2, seed=14),
}

#: The deterministic delay models: the ring-buffer fast paths campaigns use.
MODELS = ("zero", "fixed")


def _build_networks(network_class):
    networks = []
    for name, factory in FAMILIES.items():
        for mode in (ReversalMode.PARTIAL, ReversalMode.FULL):
            for model in MODELS:
                min_delay, max_delay, fifo = DELAY_MODELS[model]
                networks.append(
                    (
                        name,
                        mode,
                        model,
                        network_class(
                            factory(),
                            mode=mode,
                            min_delay=min_delay,
                            max_delay=max_delay,
                            seed=7,
                            fifo=fifo,
                        ),
                    )
                )
    return networks


def _run_quiescence(networks):
    return [
        (name, mode, model, network.run_to_quiescence())
        for name, mode, model, network in networks
    ]


def _measure():
    """The tracked workload: fast-engine construction + quiescence."""
    return _run_quiescence(_build_networks(FastAsyncNetwork))


def _timed_quiescence(network_class, repeats: int = 3):
    """Best-of-N quiescence wall time on freshly built networks."""
    best = float("inf")
    reports = None
    for _ in range(repeats):
        networks = _build_networks(network_class)
        start = time.perf_counter()
        reports = _run_quiescence(networks)
        best = min(best, time.perf_counter() - start)
    return best, reports


def test_e20_async_quiescence_fast_vs_object(benchmark):
    fast_reports = benchmark.pedantic(_measure, rounds=1, iterations=1)

    fast_seconds, fast_timed = _timed_quiescence(FastAsyncNetwork)
    object_seconds, object_reports = _timed_quiescence(AsyncLinkReversalNetwork)
    speedup = object_seconds / fast_seconds

    rows = []
    for (name, mode, model, fast_report), (_, _, _, object_report) in zip(
        fast_timed, object_reports
    ):
        assert fast_report == object_report, (name, mode, model)
        rows.append(
            (
                name,
                mode.value,
                model,
                fast_report.events_dispatched,
                fast_report.total_reversals,
                "yes" if fast_report.destination_oriented else "NO",
                "yes" if fast_report.acyclic else "NO",
            )
        )
    print_table(
        "E20 — compiled async engine (quiescence workload, reports equal to oracle)",
        ["family", "mode", "delay", "events", "reversals", "oriented", "acyclic"],
        rows,
    )
    print(
        f"\nE20 speedup: fast {fast_seconds * 1000:.1f} ms vs object "
        f"{object_seconds * 1000:.1f} ms -> x{speedup:.1f}"
    )
    record(
        benchmark,
        experiment="E20",
        fast_seconds=round(fast_seconds, 6),
        object_seconds=round(object_seconds, 6),
        speedup=round(speedup, 2),
    )
    for _, _, _, report in fast_reports:
        assert report.destination_oriented
        assert report.acyclic
    # locally ~10x; keep the CI floor conservative for noisy runners
    assert speedup > 3.0


def test_e20_lossy_uniform_parity_and_acyclicity(benchmark):
    def _lossy():
        instance = grid_instance(5, 5, oriented_towards_destination=False)
        network = FastAsyncNetwork(
            instance, min_delay=0.5, max_delay=2.0, loss_probability=0.2, seed=9
        )
        return network.run_with_beacons(max_rounds=20)

    report = benchmark.pedantic(_lossy, rounds=1, iterations=1)
    instance = grid_instance(5, 5, oriented_towards_destination=False)
    oracle = AsyncLinkReversalNetwork(
        instance, min_delay=0.5, max_delay=2.0, loss_probability=0.2, seed=9
    ).run_with_beacons(max_rounds=20)
    assert report == oracle
    record(
        benchmark,
        experiment="E20-lossy",
        messages_lost=report.messages_lost,
        oriented=report.destination_oriented,
        acyclic=report.acyclic,
    )
    assert report.acyclic
    assert report.destination_oriented
