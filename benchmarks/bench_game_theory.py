"""Experiment E11 — the game-theoretic PR vs FR comparison (Charron-Bost et al.).

Paper context (Section 1): viewed as a game, the all-FR strategy profile is a
Nash equilibrium with the largest social cost among equilibria, while the
all-PR profile, whenever it is an equilibrium, attains the global optimum.

Harness: for several small instances, enumerate every profile of the
restricted {FULL, PARTIAL} strategy game, mark the Nash equilibria, and report
the social costs of the FR profile, the PR profile, the optimum and the most
expensive equilibrium.

Expected shape per instance: FR is an equilibrium; FR cost = max equilibrium
cost; PR cost = optimum whenever PR is an equilibrium; PR cost <= FR cost.
"""

from __future__ import annotations

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E11", __name__)

from repro.analysis.game_theory import (
    analyse_game,
    full_reversal_profile,
    partial_reversal_profile,
)
from repro.topology.generators import (
    chain_instance,
    grid_instance,
    star_instance,
    worst_case_chain_instance,
)


INSTANCES = {
    "chain-4bad": lambda: worst_case_chain_instance(4),
    "chain-5bad": lambda: worst_case_chain_instance(5),
    "chain-middle-dest": lambda: chain_instance(6, towards_destination=False,
                                                destination_at_end=False),
    "star-5": lambda: star_instance(5, destination_is_center=True),
    "grid-2x3": lambda: grid_instance(2, 3, oriented_towards_destination=False),
}


def _analyse_all():
    rows = []
    checks = []
    for name, factory in INSTANCES.items():
        instance = factory()
        analysis = analyse_game(instance)
        fr_profile = full_reversal_profile(instance)
        pr_profile = partial_reversal_profile(instance)
        fr_cost = analysis.cost_of(fr_profile)
        pr_cost = analysis.cost_of(pr_profile)
        equilibrium_costs = analysis.equilibrium_costs()
        fr_is_ne = fr_profile in analysis.equilibria
        pr_is_ne = pr_profile in analysis.equilibria
        rows.append(
            (
                name,
                len(instance.non_destination_nodes),
                fr_cost,
                pr_cost,
                analysis.optimum_cost,
                len(analysis.equilibria),
                max(equilibrium_costs) if equilibrium_costs else "-",
                "yes" if fr_is_ne else "no",
                "yes" if pr_is_ne else "no",
            )
        )
        checks.append(
            {
                "fr_is_ne": fr_is_ne,
                "fr_cost_is_max_ne": (not equilibrium_costs) or fr_cost == max(equilibrium_costs),
                "pr_optimal_if_ne": (not pr_is_ne) or pr_cost == analysis.optimum_cost,
                "pr_not_worse": pr_cost <= fr_cost,
            }
        )
    return rows, checks


def test_e11_game_theoretic_comparison(benchmark):
    rows, checks = benchmark.pedantic(_analyse_all, rounds=1, iterations=1)
    print_table(
        "E11 — restricted FR/PR strategy game (greedy schedule, all profiles enumerated)",
        ["instance", "players", "FR cost", "PR cost", "optimum", "#NE", "max NE cost",
         "FR is NE", "PR is NE"],
        rows,
    )
    record(benchmark, experiment="E11", rows=rows)
    for check in checks:
        assert check["fr_is_ne"]
        assert check["fr_cost_is_max_ne"]
        assert check["pr_optimal_if_ne"]
        assert check["pr_not_worse"]
