"""Experiment E14 — Gafni–Bertsekas height labelings vs the list-based algorithms.

Paper context (Section 1): the original acyclicity proof assigns each node a
pair (FR) or triple (PR) of integers forming a total order; edges point from
the larger to the smaller height, so acyclicity is structural.

Harness: on several families, run the height automata and the corresponding
list-based automata to quiescence and compare (a) convergence, (b) destination
orientation, (c) work.  For FR the height formulation performs *exactly* the
same steps; for PR the height formulation is the Gafni–Bertsekas variant,
which does comparable (partial) work — far below FR's quadratic blow-up on
the worst-case chain.

Expected shape: identical step counts for FR vs FR-heights; PR-heights within
the same order of magnitude as list-PR and well below FR on the chain family.
"""

from __future__ import annotations

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E14", __name__)

from repro.automata.executions import run
from repro.core.full_reversal import FullReversal
from repro.core.heights import GBFullReversalHeights, GBPartialReversalHeights
from repro.core.one_step_pr import OneStepPartialReversal
from repro.schedulers.sequential import SequentialScheduler
from repro.topology.generators import (
    grid_instance,
    random_dag_instance,
    worst_case_chain_instance,
)


FAMILIES = {
    "worst-chain-12": lambda: worst_case_chain_instance(12),
    "grid-4x4": lambda: grid_instance(4, 4, oriented_towards_destination=False),
    "random-dag-30": lambda: random_dag_instance(30, edge_probability=0.12, seed=6),
}


def _measure():
    rows = []
    checks = []
    for name, factory in FAMILIES.items():
        instance = factory()
        results = {}
        for label, automaton_class in (
            ("FR", FullReversal),
            ("FR-heights", GBFullReversalHeights),
            ("PR", OneStepPartialReversal),
            ("PR-heights", GBPartialReversalHeights),
        ):
            outcome = run(automaton_class(instance), SequentialScheduler())
            results[label] = outcome
        rows.append(
            (
                name,
                results["FR"].steps_taken,
                results["FR-heights"].steps_taken,
                results["PR"].steps_taken,
                results["PR-heights"].steps_taken,
            )
        )
        checks.append(
            {
                "all_converge": all(r.converged for r in results.values()),
                "all_oriented": all(
                    r.final_state.is_destination_oriented() for r in results.values()
                ),
                "fr_heights_exact": results["FR"].steps_taken == results["FR-heights"].steps_taken,
                "pr_heights_below_fr": results["PR-heights"].steps_taken
                <= results["FR"].steps_taken,
            }
        )
    return rows, checks


def test_e14_height_formulations(benchmark):
    rows, checks = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print_table(
        "E14 — height-based vs list-based link reversal (node steps to converge)",
        ["family", "FR", "FR-heights", "PR", "PR-heights"],
        rows,
    )
    record(benchmark, experiment="E14", rows=rows)
    for check in checks:
        assert check["all_converge"]
        assert check["all_oriented"]
        assert check["fr_heights_exact"]
        assert check["pr_heights_below_fr"]
