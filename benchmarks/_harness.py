"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one experiment from DESIGN.md (E1–E17).
Because the paper is a theory paper with no numeric tables, the "result" of
each experiment is either a universally-quantified check (reported as
``checked``/``violations`` counts in ``extra_info``) or a measured series
(reported as rows printed to stdout and attached to ``extra_info``).

Run with::

    pytest benchmarks/ --benchmark-only

The ``-s`` flag additionally shows the printed experiment tables.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

#: Experiment IDs claimed by benchmark modules (``claim_experiment``), so a
#: new module cannot silently reuse a taken ID.  The data-plane workload
#: landing as "E21" while ``bench_batch`` already reported E21 is exactly the
#: collision this guards against (it is E23; E21/E22 belong to
#: ``bench_batch``/``bench_telemetry``).
_EXPERIMENT_CLAIMS: dict = {}


def claim_experiment(experiment_id: str, module: str) -> str:
    """Register ``experiment_id`` as owned by ``module``; reject duplicates.

    Called at import time by each benchmark module for every base experiment
    ID it reports (variant suffixes like ``E20-lossy`` share the module's
    base claim).  Re-claiming from the same module is a no-op, so repeated
    imports under pytest stay quiet; a claim from a *different* module raises.
    """
    owner = _EXPERIMENT_CLAIMS.get(experiment_id)
    if owner is not None and owner != module:
        raise ValueError(
            f"experiment ID {experiment_id!r} is already claimed by {owner}; "
            f"{module} must use a fresh ID"
        )
    _EXPERIMENT_CLAIMS[experiment_id] = module
    return experiment_id


def claimed_experiments() -> dict:
    """A copy of the current ID → module claim table (for tests)."""
    return dict(_EXPERIMENT_CLAIMS)


def record(benchmark, **info) -> None:
    """Attach experiment outputs to the benchmark record and echo them."""
    for key, value in info.items():
        benchmark.extra_info[key] = value


def print_table(title: str, headers, rows) -> None:
    """Print a small fixed-width table (the 'paper row' output of an experiment)."""
    rows = [tuple(row) for row in rows]
    widths = []
    for i, header in enumerate(headers):
        cell_widths = [len(str(row[i])) for row in rows] if rows else [0]
        widths.append(max(len(str(header)), *cell_widths))
    print(f"\n== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


# ----------------------------------------------------------------------
# perf-trajectory baseline (BENCH_baseline.json)
# ----------------------------------------------------------------------
def _baseline_workloads():
    """The timed workloads tracked across PRs, keyed by benchmark module."""
    from benchmarks.bench_async import _measure as _measure_async
    from benchmarks.bench_batch import _measure_batch, _measure_kernel
    from benchmarks.bench_dataplane import _measure_dataplane
    from benchmarks.bench_dummy_steps import _measure
    from benchmarks.bench_faults import _measure_armed as _measure_faults
    from benchmarks.bench_model_check import _measure as _measure_model_check
    from benchmarks.bench_model_check import _measure_scalar as _measure_model_check_scalar
    from benchmarks.bench_simulation import _check_all_families
    from benchmarks.bench_sweep import _measure_1worker, _measure_pool
    from benchmarks.bench_telemetry import _measure_enabled as _measure_telemetry
    from benchmarks.bench_worst_case import _fr_sweep, _pr_worst_orientation_sweep

    return {
        "bench_simulation": _check_all_families,
        "bench_worst_case_fr_sweep": lambda: _fr_sweep()[0],
        "bench_worst_case_pr_exhaustive": _pr_worst_orientation_sweep,
        "bench_dummy_steps": _measure,
        "bench_sweep_1worker": _measure_1worker,
        "bench_sweep_pool": _measure_pool,
        # the model-check pair shares one verification workload: their
        # timing ratio is the vectorised frontier's speedup over the scalar
        # per-state loop (differentially pinned to identical counts)
        "bench_model_check": _measure_model_check,
        "bench_model_check_scalar": _measure_model_check_scalar,
        "bench_async_quiescence": _measure_async,
        # the batch pair shares one workload: their timing ratio is the
        # batched engine's speedup over the per-scenario kernel path
        "bench_batch_sweep": _measure_batch,
        "bench_batch_sweep_kernel": _measure_kernel,
        # same workload again inside a telemetry session; drift against
        # bench_batch_sweep is the enabled-path instrumentation overhead
        "bench_telemetry": _measure_telemetry,
        # >1M packets through the SoA data-plane engine on a converged grid
        "bench_dataplane": _measure_dataplane,
        # a pooled sweep with the chaos plane armed but inert: drift against
        # bench_sweep_pool is the injection/heartbeat/CRC overhead
        "bench_faults": _measure_faults,
    }


def measure_baseline(repeats: int = 3) -> dict:
    """Time every tracked workload (best of ``repeats``) and return seconds.

    Rounded to microseconds: the kernel-engine workloads run in fractions of
    a millisecond, where the old 4-decimal rounding quantum (0.1 ms) was a
    double-digit percentage of the measurement and made the CI regression
    gate flap on quantisation alone.
    """
    timings = {}
    for name, workload in _baseline_workloads().items():
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            workload()
            best = min(best, time.perf_counter() - start)
        timings[name] = round(best, 6)
    return timings


def main(argv=None) -> None:
    """Record the tracked workload timings to a JSON file.

    ``python -m benchmarks._harness --output BENCH_baseline.json`` writes a
    fresh record; with ``--merge-seed seed.json`` the previously measured seed
    timings are folded in alongside, with per-workload speedups.
    """
    import argparse

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--output", default="BENCH_baseline.json")
    parser.add_argument("--label", default="current")
    parser.add_argument("--merge-seed", default=None,
                        help="JSON file with seed timings to record alongside")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    timings = measure_baseline(repeats=args.repeats)
    payload = {args.label: timings}
    if args.merge_seed:
        seed = json.loads(Path(args.merge_seed).read_text())
        seed_timings = seed.get("seed", seed)
        payload["seed"] = seed_timings
        payload["speedup_vs_seed"] = {
            name: round(seed_timings[name] / timings[name], 2)
            for name in timings
            if name in seed_timings and timings[name] > 0
        }
    Path(args.output).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
