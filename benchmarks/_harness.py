"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one experiment from DESIGN.md (E1–E17).
Because the paper is a theory paper with no numeric tables, the "result" of
each experiment is either a universally-quantified check (reported as
``checked``/``violations`` counts in ``extra_info``) or a measured series
(reported as rows printed to stdout and attached to ``extra_info``).

Run with::

    pytest benchmarks/ --benchmark-only

The ``-s`` flag additionally shows the printed experiment tables.
"""

from __future__ import annotations


def record(benchmark, **info) -> None:
    """Attach experiment outputs to the benchmark record and echo them."""
    for key, value in info.items():
        benchmark.extra_info[key] = value


def print_table(title: str, headers, rows) -> None:
    """Print a small fixed-width table (the 'paper row' output of an experiment)."""
    rows = [tuple(row) for row in rows]
    widths = []
    for i, header in enumerate(headers):
        cell_widths = [len(str(row[i])) for row in rows] if rows else [0]
        widths.append(max(len(str(header)), *cell_widths))
    print(f"\n== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
