"""Benchmark-regression gate: fail when tracked hot paths regress.

Compares freshly measured timings of the tracked workloads (see
``benchmarks._harness``) against the recorded ``BENCH_baseline.json`` and
exits non-zero when a *watched* workload is slower than baseline by more
than the tolerance::

    PYTHONPATH=src:. python -m benchmarks.check_regression \
        --current /tmp/bench_current.json --watch bench_simulation,bench_sweep_1worker

Raw wall-clock comparisons across machines are noisy, so two mitigations
apply:

* the comparison is **scale-normalised**: every watched workload's ratio is
  divided by the median current/baseline ratio over *all* tracked workloads,
  which cancels a uniformly slower (or faster) machine while still catching
  a workload that regressed relative to its peers;
* the tolerance (default 1.20 = a >20% regression fails) can be widened via
  ``--tolerance`` or the ``BENCH_TOLERANCE`` environment variable for known
  noisy runners.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def check(
    current: dict, baseline: dict, watch: list, tolerance: float
) -> list:
    """Return a list of human-readable failures (empty when all pass)."""
    ratios = {
        name: current[name] / baseline[name]
        for name in current
        if name in baseline and baseline[name] > 0
    }
    if not ratios:
        return ["no overlapping workloads between current and baseline"]
    scale = _median(ratios.values())
    failures = []
    for name in watch:
        if name not in ratios:
            failures.append(f"watched workload {name!r} missing from measurements")
            continue
        normalised = ratios[name] / scale
        print(
            f"{name}: {current[name]:.4f}s vs baseline {baseline[name]:.4f}s "
            f"(raw x{ratios[name]:.2f}, machine-normalised x{normalised:.2f}, "
            f"tolerance x{tolerance:.2f})"
        )
        if normalised > tolerance:
            failures.append(
                f"{name} regressed: normalised x{normalised:.2f} > x{tolerance:.2f}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="JSON produced by `python -m benchmarks._harness --output ...`")
    parser.add_argument("--baseline", default="BENCH_baseline.json")
    parser.add_argument("--watch",
                        default="bench_simulation,bench_sweep_1worker,"
                                "bench_async_quiescence,bench_batch_sweep,"
                                "bench_telemetry,bench_dataplane,"
                                "bench_model_check",
                        help="comma-separated workloads that must not regress")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get("BENCH_TOLERANCE", "1.20")))
    args = parser.parse_args(argv)

    current = json.loads(Path(args.current).read_text())["current"]
    baseline = json.loads(Path(args.baseline).read_text())["current"]
    watch = [name.strip() for name in args.watch.split(",") if name.strip()]

    failures = check(current, baseline, watch, args.tolerance)
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        print("benchmark regression gate: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
