"""Experiment E10 — the Θ(n_b²) worst-case total-reversal bound.

Paper context (Section 1, quoting Busch & Tirthapura): the worst-case total
number of reversals of both FR and PR is Θ(n_b²), where n_b is the number of
nodes with no initial path to the destination.

Harness:
* FR on the "all edges away from the destination" chain — the classical
  quadratic family; we fit a quadratic and report the R².
* PR on the same family — linear there (each bad node steps once), which is
  exactly why the shared worst-case bound is called "surprising and
  counter-intuitive" by the paper.
* PR worst-case search — over every initial orientation of a path (exhaustive
  for small n_b) we report the maximum PR work observed, showing it grows
  faster than linearly in n_b.

Expected shape: FR quadratic fit with R² ≈ 1 and positive leading coefficient;
PR linear on the standard family; the PR worst-case-orientation series grows
superlinearly.
"""

from __future__ import annotations

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E10", __name__)

from repro.analysis.statistics import quadratic_fit_r2
from repro.analysis.work import count_reversals, worst_case_sweep
from repro.core.full_reversal import FullReversal
from repro.core.graph import LinkReversalInstance
from repro.core.one_step_pr import OneStepPartialReversal
from repro.schedulers.greedy import GreedyScheduler


def _fr_sweep():
    series = worst_case_sweep(range(1, 17), FullReversal, GreedyScheduler)
    xs = [float(n) for n, _ in series]
    ys = [float(s) for _, s in series]
    coefficients, r2 = quadratic_fit_r2(xs, ys)
    return series, coefficients, r2


def test_e10_fr_worst_case_is_quadratic(benchmark):
    series, coefficients, r2 = benchmark.pedantic(_fr_sweep, rounds=1, iterations=1)
    print_table(
        "E10 — FR total node steps on the worst-case chain",
        ["n_bad", "total steps"],
        series,
    )
    print(f"quadratic fit: {coefficients[0]:.3f}·x² + {coefficients[1]:.3f}·x + "
          f"{coefficients[2]:.3f}   (R² = {r2:.5f})")
    record(benchmark, experiment="E10-FR", series=series, leading=coefficients[0], r2=r2)
    assert r2 > 0.999
    assert coefficients[0] > 0.3


def _pr_sweep():
    return worst_case_sweep(range(1, 17), OneStepPartialReversal, GreedyScheduler)


def test_e10_pr_on_same_family_is_linear(benchmark):
    series = benchmark.pedantic(_pr_sweep, rounds=1, iterations=1)
    print_table(
        "E10 — PR total node steps on the same chain family",
        ["n_bad", "total steps"],
        series,
    )
    record(benchmark, experiment="E10-PR", series=series)
    assert all(steps == n_bad for n_bad, steps in series)


def _pr_worst_orientation_sweep():
    """For each path length, the worst initial orientation for PR (exhaustive)."""
    import itertools

    rows = []
    for n_bad in range(2, 8):
        nodes = tuple(range(n_bad + 1))
        pairs = [(i, i + 1) for i in range(n_bad)]
        worst = 0
        for bits in itertools.product((0, 1), repeat=len(pairs)):
            edges = tuple(
                (u, v) if bit == 0 else (v, u) for (u, v), bit in zip(pairs, bits)
            )
            instance = LinkReversalInstance(nodes, 0, edges)
            summary = count_reversals(OneStepPartialReversal(instance), GreedyScheduler())
            worst = max(worst, summary.node_steps)
        rows.append((n_bad, worst))
    return rows


def test_e10_pr_worst_initial_orientation_grows_superlinearly(benchmark):
    rows = benchmark.pedantic(_pr_worst_orientation_sweep, rounds=1, iterations=1)
    print_table(
        "E10 — worst-case PR work over all initial path orientations",
        ["n_bad", "max PR steps"],
        rows,
    )
    record(benchmark, experiment="E10-PR-worst", rows=rows)
    # superlinear growth: the per-node amortised work increases with n_bad
    first_ratio = rows[0][1] / rows[0][0]
    last_ratio = rows[-1][1] / rows[-1][0]
    assert last_ratio > first_ratio
