"""Experiment E24 — resilience overhead: the chaos plane when nothing fails.

The self-healing executor (PR 9) threads fault-injection hooks, shared
heartbeat arrays and per-line CRC32 checksums through every pooled campaign.
All of that must be free when no fault fires: a fault plan that never rolls a
fault and a watchdog that never kills anything should time indistinguishably
from a plain pooled sweep.  This module measures exactly that pair and keeps
the armed-path timing in ``BENCH_baseline.json`` (``bench_faults``), while
the CI regression gate watches ``bench_sweep_1worker`` for the CRC cost on
the store's write path.

The workload mirrors ``bench_sweep``'s pooled half at a smaller size: a
~64-run campaign through a 2-worker pool, once plain and once with an armed
fault plan (a pinned override on a chunk index far beyond the campaign, so
the injection machinery is live in every worker but never fires) plus a
30-second watchdog (heartbeats stamped and polled, no kill).

Expected shape: both configurations complete all runs cleanly with zero
faults injected, and the armed/plain wall-clock ratio stays within noise
(asserted loosely here; the cross-PR trajectory is the baseline's job).
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E24", __name__)

from repro.experiments.executor import run_campaign
from repro.experiments.spec import CampaignSpec
from repro.experiments.store import ResultStore
from repro.faults import FaultPlan

#: Pool size of the measured campaign (chaos recovery needs >= 2 workers).
POOL_WORKERS = 2

#: An armed-but-inert plan: the override pins a chunk index the campaign
#: never reaches, so workers arm the injector without ever injecting.
INERT_PLAN = FaultPlan(seed=0, overrides={10_000: "crash"})

#: Watchdog period far above any chunk's runtime: polled, never fired.
WATCHDOG_S = 30.0


def _campaign() -> CampaignSpec:
    return CampaignSpec(
        name="bench-faults",
        families=("chain", "random-dag"),
        algorithms=("pr", "fr"),
        schedulers=("greedy",),
        sizes=(6, 10, 14, 18),
        replicates=2,
    )


def _sweep(fault_plan=None, watchdog_s=None) -> dict:
    root = Path(tempfile.mkdtemp(prefix="bench-faults-"))
    try:
        with ResultStore(root) as store:
            report = run_campaign(
                _campaign(), store, workers=POOL_WORKERS,
                fault_plan=fault_plan, watchdog_s=watchdog_s,
            )
            assert report.ok == report.total, "benchmark campaign must be clean"
            assert report.faults_injected == 0, "the inert plan must never fire"
            return report.to_dict()
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _measure_plain() -> dict:
    return _sweep()


def _measure_armed() -> dict:
    return _sweep(fault_plan=INERT_PLAN, watchdog_s=WATCHDOG_S)


def test_e24_resilience_overhead(benchmark):
    def workload():
        return _measure_plain(), _measure_armed()

    plain, armed = benchmark.pedantic(workload, rounds=1, iterations=1)
    ratio = (
        armed["wall_time_s"] / plain["wall_time_s"]
        if plain["wall_time_s"] else 0.0
    )
    rows = [
        ("plain pool", plain["executed"], plain["wall_time_s"],
         plain["runs_per_second"]),
        ("armed + watchdog", armed["executed"], armed["wall_time_s"],
         armed["runs_per_second"]),
    ]
    print_table(
        "E24 — chaos-plane overhead when no fault fires",
        ["configuration", "runs", "wall s", "runs/s"],
        rows,
    )
    record(
        benchmark,
        experiment="E24",
        rows=rows,
        pool_workers=POOL_WORKERS,
        armed_vs_plain_ratio=round(ratio, 2),
    )
    assert plain["executed"] == armed["executed"] == _campaign().run_count
    assert armed["retries"] == armed["watchdog_kills"] == 0
    # loose in-test bound (pool startup noise dominates at this size); the
    # cross-PR trajectory lives in BENCH_baseline.json
    assert ratio < 3.0, f"armed executor {ratio:.2f}x slower than plain pool"
