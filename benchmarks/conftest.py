"""Pytest configuration for the benchmark harness.

The actual helpers live in :mod:`benchmarks._harness`; this conftest only
exists to make the benchmarks directory self-describing when collected.
"""
