"""Experiment E9 — total work of PR vs FR (and NewPR) across graph families.

Paper context (Section 1): PR "seems much more efficient" than FR, and on most
instances it is, yet both share the same Θ(n_b²) worst case.  This benchmark
reports the total node steps and edge reversals of PR, OneStepPR, NewPR and FR
on the standard families under the greedy schedule.

Expected shape: PR ≤ FR everywhere (often strictly), NewPR ≥ OneStepPR by at
most the number of dummy steps, PR == OneStepPR.
"""

from __future__ import annotations

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E9", __name__)

from repro.analysis.work import compare_algorithms
from repro.schedulers.greedy import GreedyScheduler
from repro.topology.generators import (
    grid_instance,
    layered_instance,
    random_dag_instance,
    star_instance,
    tree_instance,
    worst_case_chain_instance,
)


FAMILIES = {
    "worst-chain-12": lambda: worst_case_chain_instance(12),
    "star-20": lambda: star_instance(20, destination_is_center=True),
    "tree-40": lambda: tree_instance(40, seed=2),
    "grid-5x5": lambda: grid_instance(5, 5, oriented_towards_destination=False),
    "layered-5x6": lambda: layered_instance(5, 6, seed=4),
    "random-dag-50": lambda: random_dag_instance(50, edge_probability=0.08, seed=9),
}


def _compare_all():
    rows = []
    summaries = {}
    for family_name, family in FAMILIES.items():
        instance = family()
        results = compare_algorithms(instance, GreedyScheduler)
        summaries[family_name] = results
        rows.append(
            (
                family_name,
                instance.node_count,
                len(instance.bad_nodes()),
                results["PR"].node_steps,
                results["NewPR"].node_steps,
                results["FR"].node_steps,
                results["PR"].edge_reversals,
                results["FR"].edge_reversals,
            )
        )
    return rows, summaries


def test_e9_pr_vs_fr_work(benchmark):
    rows, summaries = benchmark.pedantic(_compare_all, rounds=1, iterations=1)
    print_table(
        "E9 — total work under the greedy schedule (node steps / edge reversals)",
        ["family", "n", "n_bad", "PR steps", "NewPR steps", "FR steps", "PR revs", "FR revs"],
        rows,
    )
    record(benchmark, experiment="E9", rows=rows)
    for family_name, results in summaries.items():
        assert results["PR"].destination_oriented
        assert results["FR"].destination_oriented
        # the headline comparison: PR never does more work than FR here
        assert results["PR"].node_steps <= results["FR"].node_steps, family_name
        # PR and its one-step serialisation perform identical work
        assert results["PR"].node_steps == results["OneStepPR"].node_steps, family_name
        # dummy steps only ever add work
        assert results["NewPR"].node_steps >= results["OneStepPR"].node_steps, family_name
