"""Experiments E5 & E8 — acyclicity of NewPR (Theorem 4.3) and PR (Theorem 5.5).

Paper claim: the directed graph is acyclic in every reachable state of NewPR,
and therefore of PR as well.

Harness:
* exhaustive — every reachable state of every connected 4-node DAG, for both
  automata (plus FR for the Section-1 folklore argument, experiment E9's
  acyclicity half);
* scaling — acyclicity checked along full executions on random DAGs of
  100–500 nodes (the timing series shows the cost of online verification).

Expected outcome: zero cycles anywhere.
"""

from __future__ import annotations

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E5", __name__)
claim_experiment("E8", __name__)

from repro.automata.executions import run
from repro.core.full_reversal import FullReversal
from repro.core.new_pr import NewPartialReversal
from repro.core.pr import PartialReversal
from repro.exploration.enumerate_graphs import all_connected_dag_instances
from repro.exploration.state_space import explore_and_check
from repro.schedulers.random_scheduler import RandomScheduler
from repro.topology.generators import random_dag_instance
from repro.verification.acyclicity import AcyclicityObserver, is_acyclic


def _exhaustive_acyclicity():
    totals = {}
    for name, automaton_class in (
        ("NewPR", NewPartialReversal),
        ("PR", PartialReversal),
        ("FR", FullReversal),
    ):
        states = 0
        failures = 0
        for instance in all_connected_dag_instances(4):
            report = explore_and_check(automaton_class(instance), {"acyclic": is_acyclic})
            states += report.states_explored
            failures += len(report.failures)
        totals[name] = (states, failures)
    return totals


def test_e5_e8_acyclicity_exhaustive(benchmark):
    totals = benchmark.pedantic(_exhaustive_acyclicity, rounds=1, iterations=1)
    rows = [(name, states, failures) for name, (states, failures) in totals.items()]
    print_table(
        "E5/E8 — acyclicity over every reachable state (all connected 4-node DAGs)",
        ["algorithm", "reachable states", "cycles found"],
        rows,
    )
    record(benchmark, experiment="E5/E8", results={k: v for k, v in totals.items()})
    assert all(failures == 0 for _, failures in totals.values())


def _acyclicity_along_large_executions():
    rows = []
    for n in (100, 200, 400):
        instance = random_dag_instance(n, edge_probability=max(0.02, 8.0 / n), seed=n)
        observer = AcyclicityObserver()
        result = run(
            NewPartialReversal(instance),
            RandomScheduler(seed=n),
            observers=(observer,),
            record_states=False,
        )
        rows.append((n, result.steps_taken, observer.report.states_checked,
                     len(observer.report.violations)))
    return rows


def test_e5_acyclicity_scaling_random_dags(benchmark):
    rows = benchmark.pedantic(_acyclicity_along_large_executions, rounds=1, iterations=1)
    print_table(
        "E5 — NewPR acyclicity along executions on large random DAGs",
        ["nodes", "steps to converge", "states checked", "cycles found"],
        rows,
    )
    record(benchmark, experiment="E5-scaling", rows=rows)
    assert all(row[-1] == 0 for row in rows)
