"""Experiment E16 — leader election and mutual exclusion on link reversal.

Paper context: the abstract lists leader election and mutual exclusion (after
Welch & Walter) as the other applications of link-reversal algorithms.

Harness:
* leader election — repeatedly fail the current leader of a 2-connected grid
  and measure the reversal work needed to re-orient the DAG towards the newly
  elected leader;
* mutual exclusion — issue a batch of critical-section requests on a grid and
  a random DAG and measure token travel distance and re-orientation work per
  grant, asserting safety (one holder) and liveness (all requests served).

Expected shape: every election/grant succeeds; per-operation work stays small
relative to the graph size.
"""

from __future__ import annotations

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E16", __name__)

from repro.analysis.statistics import mean
from repro.applications.leader_election import LeaderElectionService
from repro.applications.mutual_exclusion import TokenMutex
from repro.topology.generators import grid_instance, random_dag_instance


def _leader_election_sweep():
    instance = grid_instance(5, 5, oriented_towards_destination=True)
    service = LeaderElectionService(instance)
    reports = [service.fail_leader() for _ in range(6)]
    return service, reports


def test_e16_leader_election(benchmark):
    service, reports = benchmark.pedantic(_leader_election_sweep, rounds=1, iterations=1)
    rows = [
        (r.failed_leader, r.new_leader, r.surviving_nodes, r.node_steps, r.rounds,
         "yes" if r.destination_oriented else "NO")
        for r in reports
    ]
    print_table(
        "E16 — leader election on a 5x5 grid (successive leader failures)",
        ["failed", "elected", "survivors", "reversal steps", "rounds", "oriented"],
        rows,
    )
    record(
        benchmark,
        experiment="E16-election",
        elections=len(reports),
        mean_steps=mean([r.node_steps for r in reports]),
    )
    assert all(r.destination_oriented for r in reports)
    assert service.is_leader_oriented()


def _mutex_sweep():
    outcomes = {}
    for name, instance in (
        ("grid-5x5", grid_instance(5, 5, oriented_towards_destination=True)),
        ("random-dag-30", random_dag_instance(30, edge_probability=0.12, seed=8)),
    ):
        mutex = TokenMutex(instance)
        requesters = [u for u in instance.nodes if u != instance.destination][::3]
        for node in requesters:
            mutex.request(node)
        reports = mutex.grant_all()
        outcomes[name] = (mutex, reports)
    return outcomes


def test_e16_mutual_exclusion(benchmark):
    outcomes = benchmark.pedantic(_mutex_sweep, rounds=1, iterations=1)
    rows = []
    for name, (mutex, reports) in outcomes.items():
        rows.append(
            (
                name,
                len(reports),
                f"{mean([r.request_path_hops for r in reports]):.2f}",
                f"{mean([r.reversal_steps for r in reports]):.2f}",
                "yes" if mutex.is_token_oriented() else "NO",
                "yes" if mutex.is_acyclic() else "NO",
            )
        )
    print_table(
        "E16 — token mutual exclusion (batch of requests granted FIFO)",
        ["instance", "grants", "mean hops", "mean reversal steps", "token oriented", "acyclic"],
        rows,
    )
    record(benchmark, experiment="E16-mutex", rows=rows)
    for name, (mutex, reports) in outcomes.items():
        assert reports  # liveness: every request granted
        assert mutex.pending_requests() == ()
        assert mutex.is_token_oriented()
        assert mutex.is_acyclic()
