"""Experiment E18 — campaign-engine throughput: 1 worker vs a worker pool.

The sharded experiment executor is the substrate every scaling PR builds on,
so its dispatch overhead and multi-worker scaling are tracked like any other
hot path.  The workload is a fixed ~160-run campaign (chain + random-DAG
families, PR + FR, two schedulers, four sizes, five replicates) executed into
a throwaway store, once inline (``workers=1``) and once through the process
pool.

Expected shape: both configurations complete all runs with zero failures and
identical stored metrics (determinism across the pool boundary).  On
multi-core hosts the pooled run shows a wall-clock speedup; on single-core CI
boxes it may not, so only the throughput numbers — not an ordering — are
recorded (``BENCH_baseline.json`` keeps the trajectory).
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E18", __name__)

from repro.experiments.executor import run_campaign
from repro.experiments.spec import CampaignSpec
from repro.experiments.store import ResultStore

#: Pool size exercised by the multi-worker half of the workload.
POOL_WORKERS = 4


def _campaign() -> CampaignSpec:
    return CampaignSpec(
        name="bench-sweep",
        families=("chain", "random-dag"),
        algorithms=("pr", "fr"),
        schedulers=("greedy", "random"),
        sizes=(6, 10, 14, 18),
        replicates=5,
    )


def _sweep(workers: int) -> dict:
    """Run the benchmark campaign fresh and return the executor report dict."""
    root = Path(tempfile.mkdtemp(prefix=f"bench-sweep-{workers}w-"))
    try:
        with ResultStore(root) as store:
            report = run_campaign(_campaign(), store, workers=workers)
            assert report.ok == report.total, "benchmark campaign must be clean"
            return report.to_dict()
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _measure_1worker() -> dict:
    return _sweep(1)


def _measure_pool() -> dict:
    return _sweep(POOL_WORKERS)


def test_e18_sweep_throughput(benchmark):
    def workload():
        return _measure_1worker(), _measure_pool()

    serial, pooled = benchmark.pedantic(workload, rounds=1, iterations=1)
    rows = [
        ("1 worker", serial["executed"], serial["wall_time_s"], serial["runs_per_second"]),
        (f"{POOL_WORKERS} workers", pooled["executed"], pooled["wall_time_s"],
         pooled["runs_per_second"]),
    ]
    print_table(
        "E18 — campaign executor throughput (runs/s)",
        ["configuration", "runs", "wall s", "runs/s"],
        rows,
    )
    speedup = (
        pooled["runs_per_second"] / serial["runs_per_second"]
        if serial["runs_per_second"] else 0.0
    )
    record(
        benchmark,
        experiment="E18",
        rows=rows,
        pool_workers=POOL_WORKERS,
        speedup_pool_vs_serial=round(speedup, 2),
    )
    assert serial["executed"] == pooled["executed"] == _campaign().run_count
    assert serial["ok"] == pooled["ok"] == serial["executed"]
