"""Experiments E1 & E2 — Invariants 3.1 / 3.2 (and Corollaries 3.3 / 3.4) for PR.

Paper claim: in *every reachable state* of the PR automaton, edge directions
are consistent (Invariant 3.1) and every node's ``list`` satisfies exactly one
of the two structural alternatives (Invariant 3.2).

Harness:
* exhaustive — every reachable state of every connected 4-node DAG instance
  (38 graphs, following every subset action of Algorithm 1);
* randomized — long random executions (including random concurrent subsets)
  on a 60-node random DAG.

Expected outcome (paper vs measured): zero violations in both regimes.
"""

from __future__ import annotations

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E1", __name__)
claim_experiment("E2", __name__)

from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.exploration.enumerate_graphs import all_connected_dag_instances
from repro.exploration.random_walk import RandomWalkChecker
from repro.exploration.state_space import explore_and_check
from repro.topology.generators import random_dag_instance
from repro.verification.invariants import pr_invariant_checks


def _exhaustive_pr_check():
    rows = []
    total_states = 0
    total_failures = 0
    for index, instance in enumerate(all_connected_dag_instances(4)):
        report = explore_and_check(PartialReversal(instance), pr_invariant_checks())
        total_states += report.states_explored
        total_failures += len(report.failures)
        rows.append((index, instance.edge_count, report.states_explored, len(report.failures)))
    return rows, total_states, total_failures


def test_e1_e2_invariants_exhaustive_small_graphs(benchmark):
    rows, states, failures = benchmark.pedantic(_exhaustive_pr_check, rounds=1, iterations=1)
    print_table(
        "E1/E2 — PR invariants, exhaustive over all connected 4-node DAGs",
        ["graph#", "edges", "reachable states", "violations"],
        rows,
    )
    record(benchmark, experiment="E1/E2", reachable_states=states, violations=failures)
    assert failures == 0


def _randomized_pr_check():
    instance = random_dag_instance(60, edge_probability=0.08, seed=5)
    checker = RandomWalkChecker(
        OneStepPartialReversal(instance),
        pr_invariant_checks(),
        walks=10,
        base_seed=5,
    )
    return checker.check()


def test_e1_e2_invariants_randomized_large_graph(benchmark):
    report = benchmark.pedantic(_randomized_pr_check, rounds=1, iterations=1)
    record(
        benchmark,
        experiment="E1/E2-random",
        walks=report.walks,
        states_checked=report.states_checked,
        violations=len(report.failures),
    )
    print(f"\nE1/E2 randomized: {report}")
    assert report.all_predicates_hold
