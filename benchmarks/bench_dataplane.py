"""Experiment E23 — packet-level data plane throughput on the routed DAG.

The data-plane engine promises structure-of-arrays packet forwarding with no
per-packet objects: per-directed-link ring buffers, slotted link capacity,
batch Poisson injection and vectorised transmit/drop accounting.  This
experiment floods a converged 256-node grid with an offered load far above
the sink cut (rate 96x saturation) for :data:`SLOTS` slots plus a bounded
drain, which pushes >1M packets through the inject/enqueue/transmit/tail-drop
machinery in well under a wall-clock second, and then asserts the
conservation invariant field-for-field:

    injected == delivered + drop_tail + drop_ttl + drop_no_route
                + drop_link_down + in_flight

A second, smaller scenario replays the same workload with seeded link
failures landing mid-injection, so the reversal cascades rewrite the
next-hop tables under live packets — conservation must survive churn too.

``bench_dataplane`` in ``BENCH_baseline.json`` tracks the flood workload
end-to-end (construction + convergence + slots + drain) and is watched by
the CI regression gate.

(Historical note on the ID: the data-plane workload was originally pencilled
in as E21, which ``bench_batch`` already reports; E21/E22 belong to the
batch/telemetry experiments, so this module claims E23 — the
:func:`benchmarks._harness.claim_experiment` registry now makes such
collisions an import-time error.)
"""

from __future__ import annotations

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E23", __name__)

from repro.dataplane.run import DataPlaneRun
from repro.dataplane.traffic import TrafficModel
from repro.distributed.protocol import ReversalMode
from repro.topology.generators import build_family

#: Grid size (nodes) of the flood scenario.
SIZE = 256

#: Injection slots before the drain phase.
SLOTS = 700

#: Post-injection drain bound (drain also stops once queues are empty).
DRAIN_SLOTS = 512

#: Offered load as a multiple of the sink cut — deliberately far above 1.0
#: so every slot exercises the tail-drop path at full queue occupancy.
FLOOD = TrafficModel("flood", rate=96.0)

#: Packets the flood run must push through the engine.
MIN_PACKETS = 1_000_000

#: Seeded mid-injection failures of the churn scenario.
CHURN_FAILURES = 4


def _flood_run(
    size: int = SIZE,
    slots: int = SLOTS,
    traffic: TrafficModel = FLOOD,
) -> DataPlaneRun:
    """Build, converge and flood one grid; returns the finished run."""
    instance = build_family("grid", size, 1)
    run = DataPlaneRun(
        instance,
        mode=ReversalMode.PARTIAL,
        traffic=traffic,
        delay_model="fixed",
        loss=0.0,
        channel_seed=11,
        traffic_seed=23,
        queue_capacity=32,
        link_capacity=8,
    )
    run.network.run_to_quiescence(max_events=1_000_000)
    run._advance_control(None)
    run.run(slots, drain_slots=DRAIN_SLOTS)
    return run


def _measure_dataplane() -> DataPlaneRun:
    """The tracked BENCH_baseline.json workload: the >1M-packet flood."""
    return _flood_run()


def _assert_conservation(run: DataPlaneRun) -> None:
    sim = run.sim
    assert sim.conservation_ok()
    assert sim.injected == (
        sim.delivered
        + sim.drop_tail
        + sim.drop_ttl
        + sim.drop_no_route
        + sim.drop_link_down
        + sim.in_flight
    )


def test_e23_dataplane_flood(benchmark):
    run = benchmark.pedantic(_measure_dataplane, rounds=1, iterations=1)
    counters = run.sim.counters()

    _assert_conservation(run)
    assert counters["packets_injected"] >= MIN_PACKETS, (
        f"flood injected only {counters['packets_injected']} packets "
        f"(target {MIN_PACKETS})"
    )
    assert counters["packets_delivered"] > 0
    # on a converged, churn-free DAG greedy height descent is loop-free
    assert counters["transient_loops"] == 0
    assert counters["mean_stretch"] is not None
    assert counters["mean_stretch"] >= 1.0

    print_table(
        "E23 — data-plane flood on the converged 256-node grid",
        ("metric", "value"),
        [
            ("slots", counters["slots"]),
            ("injected", counters["packets_injected"]),
            ("delivered", counters["packets_delivered"]),
            ("drop_tail", counters["drop_tail"]),
            ("mean_latency_slots", round(counters["mean_latency_slots"], 2)),
            ("mean_stretch", round(counters["mean_stretch"], 3)),
            ("peak_queue_depth", counters["peak_queue_depth"]),
        ],
    )
    record(
        benchmark,
        experiment="E23",
        **{k: counters[k] for k in (
            "slots", "packets_injected", "packets_delivered", "packets_dropped",
            "drop_tail", "drop_ttl", "drop_no_route", "drop_link_down",
            "transient_loops", "peak_queue_depth",
        )},
    )


def test_e23_dataplane_churn(benchmark):
    """Conservation survives seeded link failures mid-injection."""

    def workload() -> DataPlaneRun:
        instance = build_family("grid", 64, 3)
        run = DataPlaneRun(
            instance,
            mode=ReversalMode.PARTIAL,
            traffic="heavy",
            delay_model="uniform",
            loss=0.0,
            channel_seed=5,
            traffic_seed=7,
        )
        run.network.run_to_quiescence(max_events=1_000_000)
        run._advance_control(None)
        plan = {}

        def fail(count: int) -> None:
            for _ in range(count):
                for u, v in run.network.sorted_link_pairs():
                    if not run.network.link_would_partition(u, v):
                        run.fail_link(u, v)
                        break

        for i in range(CHURN_FAILURES):
            plan[(i + 1) * 256 // (CHURN_FAILURES + 1)] = 1
        run.run(256, drain_slots=DRAIN_SLOTS, failure_plan=plan, fail_hook=fail)
        return run

    run = benchmark.pedantic(workload, rounds=1, iterations=1)
    _assert_conservation(run)
    counters = run.sim.counters()
    assert counters["packets_injected"] > 0
    assert counters["packets_delivered"] > 0
    record(
        benchmark,
        experiment="E23-churn",
        failures=CHURN_FAILURES,
        **{k: counters[k] for k in (
            "packets_injected", "packets_delivered", "packets_dropped",
            "drop_link_down", "transient_loops",
        )},
    )
