"""Experiment E12 — the dummy-step overhead of NewPR (Section 4.1 discussion).

Paper context: NewPR's dummy steps "cause it to incur a greater cost in
certain situations, compared to PR" — a node that is initially a sink or a
source may have to spend a step flipping its parity without reversing any
edge.

Harness: compare NewPR vs OneStepPR node-step counts on families with many
initial sinks/sources (stars, layered DAGs, random DAGs) and report the number
of dummy steps.

Expected shape: NewPR steps = OneStepPR steps + dummy steps; dummy steps > 0
exactly on the families that contain initial sinks or sources that must step.
"""

from __future__ import annotations

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E12", __name__)

from repro.analysis.work import count_reversals
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.schedulers.sequential import SequentialScheduler
from repro.topology.generators import (
    grid_instance,
    layered_instance,
    random_dag_instance,
    star_instance,
    worst_case_chain_instance,
)
from repro.core.graph import LinkReversalInstance


def _source_sink_instance() -> LinkReversalInstance:
    """A family rich in initial sources: many source nodes feeding one sink."""
    nodes = tuple(range(8))
    destination = 0
    # 0 is the destination; 1..5 are sources feeding node 6; 6 feeds sink 7
    edges = [(i, 6) for i in range(1, 6)] + [(6, 7), (0, 1)]
    return LinkReversalInstance(nodes, destination, tuple(edges))


FAMILIES = {
    "star-15": lambda: star_instance(15, destination_is_center=True),
    "sources-into-sink": _source_sink_instance,
    "worst-chain-10": lambda: worst_case_chain_instance(10),
    "grid-4x4": lambda: grid_instance(4, 4, oriented_towards_destination=False),
    "layered-4x5": lambda: layered_instance(4, 5, seed=1),
    "random-dag-40": lambda: random_dag_instance(40, edge_probability=0.1, seed=2),
}


def _measure():
    rows = []
    for name, factory in FAMILIES.items():
        instance = factory()
        newpr = count_reversals(NewPartialReversal(instance), SequentialScheduler())
        onestep = count_reversals(OneStepPartialReversal(instance), SequentialScheduler())
        rows.append(
            (
                name,
                instance.node_count,
                onestep.node_steps,
                newpr.node_steps,
                newpr.dummy_steps,
                newpr.node_steps - onestep.node_steps,
            )
        )
    return rows


def test_e12_dummy_step_overhead(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print_table(
        "E12 — NewPR dummy-step overhead vs OneStepPR (sequential schedule)",
        ["family", "n", "OneStepPR steps", "NewPR steps", "dummy steps", "overhead"],
        rows,
    )
    record(benchmark, experiment="E12", rows=rows)
    for _, _, onestep_steps, newpr_steps, dummy, overhead in rows:
        assert newpr_steps >= onestep_steps
        assert overhead <= dummy  # extra steps are explained by dummy steps
