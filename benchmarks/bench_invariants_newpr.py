"""Experiments E3 & E4 — Invariants 4.1 / 4.2 for NewPR.

Paper claim: in every reachable state of NewPR, (4.1) neighbours with equal
parity determine the edge direction relative to the left-to-right embedding,
and (4.2) the step-count relations (a)–(d) hold.

Harness: exhaustive over all connected 4-node DAGs, plus randomized executions
on a 60-node random DAG.  Expected outcome: zero violations.
"""

from __future__ import annotations

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E3", __name__)
claim_experiment("E4", __name__)

from repro.core.new_pr import NewPartialReversal
from repro.exploration.enumerate_graphs import all_connected_dag_instances
from repro.exploration.random_walk import RandomWalkChecker
from repro.exploration.state_space import explore_and_check
from repro.topology.generators import random_dag_instance
from repro.verification.invariants import newpr_invariant_checks


def _exhaustive_newpr_check():
    rows = []
    total_states = 0
    total_failures = 0
    for index, instance in enumerate(all_connected_dag_instances(4)):
        report = explore_and_check(NewPartialReversal(instance), newpr_invariant_checks())
        total_states += report.states_explored
        total_failures += len(report.failures)
        rows.append((index, instance.edge_count, report.states_explored, len(report.failures)))
    return rows, total_states, total_failures


def test_e3_e4_invariants_exhaustive_small_graphs(benchmark):
    rows, states, failures = benchmark.pedantic(_exhaustive_newpr_check, rounds=1, iterations=1)
    print_table(
        "E3/E4 — NewPR invariants, exhaustive over all connected 4-node DAGs",
        ["graph#", "edges", "reachable states", "violations"],
        rows,
    )
    record(benchmark, experiment="E3/E4", reachable_states=states, violations=failures)
    assert failures == 0


def _randomized_newpr_check():
    instance = random_dag_instance(60, edge_probability=0.08, seed=6)
    checker = RandomWalkChecker(
        NewPartialReversal(instance),
        newpr_invariant_checks(),
        walks=10,
        base_seed=6,
    )
    return checker.check()


def test_e3_e4_invariants_randomized_large_graph(benchmark):
    report = benchmark.pedantic(_randomized_newpr_check, rounds=1, iterations=1)
    record(
        benchmark,
        experiment="E3/E4-random",
        walks=report.walks,
        states_checked=report.states_checked,
        violations=len(report.failures),
    )
    print(f"\nE3/E4 randomized: {report}")
    assert report.all_predicates_hold
