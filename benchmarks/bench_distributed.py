"""Experiment E17 — asynchronous, message-passing link reversal.

Paper context: the I/O-automaton model of the paper is a global-state
abstraction of a distributed protocol; the claims that matter operationally —
the orientation stays acyclic and the network converges to destination
orientation — must survive message delay and loss.

Harness: run the height-based asynchronous protocol (partial and full modes)
on chains, grids and random DAGs with random per-message delays, and report
simulated convergence time, message count and reversal count; additionally
run a lossy-channel configuration and report that acyclicity still holds (the
orientation induced by true heights is total-order-derived).

Expected shape: convergence on every connected instance with reliable
channels; acyclicity always; message counts scale with reversals.
"""

from __future__ import annotations

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E17", __name__)

from repro.distributed.network import AsyncLinkReversalNetwork
from repro.distributed.protocol import ReversalMode
from repro.topology.generators import (
    chain_instance,
    grid_instance,
    random_dag_instance,
)


FAMILIES = {
    "bad-chain-20": lambda: chain_instance(20, towards_destination=False),
    "grid-5x5": lambda: grid_instance(5, 5, oriented_towards_destination=False),
    "random-dag-40": lambda: random_dag_instance(40, edge_probability=0.08, seed=14),
}


def _run_all_reliable():
    rows = []
    checks = []
    for name, factory in FAMILIES.items():
        for mode in (ReversalMode.PARTIAL, ReversalMode.FULL):
            instance = factory()
            network = AsyncLinkReversalNetwork(
                instance, mode=mode, min_delay=0.5, max_delay=3.0, seed=7
            )
            report = network.run_to_quiescence()
            rows.append(
                (
                    name,
                    mode.value,
                    f"{report.simulated_time:.1f}",
                    report.messages_sent,
                    report.total_reversals,
                    "yes" if report.destination_oriented else "NO",
                    "yes" if report.acyclic else "NO",
                )
            )
            checks.append(report)
    return rows, checks


def test_e17_async_convergence_reliable_channels(benchmark):
    rows, checks = benchmark.pedantic(_run_all_reliable, rounds=1, iterations=1)
    print_table(
        "E17 — asynchronous link reversal with random delays (reliable channels)",
        ["family", "mode", "sim time", "messages", "reversals", "oriented", "acyclic"],
        rows,
    )
    record(benchmark, experiment="E17", rows=rows)
    for report in checks:
        assert report.destination_oriented
        assert report.acyclic


def _run_lossy():
    instance = grid_instance(4, 4, oriented_towards_destination=False)
    network = AsyncLinkReversalNetwork(
        instance, min_delay=0.5, max_delay=2.0, loss_probability=0.2, seed=9
    )
    report = network.run_to_quiescence(max_events=50_000)
    return report


def test_e17_lossy_channels_keep_acyclicity(benchmark):
    report = benchmark.pedantic(_run_lossy, rounds=1, iterations=1)
    print(
        f"\nE17 lossy: messages sent {report.messages_sent}, lost {report.messages_lost}, "
        f"reversals {report.total_reversals}, oriented={report.destination_oriented}, "
        f"acyclic={report.acyclic}"
    )
    record(
        benchmark,
        experiment="E17-lossy",
        messages_lost=report.messages_lost,
        oriented=report.destination_oriented,
        acyclic=report.acyclic,
    )
    # with loss the protocol may stall before full orientation (no retransmission
    # layer is modelled), but the height order keeps the graph acyclic throughout
    assert report.acyclic
