"""Experiment E21 — batched lockstep execution vs the per-scenario kernel path.

The batch engine holds thousands of campaign lanes as parallel arrays and
steps them in lockstep, sharing compiled kernels and memoising the outcomes
of deterministic lanes (seedless families ignore the topology seed, so every
replicate of such a cell is one leader run fanned out to its followers).
This experiment times the same 6144-run campaign chunk — two families, PR +
FR, all six mask schedulers, 256 replicates — through ``run_scenarios`` on
the kernel engine and through ``run_scenarios_batched``, with every cache
cleared inside each workload so both sides pay cold-start costs.

Expected shape: identical records lane for lane (the differential suite pins
this field by field) and a batch/kernel throughput ratio well above 1; the
deterministic five-sixths of the lanes collapse to leader runs, so the ratio
approaches the scheduler mix's dedup ceiling as size grows.  The floor
asserted here is deliberately conservative (CI boxes are noisy); the measured
ratio is recorded in ``extra_info`` and tracked across PRs by the
``bench_batch_sweep`` / ``bench_batch_sweep_kernel`` pair in
``BENCH_baseline.json``.
"""

from __future__ import annotations

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E21", __name__)

from repro.experiments.batch_engine import (
    batch_cache_stats,
    reset_batch_caches,
    run_scenarios_batched,
)
from repro.experiments.runner import _KERNEL_CACHE, run_scenarios
from repro.experiments.spec import CampaignSpec

#: Conservative CI floor for the batch/kernel throughput ratio; the measured
#: value (tracked in BENCH_baseline.json) sits well above this on a quiet box.
MIN_BATCH_SPEEDUP = 3.0

#: Lanes per campaign cell — the batch width the engine is measured at.
REPLICATES = 256


def _campaign() -> CampaignSpec:
    return CampaignSpec(
        name="bench-batch-sweep",
        families=("chain", "grid"),
        algorithms=("pr", "fr"),
        schedulers=(
            "greedy", "sequential", "lazy", "adversarial", "round-robin", "random",
        ),
        sizes=(16,),
        replicates=REPLICATES,
    )


#: The expanded benchmark chunk, built once — spec construction (6144
#: ``to_dict`` calls, each hashing a run_id) is shared input prep, not engine
#: work, and neither engine mutates the input dicts.
_SPEC_CACHE: list = []


def _specs() -> list:
    if not _SPEC_CACHE:
        _SPEC_CACHE.extend(spec.to_dict() for spec in _campaign().expand())
    return _SPEC_CACHE


def _measure_kernel() -> list:
    """The per-scenario kernel path over the benchmark chunk, cold caches."""
    _KERNEL_CACHE.clear()
    return run_scenarios(_specs(), engine="kernel")


def _measure_batch() -> list:
    """The lockstep batched path over the same chunk, cold caches."""
    reset_batch_caches()
    return run_scenarios_batched(_specs())


def test_e21_batch_vs_kernel(benchmark):
    import time

    def workload():
        start = time.perf_counter()
        kernel_records = _measure_kernel()
        kernel_s = time.perf_counter() - start
        start = time.perf_counter()
        batch_records = _measure_batch()
        batch_s = time.perf_counter() - start
        return kernel_records, kernel_s, batch_records, batch_s

    kernel_records, kernel_s, batch_records, batch_s = benchmark.pedantic(
        workload, rounds=1, iterations=1
    )

    lanes = len(batch_records)
    volatile = ("wall_time_s", "engine")
    mismatches = sum(
        1
        for a, b in zip(kernel_records, batch_records)
        if {k: v for k, v in a.items() if k not in volatile}
        != {k: v for k, v in b.items() if k not in volatile}
    )
    stats = batch_cache_stats()
    ratio = kernel_s / batch_s if batch_s else 0.0

    rows = [
        ("kernel (per-scenario)", lanes, round(kernel_s, 4),
         round(lanes / kernel_s) if kernel_s else 0),
        ("batch (lockstep)", lanes, round(batch_s, 4),
         round(lanes / batch_s) if batch_s else 0),
    ]
    print_table(
        "E21 — batched lockstep vs per-scenario kernel (runs/s)",
        ["engine path", "lanes", "wall s", "runs/s"],
        rows,
    )
    record(
        benchmark,
        experiment="E21",
        rows=rows,
        lanes=lanes,
        replicates=REPLICATES,
        speedup_batch_vs_kernel=round(ratio, 2),
        outcome_hits=stats.get("outcome_hits"),
        outcome_misses=stats.get("outcome_misses"),
        mismatched_lanes=mismatches,
    )
    assert lanes == len(kernel_records) == _campaign().run_count
    assert all(r["status"] == "ok" for r in batch_records)
    assert mismatches == 0, "batch records must match the kernel engine exactly"
    assert ratio >= MIN_BATCH_SPEEDUP, (
        f"batch engine only {ratio:.2f}x faster than the kernel path "
        f"(floor {MIN_BATCH_SPEEDUP}x)"
    )
