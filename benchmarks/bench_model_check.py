"""Experiment E19 — exhaustive model-checking throughput (states/second).

The frontier engine is what turns the paper's universally-quantified claims
into machine-checked facts at scale, so its per-state cost is tracked like
any other hot path.  The workload exhaustively verifies the built-in
``acyclic`` + ``progress`` invariants for Full Reversal on the all-bad 4×6
grid — 126 534 reachable orientations, 673 524 transitions — once through
the vectorised frontier path (``vectorized="always"``: whole BFS rounds as
numpy column ops) and once through the scalar per-state loop
(``vectorized="never"``).  Both engines are differentially pinned to
identical counts (also asserted here), so their timing ratio is pure
engine speedup on the same verification.

The tracked ``bench_model_check`` baseline entry is the vectorised half;
``bench_model_check_scalar`` is the scalar twin on the same workload, so
the pair's ratio in BENCH_baseline.json is the batch engine's speedup.
For scale context (not CI-timed): the vectorised engine exhausts the 5×6
grid — 2 068 146 states — in a few seconds single-process, while the
legacy state-materialising :class:`~repro.exploration.state_space
.StateSpaceExplorer` (O(states × depth) path-tuple memory) falls over two
grid sizes earlier.
"""

from __future__ import annotations

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E19", __name__)

from repro.core.full_reversal import FullReversal
from repro.exploration.checker import ModelChecker
from repro.topology.generators import grid_instance

#: The tracked workload: FR on the all-bad 4×6 grid, exhaustive.
GRID_ROWS, GRID_COLS = 4, 6
EXPECTED_STATES = 126_534
EXPECTED_TRANSITIONS = 673_524


def _instance():
    return grid_instance(GRID_ROWS, GRID_COLS, oriented_towards_destination=False)


def _check(vectorized: str):
    report = ModelChecker(
        FullReversal(_instance()),
        max_states=10_000_000,
        check_acyclicity=True,
        check_progress=True,
        vectorized=vectorized,
    ).run()
    assert report.states_explored == EXPECTED_STATES, report
    assert report.transitions_explored == EXPECTED_TRANSITIONS, report
    assert report.all_predicates_hold and not report.truncated
    return report


def _measure() -> dict:
    """The tracked baseline workload: the vectorised frontier engine."""
    report = _check("always")
    assert report.vectorized
    return {
        "states": report.states_explored,
        "transitions": report.transitions_explored,
        "max_depth": report.max_depth,
        "wall_time_s": report.wall_time_s,
    }


def _measure_scalar() -> dict:
    """The scalar twin: same verification through the per-state loop."""
    report = _check("never")
    assert not report.vectorized
    return {"states": report.states_explored, "wall_time_s": report.wall_time_s}


def test_e19_model_check_throughput(benchmark):
    import time

    def workload():
        start = time.perf_counter()
        vector = _measure()
        vector_s = time.perf_counter() - start
        start = time.perf_counter()
        _measure_scalar()
        scalar_s = time.perf_counter() - start
        return vector, vector_s, scalar_s

    vector, vector_s, scalar_s = benchmark.pedantic(workload, rounds=1, iterations=1)
    vector_rate = vector["states"] / vector_s if vector_s else 0.0
    scalar_rate = vector["states"] / scalar_s if scalar_s else 0.0
    rows = [
        ("vectorised frontier", vector["states"], f"{vector_s:.3f}", f"{vector_rate:,.0f}"),
        ("scalar frontier", vector["states"], f"{scalar_s:.3f}", f"{scalar_rate:,.0f}"),
    ]
    print_table(
        f"E19 — exhaustive FR check on the {GRID_ROWS}x{GRID_COLS} all-bad grid",
        ["engine", "states", "wall s", "states/s"],
        rows,
    )
    record(
        benchmark,
        experiment="E19",
        states=vector["states"],
        transitions=vector["transitions"],
        max_depth=vector["max_depth"],
        states_per_second=round(vector_rate),
        scalar_states_per_second=round(scalar_rate),
        speedup_vs_scalar=round(scalar_s / vector_s, 2) if vector_s else 0.0,
    )
    assert vector["transitions"] > vector["states"]
    # identical verification, so the ratio is pure engine speedup; keep a
    # conservative floor so a vector-path regression trips even on a busy box
    assert vector_s < scalar_s
