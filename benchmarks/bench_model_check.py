"""Experiment E19 — exhaustive model-checking throughput (states/second).

The frontier engine is what turns the paper's universally-quantified claims
into machine-checked facts at scale, so its per-state cost is tracked like
any other hot path.  The workload exhaustively verifies the built-in
``acyclic`` + ``progress`` invariants for Full Reversal on the all-bad 4×5
grid — 18 150 reachable orientations, 95 960 transitions — once with the
production :class:`~repro.exploration.checker.ModelChecker` and once with the
legacy state-materialising :class:`~repro.exploration.state_space
.StateSpaceExplorer` (no predicates there; it has no mask-level checks), to
keep the engine-vs-reference ratio visible.

The tracked ``bench_model_check`` baseline entry is the ModelChecker half
only.  For scale context (not CI-timed): the same verification on the 5×6
grid — 2 068 146 states, 13 640 060 transitions — completes in under a
minute single-process, while the legacy explorer's per-state path tuples
(O(states × depth) memory) put it out of reach two grid sizes earlier.
"""

from __future__ import annotations

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E19", __name__)

from repro.core.full_reversal import FullReversal
from repro.exploration.checker import ModelChecker
from repro.exploration.state_space import StateSpaceExplorer
from repro.topology.generators import grid_instance

#: The tracked workload: FR on the all-bad 4×5 grid, exhaustive.
GRID_ROWS, GRID_COLS = 4, 5
EXPECTED_STATES = 18_150


def _instance():
    return grid_instance(GRID_ROWS, GRID_COLS, oriented_towards_destination=False)


def _measure() -> dict:
    """The baseline workload: exhaustive check with built-in invariants."""
    report = ModelChecker(
        FullReversal(_instance()),
        max_states=1_000_000,
        check_acyclicity=True,
        check_progress=True,
    ).run()
    assert report.states_explored == EXPECTED_STATES, report
    assert report.all_predicates_hold and not report.truncated
    return {
        "states": report.states_explored,
        "transitions": report.transitions_explored,
        "max_depth": report.max_depth,
        "wall_time_s": report.wall_time_s,
    }


def _measure_legacy() -> dict:
    """The seed-era reference explorer on the same instance (no predicates)."""
    report = StateSpaceExplorer(FullReversal(_instance()), max_states=1_000_000).explore()
    assert report.states_explored == EXPECTED_STATES
    return {"states": report.states_explored}


def test_e19_model_check_throughput(benchmark):
    import time

    def workload():
        start = time.perf_counter()
        frontier = _measure()
        frontier_s = time.perf_counter() - start
        start = time.perf_counter()
        _measure_legacy()
        legacy_s = time.perf_counter() - start
        return frontier, frontier_s, legacy_s

    frontier, frontier_s, legacy_s = benchmark.pedantic(workload, rounds=1, iterations=1)
    states_per_s = frontier["states"] / frontier_s if frontier_s else 0.0
    rows = [
        ("ModelChecker (acyclic+progress)", frontier["states"], f"{frontier_s:.3f}",
         f"{states_per_s:,.0f}"),
        ("legacy explorer (no predicates)", frontier["states"], f"{legacy_s:.3f}", "-"),
    ]
    print_table(
        f"E19 — exhaustive FR check on the {GRID_ROWS}x{GRID_COLS} all-bad grid",
        ["engine", "states", "wall s", "states/s"],
        rows,
    )
    record(
        benchmark,
        experiment="E19",
        states=frontier["states"],
        transitions=frontier["transitions"],
        max_depth=frontier["max_depth"],
        states_per_second=round(states_per_s),
        legacy_wall_s=round(legacy_s, 3),
        speedup_vs_legacy=round(legacy_s / frontier_s, 2) if frontier_s else 0.0,
    )
    assert frontier["transitions"] > frontier["states"]
