"""Experiment E13 — Binary Link Labels and PR as its special case.

Paper context (Section 1): one of the pre-existing acyclicity proofs for PR
goes through the Binary Link Labels generalisation; PR is BLL instantiated
with the "neighbour reversed towards me" labels, FR is BLL with labels never
set.

Harness: drive BLL (all-unmarked start) and OneStepPR with identical node
schedules on several families and verify that the directed graphs and the
label/list contents coincide after every step; also confirm the FR
instantiation reproduces FR, and that both instantiations remain acyclic.

Expected outcome: byte-for-byte agreement at every step, zero cycles.
"""

from __future__ import annotations

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E13", __name__)

from repro.automata.executions import run
from repro.core.bll import (
    bll_matches_partial_reversal,
    full_reversal_as_bll,
    partial_reversal_as_bll,
)
from repro.core.full_reversal import FullReversal
from repro.schedulers.random_scheduler import RandomScheduler
from repro.schedulers.sequential import SequentialScheduler
from repro.topology.generators import (
    grid_instance,
    random_dag_instance,
    tree_instance,
    worst_case_chain_instance,
)
from repro.verification.acyclicity import check_acyclic_execution


FAMILIES = {
    "worst-chain-10": lambda: worst_case_chain_instance(10),
    "tree-25": lambda: tree_instance(25, seed=3),
    "grid-4x4": lambda: grid_instance(4, 4, oriented_towards_destination=False),
    "random-dag-30": lambda: random_dag_instance(30, edge_probability=0.12, seed=4),
}


def _check_families():
    rows = []
    all_ok = True
    for name, factory in FAMILIES.items():
        instance = factory()
        schedule = list(instance.non_destination_nodes) * instance.node_count
        matches_pr = bll_matches_partial_reversal(instance, schedule)

        fr_bll = run(full_reversal_as_bll(instance), SequentialScheduler())
        fr_direct = run(FullReversal(instance), SequentialScheduler())
        matches_fr = (
            fr_bll.final_state.graph_signature() == fr_direct.final_state.graph_signature()
            and fr_bll.steps_taken == fr_direct.steps_taken
        )

        acyclic = check_acyclic_execution(
            run(partial_reversal_as_bll(instance), RandomScheduler(seed=1)).execution
        ).holds

        all_ok = all_ok and matches_pr and matches_fr and acyclic
        rows.append(
            (
                name,
                instance.node_count,
                "yes" if matches_pr else "NO",
                "yes" if matches_fr else "NO",
                "yes" if acyclic else "NO",
            )
        )
    return rows, all_ok


def test_e13_bll_specialisations(benchmark):
    rows, all_ok = benchmark.pedantic(_check_families, rounds=1, iterations=1)
    print_table(
        "E13 — BLL vs direct PR / FR implementations",
        ["family", "n", "BLL == PR (stepwise)", "BLL(no-mark) == FR", "BLL acyclic"],
        rows,
    )
    record(benchmark, experiment="E13", rows=rows)
    assert all_ok
