"""Ablation — sensitivity of work and convergence to the scheduler (adversary).

DESIGN.md separates the algorithms from the adversary that picks which sink
steps next.  This ablation quantifies how much that choice matters:

* for PR and FR the *total work* is schedule independent (a classical
  property the test suite also asserts); the ablation confirms it across five
  very different schedulers and reports the (identical) counts;
* what the scheduler does change is the number of *rounds* of the greedy
  concurrent schedule versus fully serialised schedules, i.e. the available
  parallelism — reported here as steps vs rounds.

Expected shape: per-algorithm step counts identical across schedulers; greedy
rounds much smaller than total steps on wide graphs.
"""

from __future__ import annotations

from benchmarks._harness import print_table, record

from repro.analysis.work import count_reversals
from repro.core.full_reversal import FullReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.schedulers.adversarial import AdversarialScheduler, LazyScheduler
from repro.schedulers.base import RoundRobinScheduler
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.random_scheduler import RandomScheduler
from repro.schedulers.sequential import SequentialScheduler
from repro.topology.generators import grid_instance, worst_case_chain_instance


SCHEDULERS = {
    "greedy": GreedyScheduler,
    "sequential": SequentialScheduler,
    "round-robin": RoundRobinScheduler,
    "adversarial": AdversarialScheduler,
    "lazy": LazyScheduler,
    "random": lambda: RandomScheduler(seed=33),
}

FAMILIES = {
    "worst-chain-10": lambda: worst_case_chain_instance(10),
    "grid-5x5": lambda: grid_instance(5, 5, oriented_towards_destination=False),
}


def _sweep():
    rows = []
    schedule_independent = True
    for family_name, family in FAMILIES.items():
        for algorithm_name, algorithm in (("PR", OneStepPartialReversal), ("FR", FullReversal)):
            counts = {}
            for scheduler_name, scheduler_factory in SCHEDULERS.items():
                instance = family()
                summary = count_reversals(algorithm(instance), scheduler_factory())
                counts[scheduler_name] = summary.node_steps
            distinct = set(counts.values())
            schedule_independent = schedule_independent and len(distinct) == 1
            rows.append(
                (family_name, algorithm_name, *[counts[s] for s in SCHEDULERS], len(distinct))
            )
    return rows, schedule_independent


def test_ablation_scheduler_independence_of_work(benchmark):
    rows, schedule_independent = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        "Ablation — total node steps under six schedulers",
        ["family", "algorithm", *SCHEDULERS.keys(), "#distinct"],
        rows,
    )
    record(benchmark, experiment="ablation-schedulers", rows=rows)
    assert schedule_independent


def _parallelism():
    rows = []
    for family_name, family in FAMILIES.items():
        instance = family()
        scheduler = GreedyScheduler()
        summary = count_reversals(OneStepPartialReversal(instance), scheduler)
        rows.append((family_name, summary.node_steps, scheduler.rounds))
    return rows


def test_ablation_greedy_parallelism(benchmark):
    rows = benchmark.pedantic(_parallelism, rounds=1, iterations=1)
    print_table(
        "Ablation — steps vs greedy rounds (available parallelism)",
        ["family", "total steps", "greedy rounds"],
        rows,
    )
    record(benchmark, experiment="ablation-parallelism", rows=rows)
    for _, steps, rounds in rows:
        assert rounds <= steps
