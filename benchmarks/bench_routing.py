"""Experiment E15 — routing: route maintenance under link failures and mobility.

Paper context: link reversal exists to provide "an efficient graph structure
for routing" in networks "with frequently changing topology" (abstract and
introduction, citing Gafni–Bertsekas).  The measurable claims are that after a
link failure the reversal cascade restores destination orientation with work
localised around the failure, and that routes stay usable.

Harness:
* synchronous repair — fail each non-partitioning link of a grid in turn and
  rerun PR from the surviving orientation; report steps needed per repair;
* asynchronous repair — inject random link failures into the message-passing
  network on a geometric (MANET-style) topology and report reversals,
  messages and recovery time per failure;
* mobility — drive a random-waypoint model for several steps and report the
  fraction of non-partitioning changes from which routing recovered.

Expected shape: every non-partitioning failure is recovered; per-failure work
is far smaller than re-running the algorithm from scratch on the whole graph.
"""

from __future__ import annotations

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E15", __name__)

from repro.analysis.statistics import mean
from repro.core.pr import PartialReversal
from repro.routing.dag_routing import RoutingTable
from repro.routing.maintenance import RouteMaintenanceSimulation, repair_with_automaton
from repro.topology.generators import grid_instance
from repro.topology.manet import random_geometric_instance
from repro.topology.mobility import RandomWaypointMobility


def _synchronous_repair_sweep():
    instance = grid_instance(5, 5, oriented_towards_destination=True)
    orientation = instance.initial_orientation()
    rows = []
    for u, v in instance.initial_edges:
        new_instance, result = repair_with_automaton(
            instance, orientation, (u, v), PartialReversal
        )
        table = RoutingTable.from_orientation(result.final_state.orientation)
        rows.append(((u, v), result.steps_taken, table.routable_fraction()))
    return rows


def test_e15_synchronous_link_failure_repair(benchmark):
    rows = benchmark.pedantic(_synchronous_repair_sweep, rounds=1, iterations=1)
    display = [(f"{u}-{v}", steps, f"{fraction:.2f}") for (u, v), steps, fraction in rows]
    print_table(
        "E15 — PR repair after each single link failure on a 5x5 grid",
        ["failed link", "repair steps", "routable fraction"],
        display[:12] + [("...", "", "")],
    )
    record(
        benchmark,
        experiment="E15-sync",
        failures=len(rows),
        mean_repair_steps=mean([steps for _, steps, _ in rows]),
        all_recovered=all(fraction == 1.0 for _, _, fraction in rows),
    )
    # a 5x5 grid is 2-edge-connected: every single failure is recoverable
    assert all(fraction == 1.0 for _, _, fraction in rows)
    # locality: a single repair needs far fewer steps than the node count
    assert mean([steps for _, steps, _ in rows]) < 25


def _asynchronous_failure_sweep():
    instance, _network = random_geometric_instance(25, radius=0.35, seed=11)
    simulation = RouteMaintenanceSimulation(instance, seed=11)
    results = simulation.fail_random_links(8)
    return simulation, results


def test_e15_asynchronous_failures_on_manet(benchmark):
    simulation, results = benchmark.pedantic(_asynchronous_failure_sweep, rounds=1, iterations=1)
    rows = [
        (
            "-".join(map(str, r.failed_links[0])) if r.failed_links else "-",
            r.reversals,
            r.messages,
            f"{r.elapsed_time:.1f}",
            "partitioned" if r.partitioned else ("yes" if r.destination_oriented else "NO"),
        )
        for r in results
    ]
    print_table(
        "E15 — asynchronous recovery from random link failures (25-node MANET)",
        ["failed link", "reversals", "messages", "time", "recovered"],
        rows,
    )
    summary = simulation.summary()
    record(benchmark, experiment="E15-async", **summary)
    assert summary["recovered_fraction"] == 1.0


def _mobility_sweep():
    instance, network = random_geometric_instance(20, radius=0.45, seed=21)
    simulation = RouteMaintenanceSimulation(instance, seed=21)
    mobility = RandomWaypointMobility(network, speed=0.04, seed=21)
    results = simulation.apply_topology_changes(mobility.run(12))
    return simulation, results


def test_e15_mobility_route_maintenance(benchmark):
    simulation, results = benchmark.pedantic(_mobility_sweep, rounds=1, iterations=1)
    summary = simulation.summary()
    print(
        f"\nE15 mobility: {summary['failures']} change batches, "
        f"mean reversals {summary['mean_reversals']:.1f}, "
        f"mean messages {summary['mean_messages']:.1f}, "
        f"recovered fraction {summary['recovered_fraction']:.2f}"
    )
    record(benchmark, experiment="E15-mobility", **summary)
    assert summary["recovered_fraction"] == 1.0
