"""Experiment E22 — telemetry overhead on the batched sweep workload.

The telemetry layer promises to be effectively free: disabled, the hot paths
pay one module-global boolean check (``if _telemetry.ENABLED:``); enabled,
the batch engine aggregates per-lane tallies into a handful of registry
increments per call rather than touching an instrument per record.  This
experiment times the same 6144-lane batched campaign chunk as ``bench_batch``
three ways — telemetry off, telemetry on with a metrics registry only, and
telemetry on with a registry plus a buffering span tracer — and pins the
enabled/disabled overhead ratio.

The ISSUE budget is <3% on this workload; the CI floor asserted here is a
looser 10% because shared runners jitter far more than the overhead itself
(the measured ratio on a quiet box is within noise of 1.0).  The absolute
enabled-path timing is tracked across PRs as ``bench_telemetry`` in
``BENCH_baseline.json`` and watched by the regression gate.
"""

from __future__ import annotations

import time

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E22", __name__)
from benchmarks.bench_batch import _specs

from repro import telemetry
from repro.experiments.batch_engine import reset_batch_caches, run_scenarios_batched

#: CI ceiling on enabled/disabled wall-time ratio (ISSUE budget is 1.03 on a
#: quiet box; runner jitter needs the headroom).
MAX_OVERHEAD_RATIO = 1.10

#: Timing repeats per variant; best-of keeps scheduler noise out.
REPEATS = 3


def _measure_disabled() -> list:
    """The batched path with telemetry off (the default everywhere)."""
    reset_batch_caches()
    return run_scenarios_batched(_specs())


def _measure_enabled() -> list:
    """The batched path inside a metrics-only telemetry session."""
    reset_batch_caches()
    with telemetry.session():
        return run_scenarios_batched(_specs())


def _measure_enabled_traced() -> list:
    """The batched path with metrics and a buffering span tracer active."""
    reset_batch_caches()
    sink: list = []
    with telemetry.session(sink=sink.extend) as (_, tracer):
        with tracer.span("bench"):
            return run_scenarios_batched(_specs())


def _best(workload) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - start)
    return best


def test_e22_telemetry_overhead(benchmark):
    def workload():
        return (
            _best(_measure_disabled),
            _best(_measure_enabled),
            _best(_measure_enabled_traced),
        )

    disabled_s, enabled_s, traced_s = benchmark.pedantic(
        workload, rounds=1, iterations=1
    )

    lanes = len(_specs())
    ratio = enabled_s / disabled_s if disabled_s > 0 else 1.0
    traced_ratio = traced_s / disabled_s if disabled_s > 0 else 1.0
    print_table(
        "E22 — telemetry overhead on the 6144-lane batched sweep",
        ("variant", "best_s", "ratio"),
        [
            ("disabled", f"{disabled_s:.4f}", "1.00"),
            ("metrics", f"{enabled_s:.4f}", f"{ratio:.3f}"),
            ("metrics+spans", f"{traced_s:.4f}", f"{traced_ratio:.3f}"),
        ],
    )
    record(
        benchmark,
        experiment="E22",
        lanes=lanes,
        disabled_s=round(disabled_s, 6),
        enabled_s=round(enabled_s, 6),
        traced_s=round(traced_s, 6),
        overhead_ratio=round(ratio, 4),
        traced_overhead_ratio=round(traced_ratio, 4),
    )
    assert ratio < MAX_OVERHEAD_RATIO, (
        f"telemetry overhead {ratio:.3f}x exceeds {MAX_OVERHEAD_RATIO}x "
        f"(enabled {enabled_s:.4f}s vs disabled {disabled_s:.4f}s)"
    )


def test_e22_disabled_is_default_noop():
    """With no session active the registry and tracer are the null singletons."""
    assert telemetry.ENABLED is False
    records = _measure_disabled()
    assert len(records) == len(_specs())
    assert telemetry.REGISTRY.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {},
    }
