"""Experiments E6 & E7 — the simulation relations R′ (Thm 5.2) and R (Thm 5.4).

Paper claim: for every reachable PR state there is a reachable OneStepPR state
related by R′, and for every reachable OneStepPR state a reachable NewPR state
related by R; composing the two transfers acyclicity to PR (Thm 5.5).

Harness: run PR under greedy, random and random-subset schedulers on several
graph families, construct the corresponding OneStepPR and NewPR executions
exactly as Lemmas 5.1/5.3 prescribe, and verify the relations at every
correspondence point.

Since the signature-kernel simulation engine landed, the tracked workload
runs entirely on compiled int kernels: the PR execution is produced by
:class:`~repro.kernels.simulator.SignatureSimulator` (recording the actor
trace) and the chain is checked by
:func:`~repro.verification.simulation.check_full_simulation_chain_masks` —
the same relations, collapsed to int compares and subset masks.  The
object-level checkers remain the oracle:
``tests/test_simulation_engine_differential.py`` pins both implementations
to identical verdicts and counts on these exact workloads, and
``test_e6_e7_matches_object_oracle`` below re-asserts it (untimed).

Expected outcome: the relations hold at 100% of correspondence points; the
NewPR execution is never shorter than the OneStepPR one (dummy steps).
"""

from __future__ import annotations

from functools import lru_cache

from benchmarks._harness import claim_experiment, print_table, record

claim_experiment("E6", __name__)
claim_experiment("E7", __name__)

from repro.core.pr import PartialReversal
from repro.kernels import SignatureSimulator, compile_expander
from repro.kernels.schedulers import MaskGreedyScheduler, MaskRandomScheduler
from repro.topology.generators import (
    grid_instance,
    random_dag_instance,
    worst_case_chain_instance,
)
from repro.verification.simulation import MaskSimulationChain


FAMILIES = {
    "worst-chain-10": lambda: worst_case_chain_instance(10),
    "grid-4x4": lambda: grid_instance(4, 4, oriented_towards_destination=False),
    "random-dag-30": lambda: random_dag_instance(30, edge_probability=0.12, seed=3),
}

SCHEDULERS = {
    "greedy": lambda: MaskGreedyScheduler(),
    "random": lambda: MaskRandomScheduler(seed=17),
    "random-subsets": lambda: MaskRandomScheduler(seed=17, subset_probability=0.5),
}


@lru_cache(maxsize=None)
def _compiled_family(family_name: str):
    """Instance + compiled PR simulator + chain checker, built once per family.

    Topology generation and kernel compilation are one-time setup in the
    production engine too (the campaign runner's ``KernelCache``), so the
    timed workload measures what the experiment actually exercises: the
    simulation hot path and the relation checks.
    """
    instance = FAMILIES[family_name]()
    simulator = SignatureSimulator(compile_expander(PartialReversal(instance)))
    return instance, simulator, MaskSimulationChain(instance)


def _check_all_families():
    rows = []
    all_hold = True
    for family_name in FAMILIES:
        _instance, simulator, chain_checker = _compiled_family(family_name)
        for scheduler_name, scheduler_factory in SCHEDULERS.items():
            trace = []
            outcome = simulator.run_phase(scheduler_factory(), trace=trace)
            chain = chain_checker.check(trace)
            all_hold = all_hold and chain.holds
            rows.append(
                (
                    family_name,
                    scheduler_name,
                    outcome.steps,
                    chain.onestep_steps,
                    chain.newpr_steps,
                    "yes" if chain.r_prime_holds else "NO",
                    "yes" if chain.r_holds else "NO",
                )
            )
    return rows, all_hold


def test_e6_e7_simulation_relations(benchmark):
    rows, all_hold = benchmark.pedantic(_check_all_families, rounds=1, iterations=1)
    print_table(
        "E6/E7 — simulation relations R' and R along PR executions",
        ["family", "scheduler", "PR actions", "OneStepPR steps", "NewPR steps", "R' holds", "R holds"],
        rows,
    )
    record(benchmark, experiment="E6/E7", rows=rows)
    assert all_hold
    # NewPR never needs fewer steps than OneStepPR (dummy steps only add)
    assert all(row[4] >= row[3] for row in rows)


def test_e6_e7_matches_object_oracle():
    """The kernel workload reproduces the object-level chain check exactly."""
    from repro.automata.executions import run
    from repro.schedulers.greedy import GreedyScheduler
    from repro.schedulers.random_scheduler import RandomScheduler
    from repro.verification.simulation import check_full_simulation_chain

    object_schedulers = {
        "greedy": lambda: GreedyScheduler(),
        "random": lambda: RandomScheduler(seed=17),
        "random-subsets": lambda: RandomScheduler(seed=17, subset_probability=0.5),
    }
    fast_rows, _ = _check_all_families()
    oracle_rows = []
    for family_name, family in FAMILIES.items():
        for scheduler_name, scheduler_factory in object_schedulers.items():
            instance = family()
            result = run(PartialReversal(instance), scheduler_factory())
            chain = check_full_simulation_chain(result.execution)
            oracle_rows.append(
                (
                    family_name,
                    scheduler_name,
                    result.steps_taken,
                    chain.r_prime.corresponding_execution.length,
                    chain.r.corresponding_execution.length,
                    "yes" if chain.r_prime.holds else "NO",
                    "yes" if chain.r.holds else "NO",
                )
            )
    assert fast_rows == oracle_rows
