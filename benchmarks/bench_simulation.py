"""Experiments E6 & E7 — the simulation relations R′ (Thm 5.2) and R (Thm 5.4).

Paper claim: for every reachable PR state there is a reachable OneStepPR state
related by R′, and for every reachable OneStepPR state a reachable NewPR state
related by R; composing the two transfers acyclicity to PR (Thm 5.5).

Harness: record PR executions under greedy, random and random-subset
schedulers on several graph families, construct the corresponding OneStepPR
and NewPR executions exactly as Lemmas 5.1/5.3 prescribe, and verify the
relations at every correspondence point.

Expected outcome: the relations hold at 100% of correspondence points; the
NewPR execution is never shorter than the OneStepPR one (dummy steps).
"""

from __future__ import annotations

from benchmarks._harness import print_table, record

from repro.automata.executions import run
from repro.core.pr import PartialReversal
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.random_scheduler import RandomScheduler
from repro.topology.generators import (
    grid_instance,
    random_dag_instance,
    worst_case_chain_instance,
)
from repro.verification.simulation import check_full_simulation_chain


FAMILIES = {
    "worst-chain-10": lambda: worst_case_chain_instance(10),
    "grid-4x4": lambda: grid_instance(4, 4, oriented_towards_destination=False),
    "random-dag-30": lambda: random_dag_instance(30, edge_probability=0.12, seed=3),
}

SCHEDULERS = {
    "greedy": lambda: GreedyScheduler(),
    "random": lambda: RandomScheduler(seed=17),
    "random-subsets": lambda: RandomScheduler(seed=17, subset_probability=0.5),
}


def _check_all_families():
    rows = []
    all_hold = True
    for family_name, family in FAMILIES.items():
        for scheduler_name, scheduler_factory in SCHEDULERS.items():
            instance = family()
            result = run(PartialReversal(instance), scheduler_factory())
            chain = check_full_simulation_chain(result.execution)
            all_hold = all_hold and chain.holds
            onestep_len = chain.r_prime.corresponding_execution.length
            newpr_len = chain.r.corresponding_execution.length
            rows.append(
                (
                    family_name,
                    scheduler_name,
                    result.steps_taken,
                    onestep_len,
                    newpr_len,
                    "yes" if chain.r_prime.holds else "NO",
                    "yes" if chain.r.holds else "NO",
                )
            )
    return rows, all_hold


def test_e6_e7_simulation_relations(benchmark):
    rows, all_hold = benchmark.pedantic(_check_all_families, rounds=1, iterations=1)
    print_table(
        "E6/E7 — simulation relations R' and R along PR executions",
        ["family", "scheduler", "PR actions", "OneStepPR steps", "NewPR steps", "R' holds", "R holds"],
        rows,
    )
    record(benchmark, experiment="E6/E7", rows=rows)
    assert all_hold
    # NewPR never needs fewer steps than OneStepPR (dummy steps only add)
    assert all(row[4] >= row[3] for row in rows)
