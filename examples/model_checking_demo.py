#!/usr/bin/env python3
"""Exhaustive model checking of the paper's invariants on small graphs.

The paper proves its invariants for every reachable state; this example makes
the same statement machine-checked for every connected DAG on up to five
nodes:

* Invariants 3.1/3.2 (and Corollaries 3.3/3.4) over all reachable PR states;
* Invariants 4.1/4.2 over all reachable NewPR states;
* Theorem 4.3 / 5.5 (acyclicity) over all reachable states of NewPR, PR, and
  Full Reversal.

Run with::

    python examples/model_checking_demo.py [max_nodes]

``max_nodes`` defaults to 4; 5 takes a few minutes because the number of
graphs and the per-graph state spaces both grow quickly.
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.core.full_reversal import FullReversal
from repro.core.new_pr import NewPartialReversal
from repro.core.pr import PartialReversal
from repro.exploration.enumerate_graphs import all_connected_dag_instances
from repro.exploration.state_space import explore_and_check
from repro.verification.acyclicity import is_acyclic
from repro.verification.invariants import newpr_invariant_checks, pr_invariant_checks


def check_family(name, automaton_class, predicates, max_nodes):
    graphs = 0
    states = 0
    transitions = 0
    failures = 0
    started = time.perf_counter()
    for size in range(2, max_nodes + 1):
        for instance in all_connected_dag_instances(size):
            report = explore_and_check(automaton_class(instance), predicates)
            graphs += 1
            states += report.states_explored
            transitions += report.transitions_explored
            failures += len(report.failures)
    elapsed = time.perf_counter() - started
    print(
        f"  {name:<28} {graphs:5d} graphs  {states:8d} states  "
        f"{transitions:9d} transitions  {failures} violations  ({elapsed:.1f}s)"
    )
    return failures


def main() -> None:
    max_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    print(f"Exhaustive check over all connected DAGs with 2..{max_nodes} nodes\n")

    total_failures = 0
    print("Section 3 invariants (PR):")
    total_failures += check_family("Invariants 3.1/3.2 + corollaries", PartialReversal,
                                   pr_invariant_checks(), max_nodes)
    print("Section 4 invariants (NewPR):")
    total_failures += check_family("Invariants 4.1/4.2", NewPartialReversal,
                                   newpr_invariant_checks(), max_nodes)
    print("Acyclicity (Theorems 4.3 / 5.5 and the FR folklore argument):")
    for name, automaton_class in (("NewPR", NewPartialReversal), ("PR", PartialReversal),
                                  ("FR", FullReversal)):
        total_failures += check_family(f"acyclicity of {name}", automaton_class,
                                       {"acyclic": is_acyclic}, max_nodes)

    print(f"\nTotal violations found: {total_failures}")
    if total_failures == 0:
        print("Every invariant holds on every reachable state of every checked graph.")


if __name__ == "__main__":
    main()
