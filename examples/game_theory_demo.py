#!/usr/bin/env python3
"""Game-theoretic comparison of Full and Partial Reversal (after Charron-Bost et al.).

Section 1 of the paper recalls that, viewed as a game in which every node
chooses its own reversal strategy, the all-Full-Reversal profile is a Nash
equilibrium with maximal social cost, while the all-Partial-Reversal profile
achieves the global optimum whenever it is an equilibrium.  This example
enumerates the restricted {FULL, PARTIAL} strategy game on a few small
instances and prints the full picture.

Run with::

    python examples/game_theory_demo.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.analysis.game_theory import (
    Strategy,
    analyse_game,
    full_reversal_profile,
    partial_reversal_profile,
)
from repro.topology.generators import grid_instance, worst_case_chain_instance


def describe(name, instance) -> None:
    analysis = analyse_game(instance)
    fr_profile = full_reversal_profile(instance)
    pr_profile = partial_reversal_profile(instance)
    print(f"\n=== {name} ({len(instance.non_destination_nodes)} players, "
          f"{2 ** len(instance.non_destination_nodes)} profiles) ===")
    print(f"  social cost of all-FR profile : {analysis.cost_of(fr_profile)}"
          f"  (Nash equilibrium: {fr_profile in analysis.equilibria})")
    print(f"  social cost of all-PR profile : {analysis.cost_of(pr_profile)}"
          f"  (Nash equilibrium: {pr_profile in analysis.equilibria})")
    print(f"  global optimum                : {analysis.optimum_cost}")
    print(f"  Nash equilibria               : {len(analysis.equilibria)} "
          f"with costs {list(analysis.equilibrium_costs())}")

    # show the cheapest and the most expensive equilibrium profiles
    if analysis.equilibria:
        cheapest = min(analysis.equilibria, key=analysis.cost_of)
        priciest = max(analysis.equilibria, key=analysis.cost_of)
        def fmt(profile):
            return ", ".join(
                f"{node}:{'F' if profile.strategy_of(node) is Strategy.FULL else 'P'}"
                for node in instance.non_destination_nodes
            )
        print(f"  cheapest equilibrium          : cost {analysis.cost_of(cheapest)}  [{fmt(cheapest)}]")
        print(f"  most expensive equilibrium    : cost {analysis.cost_of(priciest)}  [{fmt(priciest)}]")


def main() -> None:
    describe("worst-case chain, 4 bad nodes", worst_case_chain_instance(4))
    describe("worst-case chain, 6 bad nodes", worst_case_chain_instance(6))
    describe("2x3 grid, all edges away from the destination",
             grid_instance(2, 3, oriented_towards_destination=False))


if __name__ == "__main__":
    main()
