#!/usr/bin/env python3
"""Quickstart: run Partial Reversal on a small network and verify the paper's claims.

The script builds the worst-case chain (every edge initially points away from
the destination, so no node has a route), runs the four link-reversal
algorithms of the library, checks the paper's invariants and the simulation
chain on the PR execution, and prints a small work comparison.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import os
import sys

# allow running from a fresh checkout without installing the package
sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro import GreedyScheduler, PartialReversal, run
from repro.analysis.work import compare_algorithms
from repro.io.dot import render_ascii
from repro.topology.generators import worst_case_chain_instance
from repro.verification.acyclicity import check_acyclic_execution
from repro.verification.simulation import check_full_simulation_chain


def main() -> None:
    # 1. Build an instance: a chain of 8 "bad" nodes behind destination 0.
    instance = worst_case_chain_instance(8)
    print("instance:", instance)
    print("initial orientation:", render_ascii(instance.initial_orientation()))
    print("bad nodes (no route to the destination):", sorted(instance.bad_nodes()))

    # 2. Run the original Partial Reversal automaton (Algorithm 1) greedily.
    pr = PartialReversal(instance)
    result = run(pr, GreedyScheduler())
    node_steps = sum(len(action.actors()) for action in result.execution.actions)
    print(f"\nPR converged in {result.steps_taken} actions ({node_steps} node steps)")
    print("final orientation:  ", render_ascii(result.final_state.orientation))
    print("destination oriented:", result.final_state.is_destination_oriented())

    # 3. Verify the paper's headline claims on this execution.
    acyclicity = check_acyclic_execution(result.execution)
    print("\nTheorem 5.5 (acyclicity along the PR execution):", acyclicity)
    chain = check_full_simulation_chain(result.execution)
    print("Theorem 5.2 (relation R'):", chain.r_prime)
    print("Theorem 5.4 (relation R): ", chain.r)

    # 4. Compare the work of all four algorithms on the same instance.
    print("\nWork comparison (greedy schedule):")
    for name, summary in compare_algorithms(instance, GreedyScheduler).items():
        print(
            f"  {name:>10}: {summary.node_steps:3d} node steps, "
            f"{summary.edge_reversals:3d} edge reversals, "
            f"{summary.dummy_steps} dummy steps"
        )


if __name__ == "__main__":
    main()
