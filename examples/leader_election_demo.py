#!/usr/bin/env python3
"""Leader election and mutual exclusion on a link-reversal DAG.

The abstract of the paper lists leader election and mutual exclusion (after
Welch & Walter) as applications of link reversal.  This example demonstrates
both on a 4x4 grid:

* the leader-election service repeatedly survives leader failures, electing a
  new leader and re-orienting the DAG towards it with Partial Reversal;
* the token-mutex grants a batch of critical-section requests, keeping the
  graph oriented towards the token holder after every transfer.

Run with::

    python examples/leader_election_demo.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.applications.leader_election import LeaderElectionService
from repro.applications.mutual_exclusion import TokenMutex
from repro.topology.generators import grid_instance


def main() -> None:
    instance = grid_instance(4, 4, oriented_towards_destination=True)
    print(f"Topology: 4x4 grid, {instance.node_count} nodes, {instance.edge_count} links")

    # ------------------------------------------------------------------
    print("\n--- Leader election ---")
    service = LeaderElectionService(instance)
    print(f"initial leader: {service.current_leader()}")
    for round_number in range(4):
        report = service.fail_leader()
        print(
            f"  round {round_number + 1}: leader {report.failed_leader} failed -> "
            f"elected {report.new_leader}; re-orientation took {report.node_steps} "
            f"reversal steps over {report.rounds} rounds; "
            f"leader-oriented: {report.destination_oriented}"
        )

    # ------------------------------------------------------------------
    print("\n--- Token-based mutual exclusion ---")
    mutex = TokenMutex(instance)
    requesters = [15, 3, 12, 6, 9]
    for node in requesters:
        mutex.request(node)
    print(f"token initially at {mutex.token_holder()}, requests: {requesters}")
    for report in mutex.grant_all():
        print(
            f"  token {report.previous_holder} -> {report.requester}: "
            f"request travelled {report.request_path_hops} hops, "
            f"re-orientation took {report.reversal_steps} reversal steps"
        )
    print(f"final holder: {mutex.token_holder()}  "
          f"(token-oriented: {mutex.is_token_oriented()}, acyclic: {mutex.is_acyclic()})")


if __name__ == "__main__":
    main()
