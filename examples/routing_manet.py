#!/usr/bin/env python3
"""MANET routing scenario: TORA-style route maintenance under mobility.

This example exercises the application the paper's introduction motivates:
routing in a network "with frequently changing topology".  It

1. places radio nodes uniformly in the unit square (a random geometric /
   unit-disk graph) and derives a destination-oriented DAG;
2. starts the asynchronous, message-passing link-reversal protocol on it;
3. moves the nodes with a random-waypoint mobility model, which breaks and
   creates links;
4. after every batch of link failures, lets the reversal cascade repair the
   routes and reports the cost (reversals, messages, simulated time);
5. prints the final routing table and the average route stretch.

Run with::

    python examples/routing_manet.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.routing.dag_routing import RoutingTable
from repro.routing.maintenance import RouteMaintenanceSimulation
from repro.topology.manet import random_geometric_instance
from repro.topology.mobility import RandomWaypointMobility


NUM_NODES = 24
RADIUS = 0.38
MOBILITY_STEPS = 15
SPEED = 0.035
SEED = 2024


def main() -> None:
    instance, network = random_geometric_instance(NUM_NODES, radius=RADIUS, seed=SEED)
    print(f"MANET with {instance.node_count} nodes, {instance.edge_count} links, "
          f"destination {instance.destination}")

    simulation = RouteMaintenanceSimulation(instance, seed=SEED)
    mobility = RandomWaypointMobility(network, speed=SPEED, seed=SEED)

    print("\nMobility run:")
    partitioned = False
    for change in mobility.run(MOBILITY_STEPS):
        if change.is_empty:
            continue
        results = simulation.apply_topology_changes([change])
        for result in results:
            status = "partitioned" if result.partitioned else (
                "recovered" if result.destination_oriented else "NOT recovered"
            )
            links = ", ".join(f"{u}-{v}" for u, v in result.failed_links)
            print(
                f"  t={change.step:2d}  failed [{links:<12}]  "
                f"reversals={result.reversals:3d}  messages={result.messages:4d}  "
                f"time={result.elapsed_time:6.1f}  {status}"
            )
            partitioned = partitioned or result.partitioned
        if partitioned:
            print("  (network partitioned from the destination — the reversal cascade "
                  "cannot terminate in the cut-off component; stopping the scenario, "
                  "as a real deployment would fall back to TORA-style partition detection)")
            break

    summary = simulation.summary()
    print("\nSummary over all failure batches:")
    for key, value in summary.items():
        print(f"  {key:>20}: {value:.2f}" if isinstance(value, float) else f"  {key:>20}: {value}")

    # final routing table from the orientation induced by the true heights
    edges = simulation.network.global_directed_edges()
    table = RoutingTable.from_directed_edges(instance, edges)
    print(f"\nRoutable fraction after the run: {table.routable_fraction():.2f}")
    stretch = table.average_stretch()
    if stretch is not None:
        print(f"Average route stretch vs shortest undirected path: {stretch:.2f}")
    print("\nSample routes:")
    for node in list(instance.nodes)[1:6]:
        route = table.route(node)
        rendered = " -> ".join(map(str, route)) if route else "(no route)"
        print(f"  {node}: {rendered}")


if __name__ == "__main__":
    main()
