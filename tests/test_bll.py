"""Unit tests for the Binary Link Labels generalisation (experiment E13)."""

from __future__ import annotations

import pytest

from repro.automata.executions import run
from repro.core.base import Reverse
from repro.core.bll import (
    BinaryLinkLabels,
    bll_matches_partial_reversal,
    full_reversal_as_bll,
    partial_reversal_as_bll,
)
from repro.core.full_reversal import FullReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.schedulers.random_scheduler import RandomScheduler
from repro.schedulers.sequential import SequentialScheduler


class TestConstruction:
    def test_default_marks_empty(self, diamond):
        state = partial_reversal_as_bll(diamond).initial_state()
        assert all(state.marked_neighbours(u) == frozenset() for u in diamond.nodes)

    def test_explicit_initial_marks(self, diamond):
        automaton = BinaryLinkLabels(diamond, initial_marks={"c": ["a"]})
        state = automaton.initial_state()
        assert state.is_marked("c", "a")
        assert not state.is_marked("c", "b")

    def test_marks_must_be_neighbours(self, diamond):
        with pytest.raises(ValueError):
            BinaryLinkLabels(diamond, initial_marks={"c": ["d"]})


class TestPRSpecialisation:
    def test_single_step_matches_onestep_pr(self, diamond):
        bll = partial_reversal_as_bll(diamond)
        pr = OneStepPartialReversal(diamond)
        s = bll.apply(bll.initial_state(), Reverse("c"))
        t = pr.apply(pr.initial_state(), Reverse("c"))
        assert s.graph_signature() == t.graph_signature()
        assert all(s.marks[u] == t.lists[u] for u in diamond.nodes)

    def test_matches_pr_on_sequential_schedule(self, bad_chain):
        schedule = list(bad_chain.non_destination_nodes) * bad_chain.node_count
        assert bll_matches_partial_reversal(bad_chain, schedule)

    def test_matches_pr_on_grid(self, bad_grid):
        schedule = list(bad_grid.non_destination_nodes) * 6
        assert bll_matches_partial_reversal(bad_grid, schedule)

    def test_matches_pr_on_random_dag(self, random_dag):
        schedule = list(random_dag.non_destination_nodes) * 8
        assert bll_matches_partial_reversal(random_dag, schedule)

    def test_converges_like_pr(self, bad_chain):
        bll_result = run(partial_reversal_as_bll(bad_chain), SequentialScheduler())
        pr_result = run(OneStepPartialReversal(bad_chain), SequentialScheduler())
        assert bll_result.final_state.graph_signature() == pr_result.final_state.graph_signature()


class TestFRSpecialisation:
    def test_no_marking_means_full_reversal(self, bad_chain):
        bll_result = run(full_reversal_as_bll(bad_chain), SequentialScheduler())
        fr_result = run(FullReversal(bad_chain), SequentialScheduler())
        assert bll_result.steps_taken == fr_result.steps_taken
        assert bll_result.final_state.graph_signature() == fr_result.final_state.graph_signature()

    def test_fr_mode_never_sets_marks(self, bad_chain):
        result = run(full_reversal_as_bll(bad_chain), SequentialScheduler())
        for state in result.execution.states:
            assert all(state.marks[u] == frozenset() for u in bad_chain.nodes)


class TestAcyclicity:
    def test_pr_instantiation_stays_acyclic(self, random_dag):
        result = run(partial_reversal_as_bll(random_dag), RandomScheduler(seed=3))
        assert all(state.is_acyclic() for state in result.execution.states)

    def test_fr_instantiation_stays_acyclic(self, random_dag):
        result = run(full_reversal_as_bll(random_dag), RandomScheduler(seed=3))
        assert all(state.is_acyclic() for state in result.execution.states)

    def test_converges_to_destination_orientation(self, bad_grid):
        result = run(partial_reversal_as_bll(bad_grid), SequentialScheduler())
        assert result.converged
        assert result.final_state.is_destination_oriented()
