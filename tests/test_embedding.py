"""Unit tests for the left-to-right planar embedding (Section 4.2)."""

from __future__ import annotations

import pytest

from repro.core.embedding import PlanarEmbedding, topological_order
from repro.core.graph import GraphValidationError, LinkReversalInstance
from repro.topology.generators import chain_instance, random_dag_instance


class TestTopologicalOrder:
    def test_chain_order(self, bad_chain):
        assert topological_order(bad_chain) == (0, 1, 2, 3, 4)

    def test_order_respects_edges(self, random_dag):
        order = topological_order(random_dag)
        position = {u: i for i, u in enumerate(order)}
        for u, v in random_dag.initial_edges:
            assert position[u] < position[v]

    def test_order_is_deterministic(self, random_dag):
        assert topological_order(random_dag) == topological_order(random_dag)

    def test_cycle_rejected(self):
        instance = LinkReversalInstance(
            nodes=(0, 1, 2), destination=0, initial_edges=((0, 1), (1, 2), (2, 0))
        )
        with pytest.raises(GraphValidationError):
            topological_order(instance)

    def test_all_nodes_present(self, diamond):
        assert set(topological_order(diamond)) == set(diamond.nodes)


class TestPlanarEmbedding:
    def test_from_topological_order_is_consistent(self, random_dag):
        embedding = PlanarEmbedding.from_topological_order(random_dag)
        assert embedding.is_consistent_with_initial_orientation()
        embedding.validate()

    def test_positions_are_permutation(self, diamond):
        embedding = PlanarEmbedding.from_topological_order(diamond)
        positions = sorted(embedding.position(u) for u in diamond.nodes)
        assert positions == list(range(diamond.node_count))

    def test_left_right_predicates(self, bad_chain):
        embedding = PlanarEmbedding.from_topological_order(bad_chain)
        assert embedding.is_left_of(0, 4)
        assert embedding.is_right_of(4, 0)
        assert not embedding.is_left_of(3, 3)

    def test_left_to_right_order(self, bad_chain):
        embedding = PlanarEmbedding.from_topological_order(bad_chain)
        assert embedding.left_to_right_order() == (0, 1, 2, 3, 4)

    def test_rightmost_and_leftmost(self, bad_chain):
        embedding = PlanarEmbedding.from_topological_order(bad_chain)
        assert embedding.rightmost([1, 3, 2]) == 3
        assert embedding.leftmost([1, 3, 2]) == 1

    def test_rightmost_empty_raises(self, bad_chain):
        embedding = PlanarEmbedding.from_topological_order(bad_chain)
        with pytest.raises(ValueError):
            embedding.rightmost([])
        with pytest.raises(ValueError):
            embedding.leftmost([])

    def test_initial_edges_go_left_to_right(self, random_dag):
        embedding = PlanarEmbedding.from_topological_order(random_dag)
        orientation = random_dag.initial_orientation()
        for u, v in random_dag.initial_edges:
            assert embedding.edge_goes_left_to_right(orientation, u, v)

    def test_reversed_edge_goes_right_to_left(self, bad_chain):
        embedding = PlanarEmbedding.from_topological_order(bad_chain)
        orientation = bad_chain.initial_orientation()
        orientation.reverse_edge(4, 3)  # 3->4 becomes 4->3
        assert not embedding.edge_goes_left_to_right(orientation, 3, 4)

    def test_from_explicit_order(self, diamond):
        order = ["d", "a", "b", "c"]
        embedding = PlanarEmbedding.from_order(diamond, order)
        assert embedding.position("d") == 0
        assert embedding.position("c") == 3
        embedding.validate()

    def test_inconsistent_order_rejected_by_validate(self, diamond):
        embedding = PlanarEmbedding.from_order(diamond, ["c", "a", "b", "d"])
        with pytest.raises(GraphValidationError):
            embedding.validate()

    def test_missing_position_rejected(self, diamond):
        with pytest.raises(GraphValidationError):
            PlanarEmbedding(diamond, {"d": 0, "a": 1})

    def test_non_permutation_rejected(self, diamond):
        with pytest.raises(GraphValidationError):
            PlanarEmbedding(diamond, {"d": 0, "a": 1, "b": 1, "c": 2})

    def test_embedding_exists_for_every_generated_dag(self):
        for seed in range(5):
            instance = random_dag_instance(12, edge_probability=0.3, seed=seed)
            embedding = PlanarEmbedding.from_topological_order(instance)
            assert embedding.is_consistent_with_initial_orientation()

    def test_chain_embedding_matches_distance(self):
        instance = chain_instance(7, towards_destination=False)
        embedding = PlanarEmbedding.from_topological_order(instance)
        # the chain is already in topological order
        for node in instance.nodes:
            assert embedding.position(node) == node
