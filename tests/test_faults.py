"""Tests for the chaos plane: fault plans, the self-healing executor and
the crash-stop ``node_faults`` scenario axis."""

from __future__ import annotations

import os

import pytest

from repro.experiments.engines import ENGINE_AUTO, get_engine
from repro.experiments.executor import run_campaign
from repro.experiments.runner import execute_scenario, resolve_engine
from repro.experiments.spec import CampaignSpec, ScenarioSpec
from repro.experiments.store import ResultStore
from repro.faults import FAULT_PLAN_ENV, FaultPlan, select_crashed_ids
from repro.faults import injector


def _volatile_stripped(store: ResultStore) -> dict:
    return {
        r["run_id"]: {k: v for k, v in r.items() if k != "wall_time_s"}
        for r in store.records()
    }


class TestFaultPlan:
    def test_fault_for_is_deterministic(self):
        plan = FaultPlan(seed=7, crash=0.3, hang=0.2, slow=0.1, corrupt=0.1)
        rolls = [plan.fault_for(i) for i in range(50)]
        assert rolls == [plan.fault_for(i) for i in range(50)]
        assert any(rolls)  # at 0.7 stacked probability some chunk faults
        assert any(r is None for r in rolls)

    def test_strikes_bound_faulted_attempts(self):
        plan = FaultPlan(seed=1, overrides={0: "crash"}, strikes=2)
        assert plan.fault_for(0, attempt=0) == "crash"
        assert plan.fault_for(0, attempt=1) == "crash"
        assert plan.fault_for(0, attempt=2) is None

    def test_overrides_pin_and_exempt(self):
        plan = FaultPlan(seed=3, crash=1.0, overrides={4: "none", 5: "hang"})
        assert plan.fault_for(4) is None
        assert plan.fault_for(5) == "hang"
        assert plan.fault_for(6) == "crash"

    def test_json_and_env_round_trip(self, monkeypatch):
        plan = FaultPlan(seed=9, crash=0.1, hang=0.2, strikes=3,
                         overrides={2: "corrupt"})
        assert FaultPlan.from_json(plan.to_json()) == plan

        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        injector.arm_pool_worker()
        try:
            assert injector.active_plan() == plan
        finally:
            injector.disarm()
        assert injector.active_plan() is None

    def test_malformed_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "{not json")
        injector.arm_pool_worker()
        try:
            assert injector.active_plan() is None
        finally:
            injector.disarm()

    @pytest.mark.parametrize("bad", [
        dict(crash=-0.1), dict(hang=1.5), dict(crash=0.7, corrupt=0.7),
        dict(strikes=-1), dict(slow_s=-1.0),
    ])
    def test_validate_rejects(self, bad):
        with pytest.raises(ValueError):
            FaultPlan(seed=0, **bad).validate()


class TestSelectCrashedIds:
    def test_deterministic_and_excludes_destination(self):
        first = select_crashed_ids(20, 0, 5, topology_seed=3)
        assert first == select_crashed_ids(20, 0, 5, topology_seed=3)
        assert len(first) == 5
        assert 0 not in first
        assert first != select_crashed_ids(20, 0, 5, topology_seed=4)

    def test_too_many_faults_rejected(self):
        with pytest.raises(ValueError):
            select_crashed_ids(4, 0, 3, topology_seed=0)


class TestSelfHealingExecutor:
    def _campaign(self, **overrides) -> CampaignSpec:
        base = dict(
            name="chaos", families=("chain",), algorithms=("pr", "fr"),
            schedulers=("greedy",), sizes=(4, 6), replicates=2,
        )
        base.update(overrides)
        return CampaignSpec(**base)

    def test_chaos_campaign_matches_fault_free_twin(self, tmp_path):
        # one of each fault kind, pinned to specific chunks; the executor
        # must recover every one and produce records identical to a clean run
        plan = FaultPlan(seed=1, overrides={
            0: "crash", 1: "hang", 2: "corrupt", 3: "slow",
        })
        chaos_store = ResultStore(tmp_path / "chaos")
        clean_store = ResultStore(tmp_path / "clean")
        campaign = self._campaign()
        report = run_campaign(
            campaign, chaos_store, workers=2, chunk_size=2,
            fault_plan=plan, watchdog_s=1.0, backoff_s=0.01,
        )
        run_campaign(campaign, clean_store, workers=2, chunk_size=2)

        assert report.ok == report.executed == 8
        assert report.crashed == 0
        assert report.faults_injected >= 4
        assert report.retries >= 1
        assert _volatile_stripped(chaos_store) == _volatile_stripped(clean_store)

    def test_watchdog_kills_hung_worker(self, tmp_path):
        plan = FaultPlan(seed=1, overrides={0: "hang"})
        store = ResultStore(tmp_path)
        report = run_campaign(
            self._campaign(sizes=(4,)), store, workers=2, chunk_size=2,
            fault_plan=plan, watchdog_s=0.5, backoff_s=0.01,
        )
        assert report.ok == report.executed == 4
        assert report.watchdog_kills >= 1
        assert report.fault_kinds.get("hang") == 1

    def test_corrupt_chunk_detected_and_retried(self, tmp_path):
        plan = FaultPlan(seed=1, overrides={0: "corrupt", 1: "corrupt"})
        store = ResultStore(tmp_path)
        report = run_campaign(
            self._campaign(sizes=(4,)), store, workers=2, chunk_size=2,
            fault_plan=plan, backoff_s=0.01,
        )
        assert report.ok == 4
        assert report.corrupt_chunks == 2
        assert report.retries >= 2
        assert not any("__corrupt__" in r["run_id"] for r in store.records())

    def test_repeated_pool_breakage_exhausts_retries(self, tmp_path):
        # every attempt of every chunk crashes: reform budget and retry
        # budgets are both exhausted, yet the campaign completes unattended
        # with honest crashed records instead of hanging or raising
        plan = FaultPlan(seed=1, crash=1.0, strikes=99)
        store = ResultStore(tmp_path)
        report = run_campaign(
            self._campaign(sizes=(4, 6), algorithms=("pr",)),
            store, workers=2, chunk_size=1,
            fault_plan=plan, max_retries=1, backoff_s=0.01, max_pool_reforms=1,
        )
        assert report.executed == 4
        assert report.crashed == 4
        assert report.ok == 0
        assert report.pool_reforms >= 1
        assert all(r["status"] == "crashed" for r in store.records())

    def test_degrades_to_serial_when_pool_unavailable(self, tmp_path, monkeypatch):
        def no_pool(*args, **kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(
            "repro.experiments.executor.ProcessPoolExecutor", no_pool
        )
        store = ResultStore(tmp_path)
        report = run_campaign(
            self._campaign(sizes=(4,)), store, workers=2, chunk_size=2,
        )
        assert report.ok == report.executed == 4
        assert report.degraded_serial == 2  # every chunk ran in-process

    def test_timeout_and_hang_are_distinct(self, tmp_path):
        # a per-run timeout is an in-worker deadline: the record says
        # "timeout" and the watchdog never fires; a hang is an unresponsive
        # worker: the watchdog kills it and the retry succeeds with "ok"
        timeout_store = ResultStore(tmp_path / "timeout")
        report = run_campaign(
            self._campaign(families=("chain",), sizes=(80,), algorithms=("fr",),
                           replicates=1),
            timeout_store, workers=2, timeout_s=0.0, watchdog_s=5.0,
        )
        assert report.timeouts == 1
        assert report.watchdog_kills == 0
        assert timeout_store.records()[0]["status"] == "timeout"

        hang_store = ResultStore(tmp_path / "hang")
        report = run_campaign(
            self._campaign(sizes=(4,), algorithms=("pr",)),
            hang_store, workers=2, chunk_size=4,
            fault_plan=FaultPlan(seed=1, overrides={0: "hang"}),
            watchdog_s=0.5, backoff_s=0.01,
        )
        assert report.watchdog_kills == 1
        assert report.timeouts == 0
        assert all(r["status"] == "ok" for r in hang_store.records())

    def test_inline_execution_ignores_fault_plan(self, tmp_path):
        # workers=1 runs in-process: injecting a crash there would kill the
        # campaign itself, so the plan is ignored (with a warning)
        plan = FaultPlan(seed=1, crash=1.0, strikes=99)
        store = ResultStore(tmp_path)
        report = run_campaign(
            self._campaign(sizes=(4,)), store, workers=1, fault_plan=plan,
        )
        assert report.ok == report.executed == 4
        assert report.faults_injected == 0
        assert os.environ.get(FAULT_PLAN_ENV) is None


class TestNodeFaultsAxis:
    def _spec(self, **overrides) -> ScenarioSpec:
        base = dict(family="chain", size=10, algorithm="pr", scheduler="greedy",
                    topology_seed=3, scheduler_seed=5)
        base.update(overrides)
        return ScenarioSpec(**base)

    def test_kernel_run_is_deterministic(self):
        spec = self._spec(node_faults=3).to_dict()
        first = execute_scenario(dict(spec))
        second = execute_scenario(dict(spec))
        assert first["status"] == "ok"
        assert first["crashed_nodes"] == 3
        assert first["converged"] is True  # quiescent: no live sink remains
        assert first["acyclic_final"] is True
        volatile = ("wall_time_s",)
        assert {k: v for k, v in first.items() if k not in volatile} == {
            k: v for k, v in second.items() if k not in volatile
        }

    def test_async_run_supports_node_faults(self):
        record = execute_scenario(
            self._spec(delay_model="uniform", node_faults=3)
        )
        assert record["status"] == "ok"
        assert record["crashed_nodes"] == 3
        assert record["converged"] is True

    def test_fault_free_record_unchanged(self):
        record = execute_scenario(self._spec())
        assert record["crashed_nodes"] == 0
        assert record["destination_oriented"] is True

    def test_engine_routing(self):
        assert resolve_engine(ENGINE_AUTO, self._spec(node_faults=2)) == "kernel"
        assert resolve_engine(
            ENGINE_AUTO, self._spec(delay_model="fixed", node_faults=2)
        ) == "async"
        for name in ("batch", "legacy", "dataplane"):
            engine = get_engine(name)
            spec = self._spec(node_faults=2)
            assert not engine.supports(spec)
            assert "node_faults" in engine.unsupported_reason(spec) or \
                "traffic" in engine.unsupported_reason(spec)

    def test_unsupported_algorithm_is_error_record(self):
        record = execute_scenario(self._spec(algorithm="bll", node_faults=2))
        assert record["status"] == "error"
        assert "engine" in record["error"]

    def test_validate_bounds_and_exclusions(self):
        with pytest.raises(ValueError):
            self._spec(node_faults=-1).validate()
        with pytest.raises(ValueError):
            self._spec(size=4, node_faults=3).validate()  # must leave a live node
        with pytest.raises(ValueError):
            self._spec(node_faults=2, failure_model="link-failures",
                       failure_count=1).validate()
        with pytest.raises(ValueError):
            self._spec(node_faults=2, traffic="steady").validate()

    def test_run_id_back_compatible(self):
        # node_faults=0 must not change existing run ids (stores resume),
        # while a faulted spec gets its own identity
        assert self._spec().run_id == self._spec(node_faults=0).run_id
        assert self._spec(node_faults=2).run_id != self._spec().run_id

    def test_campaign_axis_expansion(self):
        campaign = CampaignSpec(
            name="faults", families=("chain",), algorithms=("pr",),
            schedulers=("greedy",), sizes=(4, 10), replicates=1,
            node_fault_counts=(0, 3),
        )
        specs = list(campaign.expand())
        assert campaign.run_count == len(specs)
        # size 4 cannot host 3 crashed nodes (needs size-2 >= 3), so only
        # size 10 gets the faulted cell
        faulted = [s for s in specs if s.node_faults == 3]
        assert [s.size for s in faulted] == [10]
        assert len(specs) == 3
