"""Shared fixtures for the test suite.

The fixtures provide a handful of canonical instances that the paper's figures
and the literature's examples revolve around:

* ``bad_chain`` — a path with every edge pointing away from the destination
  (every non-destination node starts with no route);
* ``good_chain`` — the same path already destination oriented;
* ``diamond`` — the destination plus a 2-path diamond, the smallest instance
  where PR and FR genuinely differ;
* ``small_grid`` — a 3×3 mesh (2-connected, used by the application tests);
* ``random_dag`` — a medium random DAG for randomized checks.
"""

from __future__ import annotations

import pytest

from repro.core.graph import LinkReversalInstance
from repro.topology.generators import (
    chain_instance,
    grid_instance,
    random_dag_instance,
    worst_case_chain_instance,
)


@pytest.fixture
def bad_chain() -> LinkReversalInstance:
    """Path 0-1-2-3-4 with the destination 0 and all edges pointing away from it."""
    return chain_instance(5, towards_destination=False)


@pytest.fixture
def good_chain() -> LinkReversalInstance:
    """Path 0-1-2-3-4 already oriented towards the destination 0."""
    return chain_instance(5, towards_destination=True)


@pytest.fixture
def diamond() -> LinkReversalInstance:
    """Destination ``d`` with two parallel 2-hop branches joining at node ``c``.

    Initial orientation: d->a, d->b, a->c, b->c, so ``c`` is the unique sink
    and no node has a path to ``d``.
    """
    return LinkReversalInstance.from_directed_edges(
        nodes=["d", "a", "b", "c"],
        destination="d",
        edges=[("d", "a"), ("d", "b"), ("a", "c"), ("b", "c")],
    )


@pytest.fixture
def small_grid() -> LinkReversalInstance:
    """3x3 mesh, destination at the top-left corner, initially destination oriented."""
    return grid_instance(3, 3, oriented_towards_destination=True)


@pytest.fixture
def bad_grid() -> LinkReversalInstance:
    """3x3 mesh with every edge pointing away from the destination corner."""
    return grid_instance(3, 3, oriented_towards_destination=False)


@pytest.fixture
def random_dag() -> LinkReversalInstance:
    """A seeded 20-node random DAG (connected)."""
    return random_dag_instance(20, edge_probability=0.25, seed=7)


@pytest.fixture
def worst_chain() -> LinkReversalInstance:
    """The 6-bad-node worst-case chain used by the work experiments."""
    return worst_case_chain_instance(6)
