"""Unit tests for the schedulers (adversaries)."""

from __future__ import annotations

import pytest

from repro.automata.executions import run
from repro.core.full_reversal import FullReversal
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal, ReverseSet
from repro.schedulers.adversarial import AdversarialScheduler, LazyScheduler
from repro.schedulers.base import RoundRobinScheduler, TraceScheduler
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.random_scheduler import RandomScheduler
from repro.schedulers.sequential import SequentialScheduler


class TestGreedyScheduler:
    def test_issues_set_actions_for_pr(self, bad_grid):
        automaton = PartialReversal(bad_grid)
        scheduler = GreedyScheduler()
        scheduler.reset(automaton)
        action = scheduler.select(automaton, automaton.initial_state())
        assert isinstance(action, ReverseSet)

    def test_round_counter(self, bad_chain):
        automaton = PartialReversal(bad_chain)
        scheduler = GreedyScheduler()
        result = run(automaton, scheduler)
        assert scheduler.rounds >= 1
        assert result.converged

    def test_serialised_rounds_for_single_node_automata(self, bad_grid):
        automaton = OneStepPartialReversal(bad_grid)
        scheduler = GreedyScheduler()
        result = run(automaton, scheduler)
        assert result.converged
        assert result.final_state.is_destination_oriented()

    def test_serialised_pr_with_concurrency_disabled(self, bad_chain):
        automaton = PartialReversal(bad_chain)
        scheduler = GreedyScheduler(concurrent_for_pr=False)
        result = run(automaton, scheduler)
        assert result.converged
        # every action is then a singleton set
        assert all(len(a.actors()) == 1 for a in result.execution.actions)

    def test_returns_none_when_quiescent(self, good_chain):
        automaton = PartialReversal(good_chain)
        scheduler = GreedyScheduler()
        scheduler.reset(automaton)
        assert scheduler.select(automaton, automaton.initial_state()) is None


class TestSequentialScheduler:
    def test_deterministic(self, bad_grid):
        r1 = run(OneStepPartialReversal(bad_grid), SequentialScheduler())
        r2 = run(OneStepPartialReversal(bad_grid), SequentialScheduler())
        assert [a.node for a in r1.execution.actions] == [a.node for a in r2.execution.actions]

    def test_picks_first_enabled_in_node_order(self, bad_grid):
        automaton = OneStepPartialReversal(bad_grid)
        scheduler = SequentialScheduler()
        state = automaton.initial_state()
        action = scheduler.select(automaton, state)
        expected = min(state.sinks(), key=list(bad_grid.nodes).index)
        assert action.node == expected


class TestRandomScheduler:
    def test_reproducible_with_same_seed(self, bad_grid):
        r1 = run(OneStepPartialReversal(bad_grid), RandomScheduler(seed=99))
        r2 = run(OneStepPartialReversal(bad_grid), RandomScheduler(seed=99))
        assert [a.node for a in r1.execution.actions] == [a.node for a in r2.execution.actions]

    def test_different_seeds_can_differ(self, bad_grid):
        r1 = run(OneStepPartialReversal(bad_grid), RandomScheduler(seed=1))
        r2 = run(OneStepPartialReversal(bad_grid), RandomScheduler(seed=2))
        # both converge to the same orientation even if the orders differ
        assert r1.final_state.graph_signature() == r2.final_state.graph_signature()

    def test_invalid_subset_probability(self):
        with pytest.raises(ValueError):
            RandomScheduler(seed=0, subset_probability=1.5)

    def test_subset_probability_only_affects_pr(self, bad_chain):
        result = run(
            NewPartialReversal(bad_chain), RandomScheduler(seed=0, subset_probability=1.0)
        )
        assert result.converged
        assert all(len(a.actors()) == 1 for a in result.execution.actions)

    def test_subset_actions_for_pr(self):
        from repro.topology.generators import star_instance

        instance = star_instance(6, destination_is_center=True)
        result = run(PartialReversal(instance), RandomScheduler(seed=5, subset_probability=1.0))
        assert result.converged
        assert any(len(a.actors()) > 1 for a in result.execution.actions)


class TestAdversarialAndLazy:
    def test_adversarial_prefers_far_sinks(self, bad_grid):
        automaton = OneStepPartialReversal(bad_grid)
        scheduler = AdversarialScheduler()
        scheduler.reset(automaton)
        state = automaton.initial_state()
        action = scheduler.select(automaton, state)
        # node 8 (the far corner) is the unique sink and also the farthest node
        assert action.node == 8

    def test_lazy_prefers_near_sinks(self, bad_grid):
        automaton = OneStepPartialReversal(bad_grid)
        # step once so that several sinks exist at different distances
        state = automaton.apply(automaton.initial_state(), next(automaton.enabled_actions(automaton.initial_state())))
        lazy = LazyScheduler()
        lazy.reset(automaton)
        adversarial = AdversarialScheduler()
        adversarial.reset(automaton)
        lazy_pick = lazy.select(automaton, state)
        adversarial_pick = adversarial.select(automaton, state)
        assert lazy_pick is not None and adversarial_pick is not None

    def test_both_converge(self, worst_chain):
        for scheduler in (AdversarialScheduler(), LazyScheduler()):
            result = run(OneStepPartialReversal(worst_chain), scheduler)
            assert result.converged
            assert result.final_state.is_destination_oriented()

    def test_work_is_schedule_independent_for_fr(self, worst_chain):
        """FR total work does not depend on the adversary (Busch & Tirthapura)."""
        counts = set()
        for scheduler in (
            GreedyScheduler(),
            SequentialScheduler(),
            AdversarialScheduler(),
            LazyScheduler(),
            RandomScheduler(seed=77),
        ):
            result = run(FullReversal(worst_chain), scheduler)
            counts.add(result.steps_taken)
        assert len(counts) == 1


class TestRoundRobinScheduler:
    def test_converges(self, bad_grid):
        result = run(OneStepPartialReversal(bad_grid), RoundRobinScheduler())
        assert result.converged
        assert result.final_state.is_destination_oriented()

    def test_fairness_every_node_eventually_steps(self, worst_chain):
        result = run(OneStepPartialReversal(worst_chain), RoundRobinScheduler())
        stepped = {a.node for a in result.execution.actions}
        # on the worst-case chain every non-destination node must step at least once
        assert stepped == set(worst_chain.non_destination_nodes)


class TestTraceSchedulerEdgeCases:
    def test_empty_trace_means_no_steps(self, bad_chain):
        result = run(OneStepPartialReversal(bad_chain), TraceScheduler([]))
        assert result.steps_taken == 0

    def test_reset_rewinds_position(self, bad_chain):
        scheduler = TraceScheduler([4])
        automaton = OneStepPartialReversal(bad_chain)
        run(automaton, scheduler)
        result = run(automaton, scheduler)  # run() calls reset, so the trace replays
        assert result.steps_taken == 1
