"""Unit tests for the state-space explorer, random-walk checker and graph enumeration."""

from __future__ import annotations

import pytest

from repro.core.full_reversal import FullReversal
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.exploration.enumerate_graphs import (
    all_connected_dag_instances,
    all_dag_instances,
    sample_dag_instances,
)
from repro.exploration.random_walk import RandomWalkChecker
from repro.exploration.state_space import StateSpaceExplorer, explore_and_check
from repro.verification.invariants import newpr_invariant_checks, pr_invariant_checks
from repro.verification.acyclicity import is_acyclic


class TestEnumeration:
    def test_count_for_three_nodes(self):
        # three candidate edges, all subsets with at least one edge: 2^3 - 1
        instances = list(all_dag_instances(3))
        assert len(instances) == 7

    def test_all_are_dags(self):
        assert all(i.is_initially_acyclic() for i in all_dag_instances(4))

    def test_connected_filter(self):
        connected = list(all_connected_dag_instances(4))
        assert connected
        assert all(i.is_connected() for i in connected)

    def test_destination_index(self):
        instances = list(all_dag_instances(3, destination_index=2))
        assert all(i.destination == 2 for i in instances)

    def test_destination_index_out_of_range(self):
        with pytest.raises(ValueError):
            list(all_dag_instances(3, destination_index=5))

    def test_min_edges_filter(self):
        instances = list(all_dag_instances(3, min_edges=3))
        assert all(i.edge_count >= 3 for i in instances)

    def test_sampling_produces_requested_count(self):
        instances = list(sample_dag_instances(6, count=5, seed=1))
        assert len(instances) == 5
        assert all(i.is_connected() for i in instances)

    def test_sampling_reproducible(self):
        a = [i.initial_edges for i in sample_dag_instances(6, count=3, seed=9)]
        b = [i.initial_edges for i in sample_dag_instances(6, count=3, seed=9)]
        assert a == b

    def test_sampling_invalid_probability(self):
        with pytest.raises(ValueError):
            list(sample_dag_instances(5, count=1, edge_probability=0.0))


class TestStateSpaceExplorer:
    def test_explores_whole_space_of_small_chain(self, bad_chain):
        report = StateSpaceExplorer(NewPartialReversal(bad_chain)).explore()
        assert report.states_explored > 1
        assert not report.truncated
        assert report.quiescent_states >= 1

    def test_invariants_hold_on_all_reachable_newpr_states(self):
        for instance in all_connected_dag_instances(4):
            report = explore_and_check(
                NewPartialReversal(instance), newpr_invariant_checks()
            )
            assert report.all_predicates_hold, str(report)

    def test_invariants_hold_on_all_reachable_pr_states(self):
        checked = 0
        for instance in all_connected_dag_instances(4):
            report = explore_and_check(PartialReversal(instance), pr_invariant_checks())
            assert report.all_predicates_hold, str(report)
            checked += 1
        assert checked > 0

    def test_acyclicity_on_all_reachable_states_of_all_algorithms(self):
        predicates = {"acyclic": is_acyclic}
        for instance in all_connected_dag_instances(4):
            for automaton_class in (NewPartialReversal, OneStepPartialReversal, FullReversal):
                report = explore_and_check(automaton_class(instance), predicates)
                assert report.all_predicates_hold, str(report)

    def test_truncation(self, bad_grid):
        report = StateSpaceExplorer(NewPartialReversal(bad_grid), max_states=3).explore()
        assert report.truncated
        assert report.states_explored <= 3

    def test_single_action_mode_is_smaller_or_equal(self, bad_grid):
        full = StateSpaceExplorer(PartialReversal(bad_grid), max_states=50_000).explore()
        single = StateSpaceExplorer(
            PartialReversal(bad_grid), max_states=50_000, use_single_actions_only=True
        ).explore()
        assert single.transitions_explored <= full.transitions_explored

    def test_failure_reports_carry_a_path(self, diamond):
        # a predicate that is false on any non-initial state
        initial_signature = NewPartialReversal(diamond).initial_state().signature()
        report = explore_and_check(
            NewPartialReversal(diamond),
            {"is-initial": lambda s: s.signature() == initial_signature},
        )
        assert not report.all_predicates_hold
        assert all(len(f.path) >= 1 for f in report.failures)

    def test_failures_carry_replayable_traces(self, diamond):
        # PredicateFailure.trace is a full counterexample: replaying its
        # actions through the automaton reproduces the violating state
        initial_signature = NewPartialReversal(diamond).initial_state().signature()
        report = explore_and_check(
            NewPartialReversal(diamond),
            {"is-initial": lambda s: s.signature() == initial_signature},
        )
        for failure in report.failures:
            assert failure.trace.predicate_name == "is-initial"
            assert failure.trace.actions == failure.path
            execution = failure.trace.replay(NewPartialReversal(diamond))
            execution.validate()
            assert execution.final_state.signature() != initial_signature

    def test_report_string(self, bad_chain):
        report = StateSpaceExplorer(NewPartialReversal(bad_chain)).explore()
        text = str(report)
        assert "states" in text and "transitions" in text

    def test_report_string_exact_format(self, bad_chain):
        report = StateSpaceExplorer(NewPartialReversal(bad_chain)).explore()
        assert str(report) == (
            f"[NewPR] {report.states_explored} states, "
            f"{report.transitions_explored} transitions, "
            f"depth {report.max_depth}, "
            f"{report.quiescent_states} quiescent — OK"
        )

    def test_report_string_failure_branch(self, diamond):
        report = explore_and_check(
            NewPartialReversal(diamond), {"never": lambda s: False}
        )
        text = str(report)
        assert f"{len(report.failures)} FAILURE(S)" in text
        assert "(truncated)" not in text

    def test_report_string_truncated_branch(self, bad_grid):
        report = StateSpaceExplorer(NewPartialReversal(bad_grid), max_states=2).explore()
        assert report.truncated
        assert str(report).endswith("(truncated)")


class TestRandomWalkChecker:
    def test_all_walks_pass_for_true_invariants(self, random_dag):
        checker = RandomWalkChecker(
            NewPartialReversal(random_dag),
            newpr_invariant_checks(),
            walks=5,
            base_seed=3,
        )
        report = checker.check()
        assert report.all_predicates_hold
        assert report.walks == 5
        assert report.states_checked > 0

    def test_pr_invariants_over_random_walks(self, bad_grid):
        checker = RandomWalkChecker(
            OneStepPartialReversal(bad_grid), pr_invariant_checks(), walks=5, base_seed=0
        )
        assert checker.check().all_predicates_hold

    def test_failures_recorded_for_false_predicate(self, bad_chain):
        checker = RandomWalkChecker(
            NewPartialReversal(bad_chain),
            {"never": lambda s: False},
            walks=2,
            base_seed=0,
        )
        report = checker.check()
        assert not report.all_predicates_hold
        assert report.failures

    def test_report_string(self, bad_chain):
        checker = RandomWalkChecker(
            NewPartialReversal(bad_chain), {}, walks=1, base_seed=0
        )
        assert "walks" in str(checker.check())
