"""Unit tests for work accounting and the worst-case sweep (experiments E9, E10, E12)."""

from __future__ import annotations

import pytest

from repro.analysis.statistics import quadratic_fit_r2
from repro.analysis.work import (
    compare_algorithms,
    count_reversals,
    per_node_reversals,
    worst_case_sweep,
)
from repro.core.full_reversal import FullReversal
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.sequential import SequentialScheduler
from repro.topology.generators import star_instance, worst_case_chain_instance


class TestCountReversals:
    def test_summary_fields(self, bad_chain):
        summary = count_reversals(OneStepPartialReversal(bad_chain), SequentialScheduler())
        assert summary.converged
        assert summary.destination_oriented
        assert summary.node_steps > 0
        assert summary.edge_reversals > 0
        assert summary.algorithm == "OneStepPR"

    def test_per_node_counts_sum_to_totals(self, bad_grid):
        summary = count_reversals(OneStepPartialReversal(bad_grid), SequentialScheduler())
        assert sum(summary.per_node_steps.values()) == summary.node_steps
        assert sum(summary.per_node_reversals.values()) == summary.edge_reversals

    def test_already_oriented_instance_needs_no_work(self, good_chain):
        summary = count_reversals(PartialReversal(good_chain), GreedyScheduler())
        assert summary.node_steps == 0
        assert summary.edge_reversals == 0

    def test_dummy_steps_counted_for_newpr(self):
        # star with the destination at the centre: every leaf's second step
        # (if scheduled) would be a dummy; at least the convergence run has none,
        # so build a graph with an initial source to force one dummy step.
        from repro.core.graph import LinkReversalInstance

        instance = LinkReversalInstance.from_directed_edges(
            nodes=["d", "x", "y"], destination="d", edges=[("d", "x"), ("y", "x")]
        )
        summary = count_reversals(NewPartialReversal(instance), SequentialScheduler())
        assert summary.dummy_steps >= 1

    def test_pr_has_no_dummy_steps(self, bad_grid):
        summary = count_reversals(OneStepPartialReversal(bad_grid), SequentialScheduler())
        assert summary.dummy_steps == 0

    def test_total_work_property(self, bad_chain):
        summary = count_reversals(FullReversal(bad_chain), GreedyScheduler())
        assert summary.total_work == summary.node_steps

    def test_per_node_reversals_helper(self, bad_chain):
        counts = per_node_reversals(OneStepPartialReversal(bad_chain), SequentialScheduler())
        assert set(counts) == set(bad_chain.nodes)
        assert counts[0] == 0  # the destination never reverses


class TestCompareAlgorithms:
    def test_all_default_algorithms_present(self, bad_chain):
        results = compare_algorithms(bad_chain, GreedyScheduler)
        assert set(results) == {"PR", "OneStepPR", "NewPR", "FR"}

    def test_all_converge_and_orient(self, bad_grid):
        results = compare_algorithms(bad_grid, GreedyScheduler)
        for summary in results.values():
            assert summary.converged
            assert summary.destination_oriented

    def test_pr_never_worse_than_fr(self, worst_chain):
        results = compare_algorithms(worst_chain, GreedyScheduler)
        assert results["PR"].node_steps <= results["FR"].node_steps

    def test_pr_and_onestep_do_identical_work(self, bad_grid):
        """PR and OneStepPR perform the same reversals, only grouped differently."""
        results = compare_algorithms(bad_grid, SequentialScheduler)
        assert results["PR"].node_steps == results["OneStepPR"].node_steps
        assert results["PR"].edge_reversals == results["OneStepPR"].edge_reversals

    def test_newpr_step_count_at_least_onestep(self, bad_grid):
        """Experiment E12: dummy steps can only add work."""
        results = compare_algorithms(bad_grid, SequentialScheduler)
        assert results["NewPR"].node_steps >= results["OneStepPR"].node_steps

    def test_newpr_reverses_same_edges_as_pr(self, worst_chain):
        results = compare_algorithms(worst_chain, SequentialScheduler)
        assert results["NewPR"].edge_reversals == results["OneStepPR"].edge_reversals

    def test_custom_algorithm_map(self, bad_chain):
        results = compare_algorithms(
            bad_chain, GreedyScheduler, algorithms={"only-fr": FullReversal}
        )
        assert list(results) == ["only-fr"]


class TestWorstCaseSweep:
    """Experiment E10: the Θ(n_b²) worst-case total work bound."""

    def test_fr_work_is_exactly_quadratic_on_chain(self):
        series = worst_case_sweep(range(1, 9), FullReversal, GreedyScheduler)
        for n_bad, steps in series:
            assert steps == n_bad * (n_bad + 1) // 2

    def test_fr_quadratic_fit(self):
        series = worst_case_sweep(range(1, 12), FullReversal, GreedyScheduler)
        xs = [float(n) for n, _ in series]
        ys = [float(s) for _, s in series]
        coefficients, r2 = quadratic_fit_r2(xs, ys)
        assert r2 > 0.999
        assert coefficients[0] > 0.3  # leading coefficient close to 1/2

    def test_pr_work_on_away_chain_is_linear(self):
        """On this particular family PR needs only one step per bad node."""
        series = worst_case_sweep(range(1, 9), OneStepPartialReversal, GreedyScheduler)
        for n_bad, steps in series:
            assert steps == n_bad

    def test_star_best_case_single_round(self):
        instance = star_instance(8, destination_is_center=True)
        summary = count_reversals(PartialReversal(instance), GreedyScheduler())
        assert summary.node_steps == 8  # one step per leaf
        assert summary.edge_reversals == 8

    def test_work_scales_with_bad_nodes_not_total_nodes(self):
        """Adding already-oriented nodes does not add work."""
        small = worst_case_chain_instance(4)
        summary_small = count_reversals(FullReversal(small), GreedyScheduler())
        # build the same bad chain with an extra oriented tail hanging off the destination
        from repro.core.graph import LinkReversalInstance

        nodes = list(small.nodes) + [100, 101]
        edges = list(small.initial_edges) + [(100, 0), (101, 100)]
        extended = LinkReversalInstance(tuple(nodes), 0, tuple(edges))
        summary_ext = count_reversals(FullReversal(extended), GreedyScheduler())
        assert summary_ext.node_steps == summary_small.node_steps
