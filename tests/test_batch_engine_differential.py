"""Differential tests: the batched lockstep engine vs kernel vs legacy.

The batch engine's contract is the strictest of the three: every lane of a
``run_scenarios_batched`` call must be **field-for-field identical** to the
per-scenario kernel engine record for the same spec (which is itself pinned
to the legacy object oracle) — across every kernel algorithm × every
registry scheduler × every churn model, regardless of which other lanes
shared the batch and in which order.  On top of the record contract these
tests pin the batching plumbing: outcome dedup correctness, shared-deadline
timeout records, executor chunk alignment, campaign interrupt+resume through
the store, and the CLI/report surface.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.batch_engine import (
    BatchEngine,
    batch_cache_stats,
    batch_key,
    run_scenarios_batched,
)
from repro.experiments.executor import (
    _batch_aligned_chunks,
    _default_batch_chunk_size,
    _default_chunk_size,
    run_campaign,
)
from repro.experiments.runner import (
    ENGINE_BATCH,
    ENGINE_KERNEL,
    ENGINE_LEGACY,
    execute_scenario,
    kernel_cache_stats,
    resolve_engine,
)
from repro.experiments.spec import CampaignSpec, ScenarioSpec, derive_seed
from repro.experiments.store import ResultStore
from repro.kernels.simulator import CACHE_CAPACITY_ENV, cache_capacity_from_env
from repro.topology.generators import SEEDLESS_FAMILIES, build_family

KERNEL_ALGORITHMS = ("pr", "onestep-pr", "new-pr", "fr")
ALL_SCHEDULERS = ("greedy", "sequential", "random", "adversarial", "lazy", "round-robin")

#: Everything except the wall clock and the engine stamp must be identical.
VOLATILE = ("wall_time_s", "engine")


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        family="random-dag", size=12, algorithm="pr", scheduler="greedy",
        topology_seed=derive_seed("batch-topo"), scheduler_seed=derive_seed("batch-sched"),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _stable(record):
    return {k: v for k, v in record.items() if k not in VOLATILE}


def _assert_batch_matches_kernel(specs) -> list:
    """Batch the specs in one call and pin each lane to its kernel record."""
    batched = run_scenarios_batched([s.to_dict() for s in specs])
    for spec, record in zip(specs, batched):
        assert record["engine"] == ENGINE_BATCH
        kernel = execute_scenario(spec.to_dict(), engine=ENGINE_KERNEL)
        assert _stable(record) == _stable(kernel), spec.run_id
    return batched


class TestFieldForFieldEquality:
    @pytest.mark.parametrize("algorithm", KERNEL_ALGORITHMS)
    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    def test_plain_convergence(self, algorithm, scheduler):
        records = _assert_batch_matches_kernel([
            _spec(algorithm=algorithm, scheduler=scheduler, replicate=r,
                  scheduler_seed=derive_seed("batch-sched", r))
            for r in range(3)
        ])
        assert all(r["status"] == "ok" and r["converged"] for r in records)

    @pytest.mark.parametrize("algorithm", KERNEL_ALGORITHMS)
    @pytest.mark.parametrize("scheduler", ("greedy", "random", "adversarial"))
    def test_link_failure_churn(self, algorithm, scheduler):
        records = _assert_batch_matches_kernel([
            _spec(family="grid", size=16, algorithm=algorithm, scheduler=scheduler,
                  failure_model="link-failures", failure_count=3, replicate=r,
                  scheduler_seed=derive_seed("batch-churn", r))
            for r in range(2)
        ])
        assert all(r["failures_applied"] >= 1 for r in records)

    @pytest.mark.parametrize("algorithm", KERNEL_ALGORITHMS)
    @pytest.mark.parametrize("scheduler", ("greedy", "random"))
    def test_mobility_churn(self, algorithm, scheduler):
        records = _assert_batch_matches_kernel([
            _spec(family="geometric", size=12, algorithm=algorithm,
                  scheduler=scheduler, failure_model="mobility", failure_count=5,
                  replicate=r, topology_seed=derive_seed("batch-mob", r))
            for r in range(2)
        ])
        assert all(r["status"] == "ok" for r in records)

    def test_truncated_runs_match(self):
        _assert_batch_matches_kernel([
            _spec(family="chain", size=12, algorithm="fr",
                  failure_model="link-failures", failure_count=2, max_steps=2),
            _spec(family="chain", size=12, algorithm="fr",
                  failure_model="link-failures", failure_count=2, max_steps=2,
                  replicate=1, scheduler_seed=derive_seed("other")),
        ])

    def test_batch_agrees_with_legacy_oracle(self):
        # the transitive pin, asserted directly once: batch == legacy
        spec = _spec(family="tree", size=14, scheduler="random")
        batched = run_scenarios_batched([spec.to_dict()])[0]
        legacy = execute_scenario(spec.to_dict(), engine=ENGINE_LEGACY)
        assert _stable(batched) == _stable(legacy)

    def test_mixed_batch_keys_in_one_call(self):
        # one call spanning several batch keys, sizes and families
        _assert_batch_matches_kernel([
            _spec(family=f, size=s, algorithm=a, scheduler=sc, replicate=r)
            for f, s in (("chain", 10), ("grid", 9), ("tree", 12))
            for a in ("pr", "fr")
            for sc in ("greedy", "lazy")
            for r in range(2)
        ])


class TestLaneIndependence:
    def test_lane_order_independence(self):
        specs = [
            _spec(family=f, size=10, algorithm=a, scheduler=sc, replicate=r,
                  scheduler_seed=derive_seed("order", r))
            for f in ("chain", "tree")
            for a in ("pr", "fr")
            for sc in ("greedy", "random")
            for r in range(3)
        ]
        straight = run_scenarios_batched([s.to_dict() for s in specs])
        reversed_ = run_scenarios_batched([s.to_dict() for s in reversed(specs)])
        for record, mirrored in zip(straight, reversed(reversed_)):
            assert _stable(record) == _stable(mirrored)

    def test_batching_is_deterministic(self):
        specs = [_spec(scheduler="random", replicate=r) for r in range(4)]
        first = run_scenarios_batched([s.to_dict() for s in specs])
        second = run_scenarios_batched([s.to_dict() for s in specs])
        assert [_stable(r) for r in first] == [_stable(r) for r in second]

    def test_seedless_family_lanes_share_one_outcome(self):
        # chain ignores its topology seed, and greedy ignores its scheduler
        # seed: every replicate is provably the same run, so the batch engine
        # deduplicates — and the shared record still matches the kernel path
        assert "chain" in SEEDLESS_FAMILIES
        before = batch_cache_stats()
        specs = [
            _spec(family="chain", size=18, topology_seed=derive_seed("t", r),
                  scheduler_seed=derive_seed("s", r), replicate=r)
            for r in range(8)
        ]
        _assert_batch_matches_kernel(specs)
        delta = {
            k: batch_cache_stats()[k] - before[k] for k in before
        }
        assert delta["outcome_misses"] >= 1
        assert delta["outcome_hits"] >= 7  # 8 lanes, at most one executed

    def test_seedless_registry_is_accurate(self):
        for family in SEEDLESS_FAMILIES:
            a = build_family(family, 12, seed=1)
            b = build_family(family, 12, seed=2)
            assert a.nodes == b.nodes
            assert a.initial_edges == b.initial_edges


class TestTimeouts:
    def test_expired_deadline_matches_kernel_per_lane(self):
        specs = [
            _spec(family="chain", size=40, algorithm=a, scheduler=sc, replicate=r)
            for a in ("pr", "fr") for sc in ("greedy", "random") for r in range(2)
        ]
        batched = run_scenarios_batched([s.to_dict() for s in specs], timeout_s=0.0)
        for spec, record in zip(specs, batched):
            kernel = execute_scenario(spec.to_dict(), timeout_s=0.0, engine=ENGINE_KERNEL)
            assert record["status"] == "timeout"
            assert _stable(record) == _stable(kernel)
            assert record["error"] == "deadline exceeded at step 0"

    def test_timeout_keeps_partial_tallies(self):
        record = run_scenarios_batched(
            [_spec(family="chain", size=40).to_dict()], timeout_s=0.0
        )[0]
        assert record["status"] == "timeout"
        assert record["node_steps"] >= 1  # the aborted step's work is kept
        assert record["steps_taken"] == 0  # but not counted as completed
        assert record["converged"] is False

    def test_mid_batch_timeout_mixes_ok_and_timeout(self):
        # an already-converged lane retires before the deadline check fires,
        # so an expired budget still lets trivial lanes complete
        specs = [
            _spec(family="oriented-chain", size=10),  # starts converged
            _spec(family="chain", size=40),           # needs Θ(n²) work
        ]
        records = run_scenarios_batched([s.to_dict() for s in specs], timeout_s=0.0)
        assert records[0]["status"] == "ok" and records[0]["converged"]
        assert records[1]["status"] == "timeout"


class TestUnsupportedLanes:
    def test_bll_lane_is_an_error_record(self):
        records = run_scenarios_batched([
            _spec(size=8).to_dict(),
            _spec(algorithm="bll", size=8).to_dict(),
        ])
        assert records[0]["status"] == "ok"
        assert records[1]["status"] == "error"
        assert "no signature kernel" in records[1]["error"]
        assert records[1]["engine"] is None

    def test_async_lane_is_an_error_record(self):
        record = run_scenarios_batched([
            _spec(algorithm="fr", delay_model="uniform").to_dict()
        ])[0]
        assert record["status"] == "error"
        assert "delay_model" in record["error"]

    def test_forced_batch_engine_on_bll_raises_in_resolution(self):
        with pytest.raises(ValueError, match="legacy"):
            resolve_engine(ENGINE_BATCH, _spec(algorithm="bll"))

    def test_auto_still_prefers_kernel(self):
        # batching pays off at campaign width; a single auto scenario stays
        # on the per-scenario kernel path
        assert BatchEngine.auto_priority < 20
        assert resolve_engine("auto", _spec()) == ENGINE_KERNEL


class TestExecutorIntegration:
    def _campaign(self, replicates=3):
        return CampaignSpec(
            name="batch-diff",
            families=("chain", "tree"),
            sizes=(8, 10),
            algorithms=("pr", "fr"),
            schedulers=("greedy", "random"),
            replicates=replicates,
        )

    def test_campaign_records_match_kernel_engine(self, tmp_path):
        campaign = self._campaign()
        with ResultStore(tmp_path / "kernel") as store:
            run_campaign(campaign, store, workers=1, engine=ENGINE_KERNEL)
            kernel = {r["run_id"]: _stable(r) for r in store.records()}
        with ResultStore(tmp_path / "batch") as store:
            report = run_campaign(campaign, store, workers=1, engine=ENGINE_BATCH)
            batched = {r["run_id"]: _stable(r) for r in store.records()}
        assert report.engines == {"batch": report.executed}
        assert batched == kernel

    def test_pooled_campaign_matches_inline(self, tmp_path):
        campaign = self._campaign(replicates=2)
        with ResultStore(tmp_path / "inline") as store:
            run_campaign(campaign, store, workers=1, engine=ENGINE_BATCH)
            inline = {r["run_id"]: _stable(r) for r in store.records()}
        with ResultStore(tmp_path / "pooled") as store:
            report = run_campaign(campaign, store, workers=2, engine=ENGINE_BATCH)
            pooled = {r["run_id"]: _stable(r) for r in store.records()}
        assert report.crashed == 0
        assert pooled == inline

    def test_interrupt_and_resume_through_the_store(self, tmp_path):
        campaign = self._campaign()
        specs = campaign.expand()
        half = [s.to_dict() for s in specs[: len(specs) // 2]]
        with ResultStore(tmp_path / "resume") as store:
            # simulate an interrupted sweep: half the records already stored
            store.append(run_scenarios_batched(half))
            report = run_campaign(campaign, store, workers=1, engine=ENGINE_BATCH)
            assert report.skipped == len(half)
            assert report.executed == len(specs) - len(half)
            resumed = {r["run_id"]: _stable(r) for r in store.records()}
        with ResultStore(tmp_path / "oneshot") as store:
            run_campaign(campaign, store, workers=1, engine=ENGINE_BATCH)
            oneshot = {r["run_id"]: _stable(r) for r in store.records()}
        assert resumed == oneshot
        # and a second invocation is a no-op
        with ResultStore(tmp_path / "resume") as store:
            report = run_campaign(campaign, store, workers=1, engine=ENGINE_BATCH)
            assert report.executed == 0

    def test_batch_chunks_never_straddle_batch_keys(self):
        specs = [s.to_dict() for s in self._campaign().expand()]
        chunks = _batch_aligned_chunks(specs, chunk_size=5)
        for chunk in chunks:
            assert len({batch_key(s) for s in chunk}) == 1
        assert sorted(s["run_id"] for c in chunks for s in c) == sorted(
            s["run_id"] for s in specs
        )

    def test_chunk_sizes_derive_from_workload(self):
        # non-batch sizing scales with the pending count instead of a cap
        assert _default_chunk_size(10_000, workers=4) == 313
        assert _default_chunk_size(10, workers=4) == 1
        # batch sizing keeps lockstep calls wide
        assert _default_batch_chunk_size(10_000, workers=1) == 10_000
        assert _default_batch_chunk_size(10_000, workers=4) == 1250
        assert _default_batch_chunk_size(0, workers=4) == 1

    def test_campaign_report_sidecar_records_batch_stats(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            run_campaign(self._campaign(replicates=2), store, workers=1,
                         engine=ENGINE_BATCH)
            sidecar = store.load_report()
        assert sidecar["engines"] == {"batch": sidecar["executed"]}
        assert any(k.startswith("batch_") for k in sidecar["kernel_cache"])


class TestCacheConfiguration:
    def test_env_var_overrides_capacity(self, monkeypatch):
        monkeypatch.setenv(CACHE_CAPACITY_ENV, "128")
        assert cache_capacity_from_env() == 128
        monkeypatch.setenv(CACHE_CAPACITY_ENV, "not-a-number")
        assert cache_capacity_from_env() == 64
        monkeypatch.setenv(CACHE_CAPACITY_ENV, "0")
        assert cache_capacity_from_env() == 64
        monkeypatch.delenv(CACHE_CAPACITY_ENV)
        assert cache_capacity_from_env(default=7) == 7

    def test_configure_kernel_cache_resizes_all_engines(self):
        from repro.experiments.async_engine import _INSTANCE_CACHE
        from repro.experiments.batch_engine import _BATCH_CACHE
        from repro.experiments.runner import _KERNEL_CACHE, configure_kernel_cache

        original = _KERNEL_CACHE.capacity
        try:
            configure_kernel_cache(3)
            assert _KERNEL_CACHE.capacity == 3
            assert _INSTANCE_CACHE.capacity == 3
            assert _BATCH_CACHE.capacity == 3
            assert len(_BATCH_CACHE._instances) <= 3
        finally:
            configure_kernel_cache(original)

    def test_batch_stats_surface_in_kernel_cache_stats(self):
        run_scenarios_batched([_spec(size=8).to_dict()])
        stats = kernel_cache_stats()
        for name in ("batch_instance_hits", "batch_kernel_compiles",
                     "batch_outcome_hits", "batch_outcome_misses"):
            assert name in stats


class TestCli:
    def test_sweep_engine_batch_flag(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "sweep", "--families", "chain", "--algorithms", "pr,fr",
            "--sizes", "5,7", "--replicates", "2", "--engine", "batch",
            "--store", str(tmp_path / "s"), "--quiet", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engines"] == {"batch": 8}
        assert any(k.startswith("batch_") for k in payload["kernel_cache"])

    def test_batch_sweep_store_matches_kernel_sweep_store(self, tmp_path, capsys):
        from repro.cli import main

        base = [
            "sweep", "--families", "chain,tree", "--algorithms", "pr",
            "--sizes", "6", "--replicates", "2", "--quiet",
        ]
        assert main(base + ["--engine", "kernel", "--store", str(tmp_path / "k")]) == 0
        assert main(base + ["--engine", "batch", "--store", str(tmp_path / "b")]) == 0
        capsys.readouterr()
        with ResultStore(tmp_path / "k") as ks, ResultStore(tmp_path / "b") as bs:
            kernel = {r["run_id"]: _stable(r) for r in ks.records()}
            batched = {r["run_id"]: _stable(r) for r in bs.records()}
        assert batched == kernel

    def test_report_shows_last_sweep_engines(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "sweep", "--families", "chain", "--algorithms", "pr", "--sizes", "5",
            "--engine", "batch", "--store", str(tmp_path / "s"), "--quiet",
        ]) == 0
        capsys.readouterr()
        assert main(["report", "--store", str(tmp_path / "s"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine_counts"] == {"batch": 1}
        assert payload["last_campaign_report"]["engines"] == {"batch": 1}
