"""Unit tests for the execution machinery (run, replay, validation)."""

from __future__ import annotations

import pytest

from repro.automata.executions import Execution, replay, run
from repro.automata.ioa import TransitionError
from repro.core.base import Reverse
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal, ReverseSet
from repro.schedulers.base import TraceScheduler
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.sequential import SequentialScheduler


class TestRun:
    def test_run_records_all_states(self, bad_chain):
        result = run(OneStepPartialReversal(bad_chain), SequentialScheduler())
        assert len(result.execution.states) == result.steps_taken + 1

    def test_run_without_recording_keeps_endpoints_only(self, bad_chain):
        result = run(
            OneStepPartialReversal(bad_chain), SequentialScheduler(), record_states=False
        )
        assert len(result.execution.states) == 2
        assert result.execution.final_state.is_destination_oriented()

    def test_run_respects_max_steps(self, worst_chain):
        result = run(OneStepPartialReversal(worst_chain), SequentialScheduler(), max_steps=2)
        assert result.steps_taken == 2
        assert not result.converged

    def test_run_converged_flag_when_bound_hits_exactly_at_quiescence(self, bad_chain):
        # first find the exact number of steps needed, then rerun with that bound
        full = run(OneStepPartialReversal(bad_chain), SequentialScheduler())
        again = run(
            OneStepPartialReversal(bad_chain),
            SequentialScheduler(),
            max_steps=full.steps_taken,
        )
        assert again.converged

    def test_observers_see_every_step(self, bad_chain):
        seen = []

        def observer(index, pre, action, post):
            seen.append(index)

        result = run(
            OneStepPartialReversal(bad_chain), SequentialScheduler(), observers=(observer,)
        )
        assert seen == list(range(result.steps_taken))

    def test_initial_state_override(self, bad_chain):
        automaton = OneStepPartialReversal(bad_chain)
        mid = automaton.apply(automaton.initial_state(), Reverse(4))
        result = run(automaton, SequentialScheduler(), initial_state=mid)
        assert result.converged
        assert result.execution.initial_state.graph_signature() == mid.graph_signature()

    def test_result_properties(self, bad_chain):
        result = run(OneStepPartialReversal(bad_chain), SequentialScheduler())
        assert result.final_state is result.execution.final_state
        assert result.initial_state is result.execution.initial_state


class TestExecutionObject:
    def test_steps_iteration(self, bad_chain):
        result = run(OneStepPartialReversal(bad_chain), SequentialScheduler())
        steps = list(result.execution.steps())
        assert len(steps) == result.steps_taken
        assert steps[0].index == 0
        assert steps[0].pre_state is result.execution.initial_state

    def test_state_at(self, bad_chain):
        execution = run(OneStepPartialReversal(bad_chain), SequentialScheduler()).execution
        assert execution.state_at(0) is execution.initial_state
        assert execution.state_at(len(execution)) is execution.final_state

    def test_actions_property(self, bad_chain):
        execution = run(OneStepPartialReversal(bad_chain), SequentialScheduler()).execution
        assert len(execution.actions) == execution.length

    def test_validate_accepts_legal_execution(self, bad_grid):
        execution = run(PartialReversal(bad_grid), GreedyScheduler()).execution
        execution.validate()

    def test_validate_rejects_tampered_execution(self, bad_chain):
        automaton = OneStepPartialReversal(bad_chain)
        execution = run(automaton, SequentialScheduler()).execution
        # tamper with a recorded post-state
        tampered = execution.states[1].copy()
        tampered.orientation.reverse_edge(0, 1)
        execution._states[1] = tampered
        with pytest.raises(TransitionError):
            execution.validate()

    def test_extend_by_applying_checks_enabledness(self, bad_chain):
        automaton = OneStepPartialReversal(bad_chain)
        execution = Execution(automaton, automaton.initial_state())
        with pytest.raises(TransitionError):
            execution.extend_by_applying([Reverse(1)])  # node 1 is not a sink initially

    def test_check_state_property(self, bad_chain):
        execution = run(OneStepPartialReversal(bad_chain), SequentialScheduler()).execution
        assert execution.check_state_property(lambda s: s.is_acyclic()) is None
        index = execution.check_state_property(lambda s: s.is_destination_oriented())
        assert index == 0  # the initial state is not destination oriented


class TestReplay:
    def test_replay_reproduces_run(self, bad_chain):
        automaton = OneStepPartialReversal(bad_chain)
        original = run(automaton, SequentialScheduler()).execution
        replayed = replay(automaton, original.actions)
        assert replayed.final_state.graph_signature() == original.final_state.graph_signature()

    def test_replay_rejects_illegal_sequence(self, bad_chain):
        automaton = OneStepPartialReversal(bad_chain)
        with pytest.raises(TransitionError):
            replay(automaton, [Reverse(1), Reverse(2)])


class TestTraceScheduler:
    def test_trace_is_followed(self, bad_chain):
        automaton = OneStepPartialReversal(bad_chain)
        # 4 then 3 are successively the unique sinks of the bad chain
        result = run(automaton, TraceScheduler([4, 3]))
        assert result.steps_taken == 2
        assert [a.node for a in result.execution.actions] == [4, 3]

    def test_disabled_entries_skipped_by_default(self, bad_chain):
        automaton = OneStepPartialReversal(bad_chain)
        result = run(automaton, TraceScheduler([1, 4]))  # 1 is not a sink yet
        assert [a.node for a in result.execution.actions] == [4]

    def test_strict_mode_raises(self, bad_chain):
        automaton = OneStepPartialReversal(bad_chain)
        with pytest.raises(ValueError):
            run(automaton, TraceScheduler([1], strict=True))

    def test_trace_works_for_pr_set_actions(self, bad_chain):
        automaton = PartialReversal(bad_chain)
        result = run(automaton, TraceScheduler([4, 3, 2]))
        assert result.steps_taken == 3
        assert all(isinstance(a, ReverseSet) for a in result.execution.actions)
