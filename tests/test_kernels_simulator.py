"""Unit tests for the signature-kernel simulation engine (repro.kernels)."""

from __future__ import annotations

import time

import pytest

from repro.analysis.work import WorkObserver, count_reversals, kernel_count_reversals
from repro.automata.executions import run
from repro.core.bll import BinaryLinkLabels
from repro.core.full_reversal import FullReversal
from repro.core.graph import Orientation
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.kernels import (
    MASK_SCHEDULER_FACTORIES,
    KernelCache,
    RoundTally,
    SignatureSimulator,
    WorkTally,
    compile_expander,
    make_mask_scheduler,
    mask_directed_edges,
    mask_final_state_checks,
    mask_is_acyclic,
    mask_is_destination_oriented,
)
from repro.kernels.simulator import DeadlineExceeded
from repro.schedulers import SCHEDULER_FACTORIES, make_scheduler
from repro.topology.generators import (
    grid_instance,
    random_dag_instance,
    worst_case_chain_instance,
)

ALGORITHMS = {
    "pr": PartialReversal,
    "onestep-pr": OneStepPartialReversal,
    "new-pr": NewPartialReversal,
    "fr": FullReversal,
}


def _simulator(algorithm: str, instance) -> SignatureSimulator:
    return SignatureSimulator(compile_expander(ALGORITHMS[algorithm](instance)))


@pytest.fixture
def instance():
    return random_dag_instance(14, edge_probability=0.3, seed=5)


class TestRegistryAlignment:
    def test_every_object_scheduler_has_a_mask_twin(self):
        assert set(MASK_SCHEDULER_FACTORIES) == set(SCHEDULER_FACTORIES)

    def test_unknown_mask_scheduler_rejected(self):
        with pytest.raises(ValueError, match="no mask-level scheduler"):
            make_mask_scheduler("frobnicate")

    def test_subset_probability_validated(self):
        from repro.kernels.schedulers import MaskRandomScheduler

        with pytest.raises(ValueError):
            MaskRandomScheduler(seed=1, subset_probability=1.5)


class TestRunPhaseAgainstObjectOracle:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    @pytest.mark.parametrize("scheduler", sorted(SCHEDULER_FACTORIES))
    def test_final_graph_and_work_match_object_run(self, instance, algorithm, scheduler):
        simulator = _simulator(algorithm, instance)
        work, rounds = WorkTally(), RoundTally()
        outcome = simulator.run_phase(
            make_mask_scheduler(scheduler, seed=7), work=work, rounds=rounds
        )

        automaton = ALGORITHMS[algorithm](instance)
        observer = WorkObserver()
        result = run(
            automaton, make_scheduler(scheduler, seed=7),
            observers=(observer,), record_states=False,
        )
        assert outcome.converged == result.converged
        assert outcome.steps == result.steps_taken
        mask = simulator.kernel.orientation_mask(outcome.signature)
        assert mask == result.final_state.graph_signature()
        assert work.node_steps == observer.node_steps
        assert work.edge_reversals == observer.edge_reversals
        assert work.dummy_steps == observer.dummy_steps

    def test_sink_set_empty_exactly_on_convergence(self, instance):
        simulator = _simulator("fr", instance)
        outcome = simulator.run_phase(make_mask_scheduler("sequential"))
        assert outcome.converged
        assert simulator.sink_id_set(outcome.signature) == set()

    def test_trace_replays_to_final_signature(self, instance):
        simulator = _simulator("pr", instance)
        trace = []
        outcome = simulator.run_phase(make_mask_scheduler("greedy"), trace=trace)
        sig = simulator.initial_signature()
        for token in trace:
            for i in token:
                sig = simulator.kernel.step(sig, i)
        assert sig == outcome.signature

    def test_step_bound_truncates_without_convergence(self):
        instance = worst_case_chain_instance(8)
        simulator = _simulator("fr", instance)
        outcome = simulator.run_phase(make_mask_scheduler("sequential"), max_steps=3)
        assert outcome.steps == 3
        assert not outcome.converged


class TestDeadlines:
    def test_expired_deadline_aborts_on_first_step(self):
        simulator = _simulator("fr", worst_case_chain_instance(10))
        with pytest.raises(DeadlineExceeded, match="step 0"):
            simulator.run_phase(
                make_mask_scheduler("sequential"), deadline=time.perf_counter() - 1.0
            )

    def test_clock_read_once_per_stride(self, monkeypatch):
        simulator = _simulator("fr", worst_case_chain_instance(10))
        reads = []
        real = time.perf_counter
        monkeypatch.setattr(time, "perf_counter", lambda: reads.append(1) or real())
        outcome = simulator.run_phase(
            make_mask_scheduler("sequential"),
            deadline=real() + 60.0,
            deadline_stride=7,
        )
        assert outcome.converged
        # one read at step 0, then one per completed stride of 7 steps
        assert len(reads) == 1 + (outcome.steps - 1) // 7

    def test_runner_deadline_observer_stride_and_exactness(self, monkeypatch):
        from repro.experiments.runner import ScenarioTimeout, _DeadlineObserver

        expired = _DeadlineObserver(deadline=time.perf_counter() - 1.0, stride=50)
        with pytest.raises(ScenarioTimeout, match="step 0"):
            expired(0, None, None, None)

        reads = []
        real = time.perf_counter
        monkeypatch.setattr(time, "perf_counter", lambda: reads.append(1) or real())
        patient = _DeadlineObserver(deadline=real() + 60.0, stride=10)
        for step in range(25):
            patient(step, None, None, None)
        assert len(reads) == 3  # steps 0, 10 and 20


class TestMaskHelpers:
    def test_directed_edges_match_orientation(self, instance):
        for mask in (0, 5, (1 << instance.edge_count) - 1):
            assert mask_directed_edges(instance, mask) == Orientation(
                instance, mask
            ).directed_edges()

    def test_final_state_checks_match_individual_checks(self, instance):
        for mask in range(0, 1 << min(instance.edge_count, 6)):
            assert mask_final_state_checks(instance, mask) == (
                mask_is_acyclic(instance, mask),
                mask_is_destination_oriented(instance, mask),
            )


class TestKernelCache:
    def test_instance_and_kernel_hit_counting(self, instance):
        cache = KernelCache(capacity=4)
        built = []

        def build():
            built.append(1)
            return instance

        assert cache.instance("k", build) is instance
        assert cache.instance("k", build) is instance
        assert len(built) == 1
        kernel = cache.kernel("k", "fr", lambda: compile_expander(FullReversal(instance)))
        assert cache.kernel("k", "fr", lambda: None) is kernel
        stats = cache.stats()
        assert stats["instance_builds"] == 1 and stats["instance_hits"] == 1
        assert stats["kernel_compiles"] == 1 and stats["kernel_hits"] == 1

    def test_eviction_drops_dependent_kernels(self):
        cache = KernelCache(capacity=1)
        first = worst_case_chain_instance(3)
        second = worst_case_chain_instance(4)
        cache.instance("a", lambda: first)
        cache.kernel("a", "fr", lambda: compile_expander(FullReversal(first)))
        cache.instance("b", lambda: second)  # evicts "a" and its kernels
        compiled = []
        cache.kernel("a", "fr", lambda: compiled.append(1) or compile_expander(FullReversal(first)))
        assert compiled == [1]

    def test_uncompilable_kernel_not_cached(self):
        cache = KernelCache()
        instance = worst_case_chain_instance(3)
        cache.instance("k", lambda: instance)
        assert cache.kernel("k", "bll", lambda: compile_expander(BinaryLinkLabels(instance))) is None
        assert cache.kernel("k", "bll", lambda: None) is None
        assert cache.stats()["kernel_compiles"] == 2  # None results re-compile


class TestKernelCountReversals:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_matches_object_summary(self, instance, algorithm):
        automaton = ALGORITHMS[algorithm](instance)
        fast = kernel_count_reversals(automaton, "greedy", seed=3)
        slow = count_reversals(
            ALGORITHMS[algorithm](instance), make_scheduler("greedy", 3)
        )
        assert fast is not None
        assert fast.to_dict() == slow.to_dict()

    def test_returns_none_without_kernel(self, instance):
        assert kernel_count_reversals(BinaryLinkLabels(instance), "greedy") is None


class TestGridSubsetActions:
    def test_pr_random_subsets_match_object_path(self):
        from repro.kernels.schedulers import MaskRandomScheduler
        from repro.schedulers.random_scheduler import RandomScheduler

        instance = grid_instance(4, 4, oriented_towards_destination=False)
        simulator = _simulator("pr", instance)
        work = WorkTally()
        outcome = simulator.run_phase(
            MaskRandomScheduler(seed=11, subset_probability=0.6), work=work
        )
        observer = WorkObserver()
        result = run(
            PartialReversal(instance),
            RandomScheduler(seed=11, subset_probability=0.6),
            observers=(observer,), record_states=False,
        )
        assert outcome.steps == result.steps_taken
        assert simulator.kernel.orientation_mask(outcome.signature) == (
            result.final_state.graph_signature()
        )
        assert work.node_steps == observer.node_steps
        assert work.dummy_steps == observer.dummy_steps
