"""Unit tests for the acyclicity checks (Theorem 4.3 / Theorem 5.5)."""

from __future__ import annotations

import pytest

from repro.automata.executions import run
from repro.core.full_reversal import FullReversal
from repro.core.graph import LinkReversalInstance, Orientation
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.random_scheduler import RandomScheduler
from repro.schedulers.sequential import SequentialScheduler
from repro.verification.acyclicity import (
    AcyclicityObserver,
    check_acyclic_execution,
    check_acyclic_state,
    find_cycle,
    is_acyclic,
)


def cyclic_orientation() -> Orientation:
    instance = LinkReversalInstance(
        nodes=(0, 1, 2), destination=0, initial_edges=((0, 1), (1, 2), (0, 2))
    )
    return Orientation.from_directed_edges(instance, [(0, 1), (1, 2), (2, 0)])


class TestStateChecks:
    def test_is_acyclic_accepts_orientation(self, diamond):
        assert is_acyclic(diamond.initial_orientation())

    def test_is_acyclic_accepts_state(self, diamond):
        assert is_acyclic(PartialReversal(diamond).initial_state())

    def test_is_acyclic_accepts_height_state(self, diamond):
        from repro.core.heights import GBPartialReversalHeights

        assert is_acyclic(GBPartialReversalHeights(diamond).initial_state())

    def test_rejects_unknown_object(self):
        with pytest.raises(TypeError):
            is_acyclic(42)

    def test_cycle_detected(self):
        assert not is_acyclic(cyclic_orientation())
        cycle = find_cycle(cyclic_orientation())
        assert set(cycle) == {0, 1, 2}

    def test_check_acyclic_state_report(self):
        report = check_acyclic_state(cyclic_orientation(), state_index=7)
        assert not report.holds
        assert report.violations[0][0] == 7

    def test_report_string_lists_cycle(self):
        report = check_acyclic_state(cyclic_orientation())
        assert "cycle" in str(report)


class TestExecutionChecks:
    """Theorem 4.3 / 5.5: acyclicity holds in every state of every execution."""

    @pytest.mark.parametrize(
        "automaton_class",
        [PartialReversal, OneStepPartialReversal, NewPartialReversal, FullReversal],
    )
    def test_acyclic_along_executions_on_chain(self, bad_chain, automaton_class):
        result = run(automaton_class(bad_chain), SequentialScheduler())
        report = check_acyclic_execution(result.execution)
        assert report.holds
        assert report.states_checked == result.steps_taken + 1

    @pytest.mark.parametrize(
        "automaton_class",
        [PartialReversal, OneStepPartialReversal, NewPartialReversal, FullReversal],
    )
    def test_acyclic_along_executions_on_grid(self, bad_grid, automaton_class):
        result = run(automaton_class(bad_grid), GreedyScheduler())
        assert check_acyclic_execution(result.execution).holds

    @pytest.mark.parametrize("seed", range(4))
    def test_acyclic_under_random_schedules(self, random_dag, seed):
        result = run(NewPartialReversal(random_dag), RandomScheduler(seed=seed))
        assert check_acyclic_execution(result.execution).holds

    def test_acyclic_with_subset_actions(self, bad_grid):
        result = run(PartialReversal(bad_grid), RandomScheduler(seed=3, subset_probability=0.8))
        assert check_acyclic_execution(result.execution).holds


class TestObserver:
    def test_observer_counts_states(self, bad_chain):
        observer = AcyclicityObserver()
        result = run(NewPartialReversal(bad_chain), SequentialScheduler(), observers=(observer,))
        assert observer.report.states_checked == result.steps_taken
        assert observer.report.holds

    def test_observer_records_violation_for_cyclic_post_state(self):
        observer = AcyclicityObserver()
        observer(3, None, None, cyclic_orientation())
        assert not observer.report.holds
        assert observer.report.violations[0][0] == 4  # step index + 1

    def test_observer_fail_fast_raises(self):
        observer = AcyclicityObserver(fail_fast=True)
        with pytest.raises(AssertionError):
            observer(0, None, None, cyclic_orientation())
