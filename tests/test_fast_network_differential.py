"""Differential suite: the compiled async engine against the object oracle.

:class:`~repro.distributed.fast_network.FastAsyncNetwork` must be a
behavioural twin of :class:`~repro.distributed.network.AsyncLinkReversalNetwork`
(the documented oracle): for the same instance, mode, delay model, loss rate,
seed and churn sequence, the two engines must produce field-for-field
identical :class:`NetworkReport` values, the same induced global orientation
and the same true heights.  Property tests cover FIFO ordering and loss
accounting under seeded churn, plus the packed-height encoding itself.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.distributed.fast_network import (
    FastAsyncNetwork,
    pack_height,
    unpack_height,
)
from repro.distributed.network import (
    DELAY_MODELS,
    AsyncLinkReversalNetwork,
    initial_height_levels,
)
from repro.distributed.protocol import HeightValue, ReversalMode
from repro.kernels.simulator import DeadlineExceeded
from repro.topology.generators import build_family, chain_instance, grid_instance

MODES = (ReversalMode.PARTIAL, ReversalMode.FULL)

#: (min_delay, max_delay, fifo, loss) channel configurations under test.
CHANNEL_CONFIGS = (
    (0.0, 0.0, False, 0.0),    # the "zero" delay model
    (1.0, 1.0, False, 0.0),    # "fixed"
    (1.0, 2.0, False, 0.0),    # "uniform"
    (1.0, 2.0, True, 0.0),     # "fifo"
    (0.5, 3.0, False, 0.25),   # lossy uniform
    (1.0, 1.0, False, 0.15),   # lossy fixed
    (1.0, 2.0, True, 0.2),     # lossy fifo
)


def _pair(instance, mode, config, seed):
    min_delay, max_delay, fifo, loss = config
    kwargs = dict(
        mode=mode,
        min_delay=min_delay,
        max_delay=max_delay,
        loss_probability=loss,
        seed=seed,
        fifo=fifo,
    )
    return (
        AsyncLinkReversalNetwork(instance, **kwargs),
        FastAsyncNetwork(instance, **kwargs),
    )


def _assert_twins(obj, fast):
    assert dataclasses.asdict(obj.report()) == dataclasses.asdict(fast.report())
    assert obj.global_directed_edges() == fast.global_directed_edges()
    assert obj.true_heights() == fast.true_heights()
    assert obj.current_links() == fast.current_links()


class TestQuiescenceParity:
    @pytest.mark.parametrize("family,size", [
        ("chain", 10), ("grid", 16), ("random-dag", 18), ("tree", 12),
        ("star", 9), ("layered", 16),
    ])
    @pytest.mark.parametrize("mode", MODES)
    def test_report_orientation_and_heights_match(self, family, size, mode):
        for config in CHANNEL_CONFIGS:
            for seed in (0, 7):
                instance = build_family(family, size, 3)
                obj, fast = _pair(instance, mode, config, seed)
                obj.run_to_quiescence()
                fast.run_to_quiescence()
                _assert_twins(obj, fast)

    def test_global_orientation_object_parity(self):
        instance = chain_instance(8, towards_destination=False)
        obj, fast = _pair(instance, ReversalMode.PARTIAL, (1.0, 2.0, False, 0.0), 5)
        obj.run_to_quiescence()
        fast.run_to_quiescence()
        assert obj.global_orientation() == fast.global_orientation()
        assert fast.global_orientation().is_destination_oriented()

    def test_event_budget_truncation_matches(self):
        instance = grid_instance(4, 4, oriented_towards_destination=False)
        obj, fast = _pair(instance, ReversalMode.FULL, (1.0, 2.0, False, 0.0), 2)
        obj.run_to_quiescence(max_events=40)
        fast.run_to_quiescence(max_events=40)
        _assert_twins(obj, fast)

    def test_run_for_advances_identically(self):
        instance = grid_instance(4, 4, oriented_towards_destination=False)
        obj, fast = _pair(instance, ReversalMode.PARTIAL, (0.5, 3.0, False, 0.0), 9)
        for duration in (1.5, 2.0, 10.0):
            obj.run_for(duration)
            fast.run_for(duration)
            _assert_twins(obj, fast)


class TestChurnParity:
    def test_interleaved_failures_and_readds(self):
        for config in ((1.0, 1.0, False, 0.0), (1.0, 2.0, False, 0.0),
                       (1.0, 2.0, True, 0.1)):
            for seed in (1, 5):
                instance = build_family("grid", 16, 2)
                obj, fast = _pair(instance, ReversalMode.PARTIAL, config, seed)
                obj.run_for(3.0)
                fast.run_for(3.0)
                rng = random.Random(seed)
                links = sorted(tuple(sorted(e, key=repr)) for e in obj.current_links())
                u, v = links[rng.randrange(len(links))]
                obj.fail_link(u, v)
                fast.fail_link(u, v)
                _assert_twins(obj, fast)
                obj.run_for(5.0)
                fast.run_for(5.0)
                _assert_twins(obj, fast)
                obj.add_link(u, v)
                fast.add_link(u, v)
                obj.run_to_quiescence()
                fast.run_to_quiescence()
                _assert_twins(obj, fast)

    def test_partition_behaviour_matches(self):
        instance = chain_instance(4, towards_destination=True)
        obj, fast = _pair(instance, ReversalMode.PARTIAL, (1.0, 2.0, False, 0.0), 5)
        obj.run_to_quiescence()
        fast.run_to_quiescence()
        obj.fail_link(0, 1)
        fast.fail_link(0, 1)
        ro = obj.run_for(duration=200.0, max_events=5000)
        rf = fast.run_for(duration=200.0, max_events=5000)
        assert dataclasses.asdict(ro) == dataclasses.asdict(rf)
        assert not rf.destination_oriented
        assert rf.acyclic

    def test_fail_unknown_link_rejected_like_oracle(self):
        instance = chain_instance(4, towards_destination=True)
        fast = FastAsyncNetwork(instance, seed=1)
        with pytest.raises(ValueError):
            fast.fail_link(0, 3)

    def test_beacon_rounds_match_under_loss(self):
        instance = grid_instance(4, 4, oriented_towards_destination=False)
        obj, fast = _pair(instance, ReversalMode.PARTIAL, (0.5, 2.0, False, 0.3), 17)
        ro = obj.run_with_beacons(max_rounds=20)
        rf = fast.run_with_beacons(max_rounds=20)
        assert dataclasses.asdict(ro) == dataclasses.asdict(rf)
        assert rf.destination_oriented


class TestFastEngineExtras:
    """Capabilities the compiled engine adds beyond the oracle's API."""

    def test_quiescent_flag(self):
        instance = chain_instance(8, towards_destination=False)
        fast = FastAsyncNetwork(instance, seed=1)
        assert not fast.quiescent()
        fast.run_to_quiescence()
        assert fast.quiescent()

    def test_quiescent_sees_through_stale_events(self):
        # fail a link with messages in flight: the stale heap entries must
        # not count as pending work
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        fast = FastAsyncNetwork(instance, min_delay=5.0, max_delay=5.0, seed=2)
        fast.run_for(0.5)  # starts dispatched, deliveries still in flight
        fast.fail_link(7, 8)
        fast.run_to_quiescence()
        assert fast.quiescent()

    def test_deadline_raises_and_keeps_partial_state(self):
        instance = chain_instance(40, towards_destination=False)
        fast = FastAsyncNetwork(instance, seed=3)
        with pytest.raises(DeadlineExceeded):
            fast.run_to_quiescence(deadline=0.0)
        assert fast.events_dispatched >= 1

    def test_link_would_partition(self):
        instance = chain_instance(4, towards_destination=True)
        fast = FastAsyncNetwork(instance, seed=1)
        assert fast.link_would_partition(0, 1)
        grid = grid_instance(3, 3, oriented_towards_destination=True)
        fast_grid = FastAsyncNetwork(grid, seed=1)
        assert not fast_grid.link_would_partition(0, 1)

    def test_work_counters_track_reversals_and_flips(self):
        instance = chain_instance(8, towards_destination=False)
        fast = FastAsyncNetwork(instance, seed=1)
        report = fast.run_to_quiescence()
        assert fast.total_reversals() == report.total_reversals > 0
        assert fast.edge_flips > 0
        sent, delivered, lost = fast.message_counts()
        assert (sent, delivered, lost) == (
            report.messages_sent, report.messages_delivered, report.messages_lost
        )

    def test_initial_heights_share_the_oracle_levels(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        levels = initial_height_levels(instance)
        fast = FastAsyncNetwork(instance, seed=0)
        for node, height in fast.true_heights().items():
            assert height == HeightValue(a=0, b=levels[node], rank=height.rank)


class TestFifoAndLossProperties:
    """Property tests: FIFO ordering and loss accounting under seeded churn."""

    @pytest.mark.parametrize("model", ("zero", "fixed", "fifo"))
    def test_fifo_models_never_reorder_messages(self, model):
        # a node's knowledge of a neighbour only ever increases; under FIFO
        # delivery the heights arriving on one link are non-decreasing, so
        # every delivered height is accepted or equal — we check the stronger
        # invariant directly on the oracle's channel layer
        from repro.distributed.channel import Channel, Message
        from repro.distributed.events import DiscreteEventSimulator

        min_delay, max_delay, fifo = DELAY_MODELS[model]
        for seed in range(5):
            simulator = DiscreteEventSimulator()
            received = []
            channel = Channel(
                simulator, "a", "b", received.append,
                min_delay=min_delay, max_delay=max_delay, seed=seed, fifo=fifo,
            )
            for i in range(40):
                channel.send(Message("a", "b", "HEIGHT", i))
                simulator.run(until=simulator.now + 0.01)
            simulator.run_until_idle()
            payloads = [m.payload for m in received]
            assert payloads == sorted(payloads)

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("loss", (0.0, 0.2))
    def test_loss_accounting_balances_under_churn(self, mode, loss):
        for seed in range(4):
            instance = build_family("grid", 16, seed)
            fast = FastAsyncNetwork(
                instance, mode=mode, min_delay=0.5, max_delay=2.0,
                loss_probability=loss, seed=seed,
            )
            fast.run_for(2.0)
            rng = random.Random(seed)
            for _ in range(3):
                links = fast.sorted_link_pairs()
                u, v = links[rng.randrange(len(links))]
                if fast.link_would_partition(u, v):
                    continue
                fast.fail_link(u, v)
                fast.run_for(2.0)
            report = fast.run_to_quiescence()
            # at quiescence every sent message was delivered, dropped by the
            # loss coin, or lost to a link failure — nothing in flight and
            # nothing double-counted
            assert report.messages_sent == report.messages_delivered + report.messages_lost
            if loss == 0.0:
                sent, delivered, lost = fast.message_counts()
                assert lost == sum(fast._lost_failure)  # only failures lose messages

    def test_zero_loss_no_churn_loses_nothing(self):
        instance = build_family("random-dag", 20, 1)
        fast = FastAsyncNetwork(instance, min_delay=1.0, max_delay=2.0, seed=4)
        report = fast.run_to_quiescence()
        assert report.messages_lost == 0
        assert report.messages_sent == report.messages_delivered


class TestPackedHeights:
    def test_pack_unpack_round_trip(self):
        for triple in ((0, 0, 0), (5, -17, 3), (123456, -987654, 1048575), (1, 2**40, 7)):
            assert unpack_height(pack_height(*triple)) == triple

    def test_packed_order_is_lexicographic(self):
        triples = [
            (0, 0, 0), (0, 0, 1), (0, 1, 0), (0, -1, 5), (1, -100, 0),
            (1, 0, 0), (2, -5, 3), (2, -5, 4),
        ]
        packed = [pack_height(*t) for t in triples]
        assert sorted(packed) == [pack_height(*t) for t in sorted(triples)]

    def test_b_overflow_rejected(self):
        with pytest.raises(OverflowError):
            pack_height(0, 2**50, 0)

    def test_node_count_bound_enforced(self):
        # the rank field is 20 bits; the constructor must reject bigger graphs
        # (constructing one is infeasible here, so check the guard constant)
        from repro.distributed.fast_network import _R_MASK

        assert _R_MASK == (1 << 20) - 1
