"""Unit tests for the Gafni–Bertsekas height-based formulations (experiment E14)."""

from __future__ import annotations

import pytest

from repro.automata.executions import run
from repro.core.base import Reverse
from repro.core.full_reversal import FullReversal
from repro.core.heights import (
    GBFullReversalHeights,
    GBPartialReversalHeights,
    HeightState,
    PairHeight,
    TripleHeight,
)
from repro.core.one_step_pr import OneStepPartialReversal
from repro.schedulers.random_scheduler import RandomScheduler
from repro.schedulers.sequential import SequentialScheduler


class TestInitialHeights:
    def test_fr_initial_orientation_matches_instance(self, bad_chain):
        state = GBFullReversalHeights(bad_chain).initial_state()
        assert set(state.directed_edges()) == set(bad_chain.initial_edges)

    def test_pr_initial_orientation_matches_instance(self, bad_chain):
        state = GBPartialReversalHeights(bad_chain).initial_state()
        assert set(state.directed_edges()) == set(bad_chain.initial_edges)

    def test_initial_orientation_matches_on_random_dag(self, random_dag):
        for automaton_class in (GBFullReversalHeights, GBPartialReversalHeights):
            state = automaton_class(random_dag).initial_state()
            assert set(state.directed_edges()) == set(random_dag.initial_edges)

    def test_initial_orientation_matches_on_diamond(self, diamond):
        state = GBPartialReversalHeights(diamond).initial_state()
        assert set(state.directed_edges()) == set(diamond.initial_edges)


class TestHeightOrder:
    def test_pair_height_ordering(self):
        assert PairHeight(2, 0) > PairHeight(1, 5)
        assert PairHeight(1, 2) > PairHeight(1, 1)

    def test_triple_height_ordering(self):
        assert TripleHeight(1, 0, 0) > TripleHeight(0, 9, 9)
        assert TripleHeight(0, 2, 0) > TripleHeight(0, 1, 9)
        assert TripleHeight(0, 0, 2) > TripleHeight(0, 0, 1)

    def test_acyclicity_is_structural(self, random_dag):
        state = GBPartialReversalHeights(random_dag).initial_state()
        assert state.is_acyclic()
        assert state.to_orientation().is_acyclic()


class TestTransitions:
    def test_fr_lift_reverses_all_edges(self, diamond):
        automaton = GBFullReversalHeights(diamond)
        state = automaton.initial_state()
        assert state.is_sink("c")
        new_state = automaton.apply(state, Reverse("c"))
        assert new_state.points_towards("c", "a")
        assert new_state.points_towards("c", "b")

    def test_pr_lift_reverses_only_lowest_neighbours(self):
        # d -> x, y -> x with y strictly above d: partial lift of x should
        # rise above the lowest neighbour(s) only.
        from repro.core.graph import LinkReversalInstance

        instance = LinkReversalInstance.from_directed_edges(
            nodes=["d", "y", "x"], destination="d", edges=[("d", "x"), ("y", "x")]
        )
        automaton = GBPartialReversalHeights(instance)
        state = automaton.initial_state()
        assert state.is_sink("x")
        new_state = automaton.apply(state, Reverse("x"))
        # x must no longer be a sink
        assert not new_state.is_sink("x")
        # the orientation stays acyclic by construction
        assert new_state.to_orientation().is_acyclic()

    def test_counts_track_steps(self, diamond):
        automaton = GBPartialReversalHeights(diamond)
        state = automaton.apply(automaton.initial_state(), Reverse("c"))
        assert state.counts["c"] == 1

    def test_disabled_apply_raises(self, diamond):
        from repro.automata.ioa import TransitionError

        automaton = GBPartialReversalHeights(diamond)
        with pytest.raises(TransitionError):
            automaton.apply(automaton.initial_state(), Reverse("d"))


class TestConvergence:
    @pytest.mark.parametrize("automaton_class", [GBFullReversalHeights, GBPartialReversalHeights])
    def test_converges_on_bad_chain(self, bad_chain, automaton_class):
        result = run(automaton_class(bad_chain), SequentialScheduler())
        assert result.converged
        assert result.final_state.is_destination_oriented()

    @pytest.mark.parametrize("automaton_class", [GBFullReversalHeights, GBPartialReversalHeights])
    def test_converges_on_grid(self, bad_grid, automaton_class):
        result = run(automaton_class(bad_grid), RandomScheduler(seed=8))
        assert result.converged
        assert result.final_state.is_destination_oriented()

    def test_fr_heights_step_count_matches_fr(self, bad_chain):
        heights_result = run(GBFullReversalHeights(bad_chain), SequentialScheduler())
        fr_result = run(FullReversal(bad_chain), SequentialScheduler())
        assert heights_result.steps_taken == fr_result.steps_taken

    def test_all_intermediate_states_acyclic(self, random_dag):
        result = run(GBPartialReversalHeights(random_dag), RandomScheduler(seed=5))
        assert all(state.is_acyclic() for state in result.execution.states)

    def test_pr_heights_work_close_to_list_pr(self, worst_chain):
        """The height formulation and the list formulation do comparable work."""
        heights_result = run(GBPartialReversalHeights(worst_chain), SequentialScheduler())
        pr_result = run(OneStepPartialReversal(worst_chain), SequentialScheduler())
        assert heights_result.converged and pr_result.converged
        # both are "partial" algorithms: far less work than FR's quadratic blow-up
        fr_result = run(FullReversal(worst_chain), SequentialScheduler())
        assert heights_result.steps_taken <= fr_result.steps_taken
        assert pr_result.steps_taken <= fr_result.steps_taken
