"""Differential regression tests: frontier engine vs. the legacy explorer.

The legacy :class:`~repro.exploration.state_space.StateSpaceExplorer`
materialises a full state object per transition; the production
:class:`~repro.exploration.checker.ModelChecker` explores compact int
signatures through compiled kernels.  These tests pin the rewrite to the
reference semantics on the seed graphs: identical state / transition /
quiescence counts, identical BFS depths, identical truncation behaviour and
identical predicate-failure sequences (including the action paths), so the
engine swap provably preserves what "exhaustively explored" means.
"""

from __future__ import annotations

import pytest

from repro.core.full_reversal import FullReversal
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.exploration.checker import ModelChecker
from repro.exploration.state_space import StateSpaceExplorer
from repro.verification.acyclicity import is_acyclic
from repro.verification.invariants import newpr_invariant_checks, pr_invariant_checks

ALGORITHM_CLASSES = (PartialReversal, OneStepPartialReversal, NewPartialReversal, FullReversal)

#: The report fields that must match field-for-field between the engines.
REPORT_FIELDS = (
    "states_explored",
    "transitions_explored",
    "quiescent_states",
    "max_depth",
    "truncated",
)


def _legacy(automaton, predicates=None, **kwargs):
    return StateSpaceExplorer(automaton, predicates, **kwargs).explore()


def _frontier(automaton, predicates=None, **kwargs):
    kwargs.setdefault("max_traced_failures", 10_000)
    if "use_single_actions_only" in kwargs:
        kwargs["single_actions_only"] = kwargs.pop("use_single_actions_only")
    return ModelChecker(automaton, predicates, **kwargs).run()


def _summaries(report):
    return tuple(getattr(report, field) for field in REPORT_FIELDS)


@pytest.fixture(params=["bad_chain", "diamond", "bad_grid", "good_chain", "worst_chain"])
def seed_graph(request):
    """Every canonical seed instance from conftest, one at a time."""
    return request.getfixturevalue(request.param)


class TestReportEquivalence:
    @pytest.mark.parametrize("automaton_class", ALGORITHM_CLASSES)
    def test_counts_depth_and_quiescence_match(self, automaton_class, seed_graph):
        legacy = _legacy(automaton_class(seed_graph))
        frontier = _frontier(automaton_class(seed_graph))
        assert _summaries(frontier) == _summaries(legacy)

    @pytest.mark.parametrize("automaton_class", (PartialReversal,))
    def test_single_action_mode_matches(self, automaton_class, seed_graph):
        legacy = _legacy(automaton_class(seed_graph), use_single_actions_only=True)
        frontier = _frontier(automaton_class(seed_graph), use_single_actions_only=True)
        assert _summaries(frontier) == _summaries(legacy)

    @pytest.mark.parametrize("max_states", [1, 3, 10])
    def test_truncation_behaviour_matches(self, max_states, bad_grid):
        for automaton_class in ALGORITHM_CLASSES:
            legacy = _legacy(automaton_class(bad_grid), max_states=max_states)
            frontier = _frontier(automaton_class(bad_grid), max_states=max_states)
            assert _summaries(frontier) == _summaries(legacy)
            assert frontier.truncated

    def test_sharded_matches_legacy_too(self, bad_grid):
        for automaton_class in ALGORITHM_CLASSES:
            legacy = _legacy(automaton_class(bad_grid))
            sharded = _frontier(automaton_class(bad_grid), workers=2)
            assert _summaries(sharded) == _summaries(legacy)


class TestPredicateFailureEquivalence:
    def _planted(self, automaton):
        initial_signature = automaton.initial_state().signature()
        return {
            "is-initial": lambda s: s.signature() == initial_signature,
            "at-most-two-reversals": lambda s: bin(s.graph_signature()).count("1") <= 2,
        }

    @pytest.mark.parametrize("automaton_class", ALGORITHM_CLASSES)
    def test_failures_and_paths_match_exactly(self, automaton_class, seed_graph):
        legacy = _legacy(
            automaton_class(seed_graph), self._planted(automaton_class(seed_graph))
        )
        frontier = _frontier(
            automaton_class(seed_graph), self._planted(automaton_class(seed_graph))
        )
        assert len(frontier.failures) == len(legacy.failures)
        # same discovery order, same predicate names, same action paths
        assert [
            (f.predicate_name, f.path) for f in frontier.failures
        ] == [(f.predicate_name, f.path) for f in legacy.failures]

    def test_invariant_bundles_clean_on_both(self, seed_graph):
        for automaton_class, predicates in (
            (PartialReversal, pr_invariant_checks()),
            (OneStepPartialReversal, pr_invariant_checks()),
            (NewPartialReversal, newpr_invariant_checks()),
            (FullReversal, {"acyclic": is_acyclic}),
        ):
            legacy = _legacy(automaton_class(seed_graph), dict(predicates))
            frontier = _frontier(automaton_class(seed_graph), dict(predicates))
            assert legacy.all_predicates_hold
            assert frontier.all_predicates_hold
            assert _summaries(frontier) == _summaries(legacy)
