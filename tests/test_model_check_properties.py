"""Property-based tests for the parallel model-checking engine.

Three families of properties over seeded random topologies and planted
bad-state predicates:

(a) the engine's state counts match a brute-force enumeration oracle (an
    independent depth-first enumeration written here, sharing no code with
    either explorer);
(b) every extracted counterexample replays — through the automaton's own
    transition function — to a state that violates the predicate;
(c) sharded exploration (2–4 workers) and single-process exploration visit
    *identical* signature sets, state/transition/quiescence counts and depths.

Plus targeted coverage for the supporting machinery: twin-node symmetry
reduction (exact orbit quotient on stars), the disk-spilled visited set, and
the generic fallback path for automata without a compiled kernel.
"""

from __future__ import annotations

import pytest

from repro.core.bll import BinaryLinkLabels
from repro.core.full_reversal import FullReversal
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.exploration.checker import ModelChecker, check_exhaustively
from repro.exploration.frontier import (
    VisitedSet,
    compile_expander,
    mask_is_acyclic,
    mask_is_destination_oriented,
    twin_node_classes,
)
from repro.topology.generators import (
    grid_instance,
    random_dag_instance,
    star_instance,
    tree_instance,
    worst_case_chain_instance,
)

ALGORITHM_CLASSES = (PartialReversal, OneStepPartialReversal, NewPartialReversal, FullReversal)


def random_topologies(seed: int):
    """Seeded random small instances spanning the generator families."""
    return [
        random_dag_instance(6, edge_probability=0.4, seed=seed),
        random_dag_instance(7, edge_probability=0.3, seed=seed + 100),
        tree_instance(7, seed=seed),
        worst_case_chain_instance(4),
    ]


def brute_force_signatures(automaton):
    """Independent depth-first enumeration oracle over state signatures."""
    initial = automaton.initial_state()
    seen = {initial.signature()}
    stack = [initial]
    while stack:
        state = stack.pop()
        for action in automaton.enabled_actions(state):
            successor = automaton.apply(state, action)
            signature = successor.signature()
            if signature not in seen:
                seen.add(signature)
                stack.append(successor)
    return seen


# ----------------------------------------------------------------------
# (a) state counts match a brute-force enumeration oracle
# ----------------------------------------------------------------------
class TestOracleCounts:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("automaton_class", ALGORITHM_CLASSES)
    def test_state_count_matches_oracle(self, automaton_class, seed):
        for instance in random_topologies(seed):
            oracle = brute_force_signatures(automaton_class(instance))
            report = ModelChecker(automaton_class(instance)).run()
            assert report.states_explored == len(oracle)
            assert not report.truncated

    @pytest.mark.parametrize("automaton_class", (FullReversal, OneStepPartialReversal, PartialReversal))
    def test_signature_sets_match_oracle_encoding(self, automaton_class, bad_grid):
        # FR / OneStepPR / PR compiled signatures use the states' own
        # encoding, so the sets (not just the counts) must coincide
        oracle = brute_force_signatures(automaton_class(bad_grid))
        report = ModelChecker(automaton_class(bad_grid), collect_signatures=True).run()
        assert report.signatures == oracle

    def test_oracle_counts_on_named_families(self):
        for instance in (grid_instance(3, 3, False), star_instance(5)):
            for automaton_class in ALGORITHM_CLASSES:
                oracle = brute_force_signatures(automaton_class(instance))
                report = ModelChecker(automaton_class(instance)).run()
                assert report.states_explored == len(oracle)


# ----------------------------------------------------------------------
# (b) every counterexample replays to a violating state
# ----------------------------------------------------------------------
def _planted_predicates(automaton):
    """Predicates guaranteed to fail somewhere in a non-trivial exploration."""
    initial_signature = automaton.initial_state().signature()
    return {
        "is-initial": lambda s: s.signature() == initial_signature,
        "at-most-one-reversal": lambda s: bin(s.graph_signature()).count("1") <= 1,
    }


class TestCounterexampleReplay:
    @pytest.mark.parametrize("automaton_class", ALGORITHM_CLASSES)
    @pytest.mark.parametrize("seed", [0, 3])
    def test_counterexamples_replay_to_violations(self, automaton_class, seed):
        for instance in random_topologies(seed):
            automaton = automaton_class(instance)
            predicates = _planted_predicates(automaton)
            report = ModelChecker(automaton, predicates, max_traced_failures=10_000).run()
            assert not report.all_predicates_hold
            for failure in report.failures:
                assert failure.trace.reconstructed
                execution = failure.trace.replay(automaton_class(instance))
                execution.validate()
                final = execution.final_state
                assert not predicates[failure.predicate_name](final), (
                    f"{failure.trace} replayed to a state satisfying the predicate"
                )

    def test_sharded_counterexamples_replay(self, bad_grid):
        automaton = OneStepPartialReversal(bad_grid)
        predicates = _planted_predicates(automaton)
        report = ModelChecker(automaton, predicates, workers=2, max_traced_failures=10_000).run()
        assert not report.all_predicates_hold
        for failure in report.failures:
            execution = failure.trace.replay(OneStepPartialReversal(bad_grid))
            execution.validate()
            assert not predicates[failure.predicate_name](execution.final_state)

    def test_failure_counts_match_single_process(self, bad_grid):
        automaton_factory = lambda: OneStepPartialReversal(bad_grid)  # noqa: E731
        predicates = _planted_predicates(automaton_factory())
        single = ModelChecker(
            automaton_factory(), predicates, max_traced_failures=10_000
        ).run()
        sharded = ModelChecker(
            automaton_factory(), predicates, workers=3, max_traced_failures=10_000
        ).run()
        single_hits = sorted((f.predicate_name, f.trace.signatures[-1]) for f in single.failures)
        sharded_hits = sorted((f.predicate_name, f.trace.signatures[-1]) for f in sharded.failures)
        assert single_hits == sharded_hits

    def test_trace_serialisation_schema(self, bad_chain):
        automaton = NewPartialReversal(bad_chain)
        report = ModelChecker(automaton, _planted_predicates(automaton)).run()
        payload = report.failures[0].trace.to_dict()
        assert payload["automaton"] == "NewPR"
        assert payload["depth"] == len(payload["actions"])
        assert all("actors" in action for action in payload["actions"])
        assert len(payload["signatures"]) == payload["depth"] + 1
        assert payload["reconstructed"] is True

    @pytest.mark.parametrize("automaton_class", ALGORITHM_CLASSES)
    def test_traces_verify_against_signature_chain(self, automaton_class, bad_grid):
        # verify_signatures must re-encode replayed states through the
        # expander (NewPR's packed-int layout differs from the state's own
        # tuple signature), so it is exercised for every compiled kernel
        automaton = automaton_class(bad_grid)
        predicates = _planted_predicates(automaton)
        report = ModelChecker(automaton, predicates, max_traced_failures=10_000).run()
        expander = compile_expander(automaton_class(bad_grid))
        assert report.failures
        for failure in report.failures:
            failure.trace.verify_signatures(expander)

    def test_tampered_trace_fails_verification(self, bad_grid):
        import dataclasses

        automaton = OneStepPartialReversal(bad_grid)
        report = ModelChecker(automaton, _planted_predicates(automaton)).run()
        trace = report.failures[0].trace
        tampered = dataclasses.replace(
            trace, signatures=trace.signatures[:-1] + (trace.signatures[-1] ^ 1,)
        )
        with pytest.raises(ValueError, match="replayed signature"):
            tampered.verify_signatures(compile_expander(OneStepPartialReversal(bad_grid)))

    def test_newpr_symmetric_traces_verify(self):
        instance = star_instance(4)
        automaton = NewPartialReversal(instance)
        predicates = {"at-most-one-reversal": lambda s: bin(s.graph_signature()).count("1") <= 1}
        report = ModelChecker(automaton, predicates, symmetry=True).run()
        expander = compile_expander(NewPartialReversal(instance))
        assert report.failures
        for failure in report.failures:
            failure.trace.verify_signatures(expander)

    def test_trace_string_names_the_violation(self, bad_chain):
        automaton = NewPartialReversal(bad_chain)
        report = ModelChecker(automaton, _planted_predicates(automaton)).run()
        text = str(report.failures[0].trace)
        assert "violated at depth" in text
        assert "NewPR" in text

    def test_untraced_failures_refuse_to_replay(self, bad_chain):
        automaton = NewPartialReversal(bad_chain)
        report = ModelChecker(
            automaton, _planted_predicates(automaton), max_traced_failures=0
        ).run()
        assert not report.all_predicates_hold
        failure = report.failures[0]
        assert not failure.trace.reconstructed
        assert failure.trace.to_dict()["signatures"] is None
        with pytest.raises(ValueError, match="not reconstructed"):
            failure.trace.replay(automaton)
        with pytest.raises(ValueError, match="no signature chain"):
            failure.trace.verify_signatures(compile_expander(automaton))


# ----------------------------------------------------------------------
# (c) sharded and single-process exploration are indistinguishable
# ----------------------------------------------------------------------
class TestShardedEquivalence:
    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_identical_signature_sets(self, workers, bad_grid):
        for automaton_class in ALGORITHM_CLASSES:
            single = ModelChecker(automaton_class(bad_grid), collect_signatures=True).run()
            sharded = ModelChecker(
                automaton_class(bad_grid), collect_signatures=True, workers=workers
            ).run()
            assert sharded.signatures == single.signatures
            assert sharded.states_explored == single.states_explored
            assert sharded.transitions_explored == single.transitions_explored
            assert sharded.quiescent_states == single.quiescent_states
            assert sharded.max_depth == single.max_depth
            assert sharded.workers == workers

    @pytest.mark.parametrize("seed", [0, 1])
    def test_identical_on_random_topologies(self, seed):
        for instance in random_topologies(seed):
            single = ModelChecker(FullReversal(instance), collect_signatures=True).run()
            sharded = ModelChecker(
                FullReversal(instance), collect_signatures=True, workers=2
            ).run()
            assert sharded.signatures == single.signatures

    def test_sharded_truncation_is_round_granular(self, bad_grid):
        report = ModelChecker(FullReversal(bad_grid), max_states=10, workers=2).run()
        assert report.truncated
        assert report.states_explored >= 10  # cap is evaluated between rounds

    @pytest.mark.parametrize("workers", [2, 3])
    def test_exact_cap_fit_is_not_truncated(self, workers, bad_grid):
        # a cap equal to the reachable-state count must report an exhaustive
        # run in sharded mode too: the pending frontier at the cap consists
        # entirely of already-visited duplicates
        exact = ModelChecker(OneStepPartialReversal(bad_grid)).run().states_explored
        single = ModelChecker(OneStepPartialReversal(bad_grid), max_states=exact).run()
        sharded = ModelChecker(
            OneStepPartialReversal(bad_grid), max_states=exact, workers=workers
        ).run()
        assert not single.truncated
        assert not sharded.truncated
        assert sharded.states_explored == single.states_explored == exact

    def test_sharded_track_traces_off_still_reports_failures(self, bad_grid):
        automaton = OneStepPartialReversal(bad_grid)
        predicates = _planted_predicates(automaton)
        report = ModelChecker(
            automaton, predicates, workers=2, track_traces=False
        ).run()
        assert not report.all_predicates_hold
        assert all(not f.trace.reconstructed for f in report.failures)

    def test_worker_predicate_exception_is_diagnosable(self, bad_grid):
        def exploding(state):
            raise RuntimeError("predicate blew up")

        with pytest.raises(RuntimeError, match="predicate blew up"):
            ModelChecker(
                OneStepPartialReversal(bad_grid), {"boom": exploding}, workers=2
            ).run()

    def test_sharded_with_invariant_predicates_is_clean(self, bad_grid):
        from repro.verification.invariants import pr_invariant_checks

        report = ModelChecker(
            OneStepPartialReversal(bad_grid),
            pr_invariant_checks(),
            workers=2,
            check_acyclicity=True,
            check_progress=True,
        ).run()
        assert report.all_predicates_hold
        assert not report.truncated


# ----------------------------------------------------------------------
# twin-node symmetry reduction
# ----------------------------------------------------------------------
class TestSymmetryReduction:
    def test_star_leaves_form_one_twin_class(self):
        instance = star_instance(6)
        classes = twin_node_classes(instance)
        assert len(classes) == 1
        assert len(classes[0]) == 6

    def test_star_reduction_is_exact_orbit_quotient(self):
        # FR on a star: the full space is every subset of reversed leaf
        # edges (2^k states); orbits under leaf permutation are counted by
        # the number of reversed edges (k + 1 orbits)
        instance = star_instance(6)
        plain = ModelChecker(FullReversal(instance), collect_signatures=True).run()
        reduced = ModelChecker(FullReversal(instance), symmetry=True).run()
        assert plain.states_explored == 2 ** 6
        assert reduced.states_explored == 7
        assert reduced.symmetry_reduced
        expander = compile_expander(FullReversal(instance))
        orbits = {expander.canonicalize(sig) for sig in plain.signatures}
        assert len(orbits) == reduced.states_explored

    def test_reduction_never_loses_violations(self):
        instance = star_instance(5)
        automaton = FullReversal(instance)
        predicates = {"at-most-one-reversal": lambda s: bin(s.graph_signature()).count("1") <= 1}
        plain = ModelChecker(automaton, predicates, max_traced_failures=10_000).run()
        reduced = ModelChecker(
            FullReversal(instance), predicates, symmetry=True, max_traced_failures=10_000
        ).run()
        assert not plain.all_predicates_hold
        assert not reduced.all_predicates_hold
        # the reduced run sees every *distinct violation pattern* (orbit)
        expander = compile_expander(automaton)
        plain_orbits = {expander.canonicalize(f.trace.signatures[-1]) for f in plain.failures}
        reduced_orbits = {f.trace.signatures[-1] for f in reduced.failures}
        assert plain_orbits == reduced_orbits

    def test_symmetric_traces_verify_step_by_step(self):
        instance = star_instance(5)
        automaton = FullReversal(instance)
        predicates = {"at-most-one-reversal": lambda s: bin(s.graph_signature()).count("1") <= 1}
        report = ModelChecker(automaton, predicates, symmetry=True).run()
        expander = compile_expander(automaton)
        for failure in report.failures:
            failure.trace.verify_signatures(expander)
            with pytest.raises(ValueError):
                failure.trace.replay(automaton)

    def test_symmetry_with_paper_invariants_holds(self):
        from repro.verification.invariants import pr_invariant_checks

        report = ModelChecker(
            OneStepPartialReversal(star_instance(5)),
            pr_invariant_checks(),
            symmetry=True,
            check_acyclicity=True,
            check_progress=True,
        ).run()
        assert report.all_predicates_hold

    def test_newpr_symmetry_quotients_counter_fields(self):
        # NewPR signatures carry per-node step counters; the canonical form
        # must permute those alongside the edge bits.  A star has a single
        # twin class, so the reduction is an exact orbit quotient.
        instance = star_instance(4)
        plain = ModelChecker(NewPartialReversal(instance), collect_signatures=True).run()
        reduced = ModelChecker(
            NewPartialReversal(instance), symmetry=True, check_acyclicity=True
        ).run()
        expander = compile_expander(NewPartialReversal(instance))
        orbits = {expander.canonicalize(sig) for sig in plain.signatures}
        assert reduced.states_explored == len(orbits)
        assert reduced.states_explored < plain.states_explored
        assert reduced.all_predicates_hold

    def test_sharded_symmetry_matches_single(self):
        instance = star_instance(5)
        single = ModelChecker(FullReversal(instance), symmetry=True, collect_signatures=True).run()
        sharded = ModelChecker(
            FullReversal(instance), symmetry=True, workers=2, collect_signatures=True
        ).run()
        assert sharded.signatures == single.signatures

    def test_chain_has_no_twins(self, bad_chain):
        assert twin_node_classes(bad_chain) == []
        report = ModelChecker(FullReversal(bad_chain), symmetry=True).run()
        assert not report.symmetry_reduced


# ----------------------------------------------------------------------
# disk-spilled visited set
# ----------------------------------------------------------------------
class TestVisitedSetSpill:
    def test_spill_preserves_set_semantics(self, tmp_path):
        import random

        rng = random.Random(7)
        signatures = [rng.getrandbits(64) for _ in range(2000)]
        visited = VisitedSet(key_bytes=8, spill_threshold=128, spill_dir=str(tmp_path))
        fresh = sum(1 for sig in signatures if visited.add(sig))
        assert fresh == len(set(signatures))
        assert len(visited) == len(set(signatures))
        assert visited.spilled_runs > 1
        # re-adds all rejected, membership exact, iteration complete
        assert not any(visited.add(sig) for sig in signatures)
        assert all(sig in visited for sig in signatures)
        absent = next(x for x in range(10_000) if x not in set(signatures))
        assert absent not in visited
        assert set(visited) == set(signatures)
        visited.close()

    def test_spill_requires_fixed_width(self):
        with pytest.raises(ValueError):
            VisitedSet(spill_threshold=10)

    def test_checker_with_spill_matches_in_memory(self, bad_grid, tmp_path):
        automaton = OneStepPartialReversal(bad_grid)
        spilled = ModelChecker(
            automaton,
            collect_signatures=True,
            spill_threshold=4,
            spill_dir=str(tmp_path),
        ).run()
        plain = ModelChecker(OneStepPartialReversal(bad_grid), collect_signatures=True).run()
        assert spilled.spilled
        assert spilled.signatures == plain.signatures

    def test_spill_scratch_files_removed_on_close(self, bad_grid, tmp_path):
        spill_dir = tmp_path / "spill"
        report = ModelChecker(
            OneStepPartialReversal(bad_grid),
            spill_threshold=4,
            spill_dir=str(spill_dir),
        ).run()
        assert report.spilled
        assert list(spill_dir.glob("run-*.bin")) == []  # scratch cleaned up

    def test_truncated_signatures_stay_consistent(self, bad_grid):
        report = ModelChecker(
            OneStepPartialReversal(bad_grid), max_states=7, collect_signatures=True
        ).run()
        assert report.truncated
        assert len(report.signatures) == report.states_explored == 7

    def test_truncated_sharded_signatures_stay_consistent(self, bad_grid):
        # the truncation probe must not insert probed entries into the
        # workers' visited sets
        report = ModelChecker(
            FullReversal(bad_grid), max_states=10, workers=2, collect_signatures=True
        ).run()
        assert report.truncated
        assert len(report.signatures) == report.states_explored

    def test_sharded_spill_matches(self, bad_grid, tmp_path):
        sharded = ModelChecker(
            OneStepPartialReversal(bad_grid),
            workers=2,
            collect_signatures=True,
            spill_threshold=4,
            spill_dir=str(tmp_path),
        ).run()
        plain = ModelChecker(OneStepPartialReversal(bad_grid), collect_signatures=True).run()
        assert sharded.spilled
        assert sharded.signatures == plain.signatures


# ----------------------------------------------------------------------
# structural mask checks and the generic fallback
# ----------------------------------------------------------------------
class TestMaskChecks:
    def test_mask_acyclicity_agrees_with_orientation(self, diamond):
        from repro.core.graph import Orientation

        for mask in range(1 << diamond.edge_count):
            assert mask_is_acyclic(diamond, mask) == Orientation(diamond, mask).is_acyclic()

    def test_mask_destination_oriented_agrees(self, diamond):
        from repro.core.graph import Orientation

        for mask in range(1 << diamond.edge_count):
            assert mask_is_destination_oriented(diamond, mask) == Orientation(
                diamond, mask
            ).is_destination_oriented()

    def test_builtin_invariants_hold_on_all_algorithms(self, bad_grid):
        for automaton_class in ALGORITHM_CLASSES:
            report = check_exhaustively(
                automaton_class(bad_grid), check_acyclicity=True, check_progress=True
            )
            assert report.all_predicates_hold, str(report)
            assert set(report.predicate_names) >= {"acyclic", "progress"}


class _CounterState:
    """Minimal state for a structural automaton: no orientation hooks at all."""

    def __init__(self, value):
        self.value = value

    def signature(self):
        return self.value

    def copy(self):
        return _CounterState(self.value)


class _CountdownAutomaton:
    """A tiny non-link-reversal automaton driving the generic checker path."""

    name = "countdown"

    def initial_state(self):
        return _CounterState(3)

    def enabled_actions(self, state):
        from repro.core.base import Reverse

        if state.value > 0:
            yield Reverse(state.value)

    def enabled_single_actions(self, state):
        return self.enabled_actions(state)

    def is_enabled(self, state, action):
        return state.value > 0 and action.node == state.value

    def apply(self, state, action):
        return _CounterState(state.value - 1)


class TestGenericFallback:
    def test_countdown_automaton_explores(self):
        report = ModelChecker(_CountdownAutomaton()).run()
        assert report.states_explored == 4
        assert report.quiescent_states == 1

    def test_builtin_checks_refuse_states_without_hooks(self):
        # silently skipping the built-in checks would let the report (and a
        # stored record) claim invariants that were never evaluated
        with pytest.raises(ValueError, match="is_acyclic"):
            ModelChecker(_CountdownAutomaton(), check_acyclicity=True).run()
        with pytest.raises(ValueError, match="is_destination_oriented"):
            ModelChecker(_CountdownAutomaton(), check_progress=True).run()

    def test_bll_explores_without_compiled_kernel(self, bad_chain):
        report = ModelChecker(BinaryLinkLabels(bad_chain), check_acyclicity=True).run()
        assert report.states_explored > 1
        assert report.all_predicates_hold

    def test_bll_counterexample_replays(self, bad_chain):
        automaton = BinaryLinkLabels(bad_chain)
        initial_signature = automaton.initial_state().signature()
        predicates = {"is-initial": lambda s: s.signature() == initial_signature}
        report = ModelChecker(BinaryLinkLabels(bad_chain), predicates).run()
        assert not report.all_predicates_hold
        execution = report.failures[0].trace.replay(BinaryLinkLabels(bad_chain))
        execution.validate()
        assert execution.final_state.signature() != initial_signature

    def test_bll_refuses_sharding(self, bad_chain):
        with pytest.raises(ValueError, match="compiled signature kernel"):
            ModelChecker(BinaryLinkLabels(bad_chain), workers=2)

    def test_bll_refuses_symmetry(self, bad_chain):
        with pytest.raises(ValueError, match="symmetry"):
            ModelChecker(BinaryLinkLabels(bad_chain), symmetry=True)

    def test_bll_refuses_spill(self, bad_chain):
        with pytest.raises(ValueError, match="spill"):
            ModelChecker(BinaryLinkLabels(bad_chain), spill_threshold=10).run()
