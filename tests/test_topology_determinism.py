"""Seed-determinism of every topology generator family.

The experiment campaigns rebuild instances from ``(family, size, seed)``
triples inside worker processes, so the whole subsystem rests on generators
being pure functions of their seed: same triple ⇒ identical nodes,
destination and initial edge tuple, in identical order, across calls and
across processes.
"""

from __future__ import annotations

import pytest

from repro.topology.generators import (
    FAMILY_NAMES,
    build_family,
    layered_instance,
    random_dag_instance,
    tree_instance,
)
from repro.topology.manet import random_geometric_instance


def _identity(instance):
    return (instance.nodes, instance.destination, instance.initial_edges)


class TestBuildFamilyDeterminism:
    @pytest.mark.parametrize("family", FAMILY_NAMES)
    @pytest.mark.parametrize("seed", [0, 7, 12345])
    def test_same_seed_same_instance(self, family, seed):
        first = build_family(family, 14, seed)
        second = build_family(family, 14, seed)
        assert _identity(first) == _identity(second)

    @pytest.mark.parametrize("family", ["tree", "layered", "random-dag", "geometric"])
    def test_different_seeds_differ(self, family):
        # the randomised families must actually consume the seed
        instances = {_identity(build_family(family, 16, seed)) for seed in range(6)}
        assert len(instances) > 1

    @pytest.mark.parametrize("family", FAMILY_NAMES)
    def test_instances_are_valid_dags(self, family):
        instance = build_family(family, 12, seed=3)
        assert instance.node_count >= 2
        assert instance.is_initially_acyclic()


class TestGeneratorDeterminism:
    def test_tree_instance(self):
        assert _identity(tree_instance(20, seed=9)) == _identity(tree_instance(20, seed=9))

    def test_layered_instance(self):
        assert _identity(layered_instance(4, 5, seed=9)) == _identity(
            layered_instance(4, 5, seed=9)
        )

    def test_random_dag_instance(self):
        assert _identity(random_dag_instance(18, seed=9)) == _identity(
            random_dag_instance(18, seed=9)
        )

    def test_random_geometric_instance(self):
        first_instance, first_network = random_geometric_instance(15, seed=9)
        second_instance, second_network = random_geometric_instance(15, seed=9)
        assert _identity(first_instance) == _identity(second_instance)
        # the generating network (positions included) is deterministic too
        assert first_network.positions == second_network.positions
        assert first_network.radius == second_network.radius

    def test_geometric_retry_path_is_deterministic(self):
        # a small radius forces the connectivity-retry loop; the retry
        # sequence is seed-derived, so the result is still reproducible
        first, _ = random_geometric_instance(12, radius=0.32, seed=2)
        second, _ = random_geometric_instance(12, radius=0.32, seed=2)
        assert _identity(first) == _identity(second)
