"""Unit tests for the convergence measurement helpers."""

from __future__ import annotations

import pytest

from repro.analysis.convergence import ConvergenceSummary, convergence_series, measure_convergence
from repro.core.full_reversal import FullReversal
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.topology.generators import (
    chain_instance,
    grid_instance,
    worst_case_chain_instance,
)


class TestMeasureConvergence:
    def test_fields_on_bad_chain(self, bad_chain):
        summary = measure_convergence(OneStepPartialReversal(bad_chain))
        assert summary.converged
        assert summary.destination_oriented
        assert summary.node_count == bad_chain.node_count
        assert summary.bad_node_count == 4
        assert summary.node_steps > 0
        assert summary.rounds >= 1

    def test_oriented_instance_needs_zero_rounds(self, good_chain):
        summary = measure_convergence(PartialReversal(good_chain))
        assert summary.node_steps == 0
        assert summary.destination_oriented

    def test_rounds_never_exceed_steps(self, bad_grid):
        summary = measure_convergence(OneStepPartialReversal(bad_grid))
        assert summary.rounds <= summary.node_steps

    def test_pr_set_actions_counted_per_node(self, bad_grid):
        pr_summary = measure_convergence(PartialReversal(bad_grid))
        onestep_summary = measure_convergence(OneStepPartialReversal(bad_grid))
        assert pr_summary.node_steps == onestep_summary.node_steps

    def test_algorithm_name_recorded(self, bad_chain):
        assert measure_convergence(FullReversal(bad_chain)).algorithm == "FR"
        assert measure_convergence(NewPartialReversal(bad_chain)).algorithm == "NewPR"

    def test_string_rendering(self, bad_chain):
        text = str(measure_convergence(FullReversal(bad_chain)))
        assert "FR" in text and "rounds" in text

    def test_max_steps_bound_reported(self, worst_chain):
        summary = measure_convergence(FullReversal(worst_chain), max_steps=1)
        assert not summary.converged


class TestConvergenceSeries:
    def test_series_over_chain_sizes(self):
        instances = [worst_case_chain_instance(k) for k in (2, 4, 6)]
        series = convergence_series(instances, FullReversal)
        assert len(series) == 3
        assert [s.bad_node_count for s in series] == [2, 4, 6]
        # FR work grows with the bad-node count
        assert series[0].node_steps < series[1].node_steps < series[2].node_steps

    def test_series_records_every_instance(self):
        instances = [
            grid_instance(2, 3, oriented_towards_destination=False),
            chain_instance(5, towards_destination=False),
        ]
        series = convergence_series(instances, OneStepPartialReversal)
        assert all(isinstance(s, ConvergenceSummary) for s in series)
        assert all(s.destination_oriented for s in series)
