"""Tests for the aggregation layer over stored campaign results."""

from __future__ import annotations

import pytest

from repro.experiments.aggregate import (
    build_report,
    group_summary,
    invariant_outcomes,
    pr_vs_fr_ordering,
    work_curves,
)
from repro.experiments.executor import run_campaign
from repro.experiments.spec import CampaignSpec
from repro.experiments.store import ResultStore


@pytest.fixture(scope="module")
def swept_store(tmp_path_factory):
    """A small real campaign swept once and shared by the aggregation tests."""
    store = ResultStore(tmp_path_factory.mktemp("agg-store"))
    campaign = CampaignSpec(
        name="agg",
        families=("chain", "random-dag"),
        algorithms=("pr", "fr"),
        schedulers=("greedy",),
        sizes=(4, 6, 8, 10, 12),
        replicates=2,
    )
    run_campaign(campaign, store, workers=1)
    return store


class TestGroupSummary:
    def test_groups_by_family_and_algorithm(self, swept_store):
        summaries = group_summary(swept_store.records(status="ok"))
        assert set(summaries) == {
            ("chain", "pr"), ("chain", "fr"), ("random-dag", "pr"), ("random-dag", "fr"),
        }
        for stats in summaries.values():
            assert stats["count"] == 10  # 5 sizes × 2 replicates
            assert stats["min"] <= stats["p50"] <= stats["p90"] <= stats["max"]

    def test_custom_grouping_and_metric(self, swept_store):
        summaries = group_summary(
            swept_store.records(status="ok"), by=("algorithm",), metric="edge_reversals"
        )
        assert set(summaries) == {("pr",), ("fr",)}


class TestWorkCurves:
    def test_chain_fr_curve_is_quadratic(self, swept_store):
        curves = work_curves(swept_store.records(status="ok"))
        fr = curves[("chain", "fr")]
        assert [size for size, _ in fr["points"]] == [4, 6, 8, 10, 12]
        assert fr["fit"] is not None
        a = fr["fit"][0]
        assert a > 0.3  # clearly quadratic leading coefficient (theory: 0.5)
        assert fr["r2"] > 0.999

    def test_chain_pr_curve_is_linear(self, swept_store):
        curves = work_curves(swept_store.records(status="ok"))
        pr = curves[("chain", "pr")]
        assert abs(pr["fit"][0]) < 0.05  # no quadratic term
        assert pr["r2"] > 0.999

    def test_too_few_sizes_skips_fit(self):
        records = [
            {"family": "chain", "algorithm": "pr", "size": s, "node_steps": s}
            for s in (4, 6)
        ]
        curves = work_curves(records)
        assert curves[("chain", "pr")]["fit"] is None


class TestPrVsFrOrdering:
    def test_ordering_reproduced_from_store(self, swept_store):
        ordering = pr_vs_fr_ordering(swept_store.records(status="ok"))
        assert ordering["ordering_holds"] is True
        assert ordering["sizes"] == [4, 6, 8, 10, 12]
        last = ordering["comparison"][-1]
        assert last["fr"] > last["pr"]
        assert last["ratio"] > 2.0
        assert ordering["fr_fit"][0] > 0.3

    def test_missing_family_does_not_hold(self, swept_store):
        ordering = pr_vs_fr_ordering(swept_store.records(status="ok"), family="grid")
        assert ordering["ordering_holds"] is False
        assert ordering["comparison"] == []

    def test_violated_ordering_detected(self):
        records = []
        for size in (4, 6, 8, 10):
            records.append({"family": "chain", "algorithm": "pr", "size": size,
                            "node_steps": size * size})
            records.append({"family": "chain", "algorithm": "fr", "size": size,
                            "node_steps": size})
        assert pr_vs_fr_ordering(records)["ordering_holds"] is False


class TestInvariantsAndReport:
    def test_invariant_outcomes_all_hold(self, swept_store):
        outcome = invariant_outcomes(swept_store.records(status="ok"))
        assert outcome["runs"] == 40
        assert outcome["acyclic_final"] == 40
        assert outcome["destination_oriented"] == 40
        assert outcome["violations"] == 0

    def test_invariant_outcomes_acyclic_tristate(self):
        # acyclic_final=None means "the acyclicity check did not run" (model
        # check records with --invariants progress); only False is a failure
        records = [
            {"status": "ok", "acyclic_final": True},
            {"status": "ok", "acyclic_final": None, "kind": "check", "violations": 0},
            {"status": "ok", "acyclic_final": False},
        ]
        outcome = invariant_outcomes(records)
        assert outcome["violations"] == 1

    def test_invariant_outcomes_count_check_record_violations(self):
        records = [
            {"status": "violated", "kind": "check", "acyclic_final": False,
             "violations": 3},
        ]
        assert invariant_outcomes(records)["violations"] == 3

    def test_build_report_bundle(self, swept_store):
        report = build_report(swept_store)
        assert report["campaign"]["name"] == "agg"
        assert report["status_counts"] == {"ok": 40}
        assert report["pr_vs_fr"]["ordering_holds"] is True
        assert set(report["groups"]) == {
            "chain/pr", "chain/fr", "random-dag/pr", "random-dag/fr",
        }
        import json

        json.dumps(report)  # the whole bundle must be JSON-serialisable
