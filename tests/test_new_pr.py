"""Unit tests for the paper's NewPR automaton (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.automata.executions import run
from repro.automata.ioa import TransitionError
from repro.core.base import Reverse
from repro.core.graph import LinkReversalInstance
from repro.core.new_pr import NewPartialReversal, NewPRState, Parity
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.random_scheduler import RandomScheduler
from repro.schedulers.sequential import SequentialScheduler


class TestParity:
    def test_of_even(self):
        assert Parity.of(0) is Parity.EVEN
        assert Parity.of(4) is Parity.EVEN

    def test_of_odd(self):
        assert Parity.of(1) is Parity.ODD
        assert Parity.of(7) is Parity.ODD

    def test_flipped(self):
        assert Parity.EVEN.flipped() is Parity.ODD
        assert Parity.ODD.flipped() is Parity.EVEN


class TestInitialState:
    def test_counts_start_at_zero(self, diamond):
        state = NewPartialReversal(diamond).initial_state()
        assert all(state.count(u) == 0 for u in diamond.nodes)

    def test_parity_starts_even(self, diamond):
        state = NewPartialReversal(diamond).initial_state()
        assert all(state.parity(u) is Parity.EVEN for u in diamond.nodes)

    def test_total_steps_zero(self, diamond):
        assert NewPartialReversal(diamond).initial_state().total_steps() == 0


class TestTransitionSemantics:
    def test_even_parity_reverses_initial_in_neighbours(self, diamond):
        automaton = NewPartialReversal(diamond)
        state = automaton.initial_state()
        # c is a sink; its initial in-neighbours are a and b
        new_state = automaton.apply(state, Reverse("c"))
        assert new_state.orientation.points_towards("c", "a")
        assert new_state.orientation.points_towards("c", "b")
        assert new_state.count("c") == 1
        assert new_state.parity("c") is Parity.ODD

    def test_odd_parity_reverses_initial_out_neighbours(self, bad_chain):
        automaton = NewPartialReversal(bad_chain)
        state = automaton.initial_state()
        # node 4 (initial sink, in_nbrs={3}, out_nbrs={})
        s1 = automaton.apply(state, Reverse(4))  # reverses {3}: edge 3-4 now 4->3
        # node 3 now is a sink? it has edges 2->3 and 4->3, yes.
        s2 = automaton.apply(s1, Reverse(3))  # parity even: reverses in_nbrs {2}
        assert s2.orientation.points_towards(3, 2)
        # node 4's edge is untouched by node 3's even step
        assert s2.orientation.points_towards(4, 3)

    def test_dummy_step_for_initial_source_like_sink(self):
        # single edge d -> x: x is a sink with in_nbrs={d}, out_nbrs={}
        instance = LinkReversalInstance.from_directed_edges(
            nodes=["d", "x"], destination="d", edges=[("d", "x")]
        )
        automaton = NewPartialReversal(instance)
        state = automaton.initial_state()
        assert not automaton.is_dummy_step(state, "x")
        s1 = automaton.apply(state, Reverse("x"))
        assert s1.orientation.points_towards("x", "d")

    def test_dummy_step_happens_for_initial_sink_with_odd_parity_need(self):
        # y <- x -> ...: make x initially a sink whose out_nbrs is empty is the
        # same as the previous test; instead test a node that is initially a
        # sink and whose first (even) step is the real one, then the graph
        # pushes it to become a sink again, where the odd step reverses
        # out_nbrs which may be empty -> dummy.
        instance = LinkReversalInstance.from_directed_edges(
            nodes=["d", "x", "y"], destination="d", edges=[("d", "x"), ("y", "x")]
        )
        automaton = NewPartialReversal(instance)
        state = automaton.initial_state()
        # x is a sink; even step reverses in_nbrs {d, y}
        s1 = automaton.apply(state, Reverse("x"))
        assert s1.orientation.points_towards("x", "y")
        # y is now a sink with in_nbrs = {} (it was a source initially):
        # its even step is a dummy step
        assert automaton.is_dummy_step(s1, "y")
        s2 = automaton.apply(s1, Reverse("y"))
        assert s2.graph_signature() == s1.graph_signature()
        assert s2.count("y") == 1
        # y is still a sink; now the odd step reverses out_nbrs {x}
        s3 = automaton.apply(s2, Reverse("y"))
        assert s3.orientation.points_towards("y", "x")

    def test_reversal_targets_alternate(self, diamond):
        automaton = NewPartialReversal(diamond)
        state = automaton.initial_state()
        assert automaton.reversal_targets(state, "c") == diamond.in_nbrs("c")
        s1 = automaton.apply(state, Reverse("c"))
        assert automaton.reversal_targets(s1, "c") == diamond.out_nbrs("c")

    def test_count_is_per_node(self, diamond):
        automaton = NewPartialReversal(diamond)
        state = automaton.initial_state()
        s1 = automaton.apply(state, Reverse("c"))
        assert s1.count("c") == 1
        assert s1.count("a") == 0

    def test_apply_disabled_raises(self, diamond):
        automaton = NewPartialReversal(diamond)
        with pytest.raises(TransitionError):
            automaton.apply(automaton.initial_state(), Reverse("a"))

    def test_destination_never_steps(self, good_chain):
        automaton = NewPartialReversal(good_chain)
        state = automaton.initial_state()
        assert not automaton.is_enabled(state, Reverse(0))

    def test_apply_does_not_mutate_input(self, diamond):
        automaton = NewPartialReversal(diamond)
        state = automaton.initial_state()
        signature = state.signature()
        automaton.apply(state, Reverse("c"))
        assert state.signature() == signature


class TestConvergence:
    @pytest.mark.parametrize(
        "scheduler_factory",
        [GreedyScheduler, SequentialScheduler, lambda: RandomScheduler(seed=5)],
    )
    def test_converges(self, bad_chain, scheduler_factory):
        automaton = NewPartialReversal(bad_chain)
        result = run(automaton, scheduler_factory())
        assert result.converged
        assert result.final_state.is_destination_oriented()

    def test_grid_converges(self, bad_grid):
        result = run(NewPartialReversal(bad_grid), GreedyScheduler())
        assert result.converged
        assert result.final_state.is_destination_oriented()

    def test_random_dag_converges_and_stays_acyclic(self, random_dag):
        automaton = NewPartialReversal(random_dag)
        result = run(automaton, RandomScheduler(seed=2))
        assert result.converged
        assert all(state.is_acyclic() for state in result.execution.states)

    def test_dummy_steps_do_not_prevent_termination(self):
        # star with destination at the centre: all leaves are initial sinks
        from repro.topology.generators import star_instance

        instance = star_instance(6, destination_is_center=True)
        result = run(NewPartialReversal(instance), SequentialScheduler())
        assert result.converged
        assert result.final_state.is_destination_oriented()

    def test_total_steps_counts_all_nodes(self, bad_chain):
        automaton = NewPartialReversal(bad_chain)
        result = run(automaton, SequentialScheduler())
        assert result.final_state.total_steps() == result.steps_taken


class TestStateProtocol:
    def test_signature_includes_counts(self, diamond):
        automaton = NewPartialReversal(diamond)
        s0 = automaton.initial_state()
        s1 = automaton.apply(s0, Reverse("c"))
        assert s0.signature() != s1.signature()

    def test_copy_independent(self, diamond):
        state = NewPartialReversal(diamond).initial_state()
        clone = state.copy()
        clone.counts["c"] = 5
        assert state.count("c") == 0

    def test_equality(self, diamond):
        automaton = NewPartialReversal(diamond)
        assert automaton.initial_state() == automaton.initial_state()
