"""Unit tests for the TORA protocol (reference levels, maintenance, partition detection)."""

from __future__ import annotations

import pytest

from repro.routing.tora import ReferenceLevel, ToraHeight, ToraRouter
from repro.topology.generators import (
    chain_instance,
    grid_instance,
    random_dag_instance,
    worst_case_chain_instance,
)


class TestHeights:
    def test_reference_level_order(self):
        assert ReferenceLevel(1, 0, 0) > ReferenceLevel(0, 5, 1)
        assert ReferenceLevel(1, 2, 1) > ReferenceLevel(1, 2, 0)

    def test_reflection(self):
        level = ReferenceLevel(3, 2, 0)
        assert level.reflected() == ReferenceLevel(3, 2, 1)

    def test_height_order_lexicographic(self):
        zero = ToraHeight.zero(0)
        routed = ToraHeight(ReferenceLevel.zero(), 2, 5)
        raised = ToraHeight(ReferenceLevel(1, 4, 0), 0, 4)
        assert zero < routed < raised

    def test_zero_level(self):
        assert ReferenceLevel.zero() == ReferenceLevel(0, 0, 0)


class TestRouteCreation:
    def test_auto_create_routes_everyone(self, small_grid):
        router = ToraRouter(small_grid)
        assert router.routed_fraction() == 1.0
        assert router.is_acyclic()

    def test_destination_height_is_zero(self, small_grid):
        router = ToraRouter(small_grid)
        height = router.height_of(small_grid.destination)
        assert height.level == ReferenceLevel.zero()
        assert height.delta == 0

    def test_deltas_follow_bfs_distance(self, good_chain):
        router = ToraRouter(good_chain)
        for node in good_chain.nodes:
            assert router.height_of(node).delta == node  # chain node id == hop distance

    def test_on_demand_creation(self, small_grid):
        router = ToraRouter(small_grid, auto_create=False)
        assert router.routed_fraction() < 1.0
        assigned = router.create_route(for_nodes=[8])
        assert assigned > 0
        assert router.has_route(8)

    def test_routes_follow_decreasing_heights(self, small_grid):
        router = ToraRouter(small_grid)
        route = router.route(8)
        assert route[0] == 8 and route[-1] == small_grid.destination
        heights = [router.height_of(u) for u in route]
        assert all(a > b for a, b in zip(heights, heights[1:]))

    def test_every_node_has_route_on_random_dag(self):
        instance = random_dag_instance(30, edge_probability=0.12, seed=4)
        router = ToraRouter(instance)
        assert router.routed_fraction() == 1.0


class TestRouteMaintenance:
    def test_single_failure_recovers_on_grid(self, small_grid):
        router = ToraRouter(small_grid)
        router.fail_link(1, 0)
        assert router.routed_fraction() == 1.0
        assert router.is_acyclic()
        assert router.reference_levels_created >= 1

    def test_failure_not_on_routes_needs_no_maintenance(self, small_grid):
        router = ToraRouter(small_grid)
        before = router.maintenance_steps
        # the link 7-8 is not the last downstream link of either endpoint
        router.fail_link(8, 7)
        assert router.routed_fraction() == 1.0
        assert router.maintenance_steps - before <= 2

    def test_sequence_of_failures(self):
        instance = grid_instance(4, 4, oriented_towards_destination=True)
        router = ToraRouter(instance)
        for link in [(1, 0), (5, 1), (6, 2), (9, 8)]:
            router.fail_link(*link)
            assert router.is_acyclic()
        assert router.routed_fraction() == 1.0

    def test_unknown_link_rejected(self, small_grid):
        router = ToraRouter(small_grid)
        with pytest.raises(ValueError):
            router.fail_link(0, 8)

    def test_maintenance_counts_accumulate(self, small_grid):
        router = ToraRouter(small_grid)
        router.fail_link(1, 0)
        summary = router.summary()
        assert summary["maintenance_steps"] >= 1
        assert summary["routed_fraction"] == 1.0

    def test_heights_stay_distinct(self, small_grid):
        router = ToraRouter(small_grid)
        for link in [(1, 0), (4, 3), (7, 6)]:
            router.fail_link(*link)
        non_null = [h for h in router.heights.values() if h is not None]
        assert len(set(non_null)) == len(non_null)


class TestPartitionDetection:
    def test_partition_is_detected_and_routes_erased(self):
        instance = chain_instance(6, towards_destination=True)
        router = ToraRouter(instance)
        router.fail_link(1, 0)  # cuts every other node off the destination
        summary = router.summary()
        assert summary["partitions_detected"] >= 1
        assert summary["routed_fraction"] == pytest.approx(1 / 6)
        assert all(
            router.height_of(u) is None for u in instance.nodes if u != instance.destination
        )

    def test_no_route_after_partition(self):
        instance = chain_instance(5, towards_destination=True)
        router = ToraRouter(instance)
        router.fail_link(1, 0)
        assert not router.has_route(4)
        assert router.route(4) == ()

    def test_destination_isolation_detected(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        router = ToraRouter(instance)
        router.fail_link(1, 0)
        router.fail_link(3, 0)  # destination corner now isolated
        assert router.partitions_detected >= 1
        assert router.routed_fraction() == pytest.approx(1 / 9)

    def test_restore_link_rebuilds_routes(self):
        instance = chain_instance(6, towards_destination=True)
        router = ToraRouter(instance)
        router.fail_link(1, 0)
        assert router.routed_fraction() < 1.0
        router.restore_link(1, 0)
        assert router.routed_fraction() == 1.0
        assert router.is_acyclic()

    def test_restore_unknown_edge_rejected(self, small_grid):
        router = ToraRouter(small_grid)
        with pytest.raises(ValueError):
            router.restore_link(0, 8)

    def test_maintenance_work_stays_bounded_without_partition(self):
        """Unlike plain GB reversal, TORA terminates even when cut off (via CLR)."""
        instance = worst_case_chain_instance(10)
        router = ToraRouter(instance)
        # cutting in the middle partitions nodes 6..10 from the destination
        router.fail_link(5, 6)
        summary = router.summary()
        assert summary["partitions_detected"] >= 1
        # the surviving half keeps its routes
        assert all(router.has_route(u) for u in range(0, 6))
        assert not any(router.has_route(u) for u in range(6, 11))
