"""Unit tests for DOT export and JSON serialisation."""

from __future__ import annotations

import json

import pytest

from repro.automata.executions import run, replay
from repro.core.bll import BinaryLinkLabels
from repro.core.full_reversal import FullReversal
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.core.base import Reverse
from repro.io.dot import orientation_to_dot, render_ascii, to_dot
from repro.io.serialization import (
    SerializationError,
    execution_from_dict,
    execution_to_dict,
    instance_from_dict,
    instance_to_dict,
)
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.sequential import SequentialScheduler


class TestDot:
    def test_instance_export_contains_all_edges(self, diamond):
        dot = to_dot(diamond)
        assert dot.startswith("digraph")
        for u, v in diamond.initial_edges:
            assert f'"{u}" -> "{v}";' in dot

    def test_destination_is_doublecircle(self, diamond):
        dot = to_dot(diamond)
        assert '"d" [shape=doublecircle];' in dot

    def test_sinks_highlighted(self, diamond):
        dot = orientation_to_dot(diamond.initial_orientation())
        assert "fillcolor" in dot  # node c is a sink and gets the fill style

    def test_no_highlight_when_disabled(self, good_chain):
        dot = orientation_to_dot(good_chain.initial_orientation(), highlight_sinks=False)
        assert "fillcolor" not in dot

    def test_quoting_of_odd_node_names(self):
        from repro.core.graph import LinkReversalInstance

        instance = LinkReversalInstance.from_directed_edges(
            nodes=['node "1"', "n2"], destination="n2", edges=[('node "1"', "n2")]
        )
        dot = to_dot(instance)
        assert "digraph" in dot  # does not crash; quotes are escaped
        assert r"\"1\"" in dot

    def test_render_ascii(self, bad_chain):
        text = render_ascii(bad_chain.initial_orientation())
        assert "destination=0" in text
        assert "sinks={4}" in text


class TestSerialization:
    def test_instance_roundtrip(self, diamond):
        data = instance_to_dict(diamond)
        rebuilt = instance_from_dict(json.loads(json.dumps(data)))
        assert rebuilt.nodes == diamond.nodes
        assert rebuilt.destination == diamond.destination
        assert rebuilt.initial_edges == diamond.initial_edges

    def test_execution_serialisation_fields(self, bad_chain):
        result = run(OneStepPartialReversal(bad_chain), SequentialScheduler())
        data = execution_to_dict(result.execution)
        assert data["automaton"] == "OneStepPR"
        assert data["length"] == result.steps_taken
        assert len(data["actions"]) == result.steps_taken

    def test_execution_serialisation_is_json_compatible(self, bad_chain):
        result = run(OneStepPartialReversal(bad_chain), SequentialScheduler())
        data = execution_to_dict(result.execution)
        json.dumps(data)  # must not raise

    def test_serialized_actions_can_be_replayed(self, bad_chain):
        automaton = OneStepPartialReversal(bad_chain)
        result = run(automaton, SequentialScheduler())
        data = execution_to_dict(result.execution)
        rebuilt_instance = instance_from_dict(data["instance"])
        actions = [Reverse(entry["actors"][0]) for entry in data["actions"]]
        replayed = replay(OneStepPartialReversal(rebuilt_instance), actions)
        assert [list(e) for e in replayed.final_state.directed_edges()] == data["final_edges"]


class TestExecutionFromDict:
    """Replay-based round trip: to_dict ∘ from_dict preserves the execution."""

    @pytest.mark.parametrize("automaton_class", [
        PartialReversal, OneStepPartialReversal, NewPartialReversal,
        FullReversal, BinaryLinkLabels,
    ])
    def test_round_trip_every_automaton(self, bad_chain, automaton_class):
        result = run(automaton_class(bad_chain), GreedyScheduler(seed=0))
        data = json.loads(json.dumps(execution_to_dict(result.execution)))

        rebuilt = execution_from_dict(data)

        assert rebuilt.automaton.name == result.execution.automaton.name
        assert rebuilt.length == result.execution.length
        assert rebuilt.final_state.signature() == result.final_state.signature()
        # the rebuilt execution is a valid execution in its own right
        rebuilt.validate()

    def test_round_trip_preserves_set_actions(self, diamond):
        # PR's greedy schedule fires multi-node reverse(S) actions
        result = run(PartialReversal(diamond), GreedyScheduler(seed=0))
        data = json.loads(json.dumps(execution_to_dict(result.execution)))
        rebuilt = execution_from_dict(data)
        assert [set(a.actors()) for a in rebuilt.actions] == [
            set(a.actors()) for a in result.execution.actions
        ]

    def test_unknown_automaton_rejected(self, bad_chain):
        data = execution_to_dict(run(FullReversal(bad_chain), GreedyScheduler()).execution)
        data["automaton"] = "Dijkstra"
        with pytest.raises(SerializationError):
            execution_from_dict(data)

    def test_tampered_final_edges_rejected(self, bad_chain):
        data = execution_to_dict(run(FullReversal(bad_chain), GreedyScheduler()).execution)
        u, v = data["final_edges"][0]
        data["final_edges"][0] = [v, u]
        with pytest.raises(SerializationError):
            execution_from_dict(data)

    def test_tampered_trace_rejected(self, bad_chain):
        from repro.automata.ioa import TransitionError

        data = execution_to_dict(run(FullReversal(bad_chain), GreedyScheduler()).execution)
        # a truncated trace replays fine but cannot reach the recorded final
        # orientation; an action on the destination is simply never enabled
        truncated = dict(data, actions=data["actions"][:-1])
        with pytest.raises(SerializationError):
            execution_from_dict(truncated)
        bogus = dict(data, actions=[{"actors": [0]}] + data["actions"])
        with pytest.raises((SerializationError, TransitionError)):
            execution_from_dict(bogus)
