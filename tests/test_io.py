"""Unit tests for DOT export and JSON serialisation."""

from __future__ import annotations

import json

import pytest

from repro.automata.executions import run, replay
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.base import Reverse
from repro.io.dot import orientation_to_dot, render_ascii, to_dot
from repro.io.serialization import (
    execution_to_dict,
    instance_from_dict,
    instance_to_dict,
)
from repro.schedulers.sequential import SequentialScheduler


class TestDot:
    def test_instance_export_contains_all_edges(self, diamond):
        dot = to_dot(diamond)
        assert dot.startswith("digraph")
        for u, v in diamond.initial_edges:
            assert f'"{u}" -> "{v}";' in dot

    def test_destination_is_doublecircle(self, diamond):
        dot = to_dot(diamond)
        assert '"d" [shape=doublecircle];' in dot

    def test_sinks_highlighted(self, diamond):
        dot = orientation_to_dot(diamond.initial_orientation())
        assert "fillcolor" in dot  # node c is a sink and gets the fill style

    def test_no_highlight_when_disabled(self, good_chain):
        dot = orientation_to_dot(good_chain.initial_orientation(), highlight_sinks=False)
        assert "fillcolor" not in dot

    def test_quoting_of_odd_node_names(self):
        from repro.core.graph import LinkReversalInstance

        instance = LinkReversalInstance.from_directed_edges(
            nodes=['node "1"', "n2"], destination="n2", edges=[('node "1"', "n2")]
        )
        dot = to_dot(instance)
        assert "digraph" in dot  # does not crash; quotes are escaped
        assert r"\"1\"" in dot

    def test_render_ascii(self, bad_chain):
        text = render_ascii(bad_chain.initial_orientation())
        assert "destination=0" in text
        assert "sinks={4}" in text


class TestSerialization:
    def test_instance_roundtrip(self, diamond):
        data = instance_to_dict(diamond)
        rebuilt = instance_from_dict(json.loads(json.dumps(data)))
        assert rebuilt.nodes == diamond.nodes
        assert rebuilt.destination == diamond.destination
        assert rebuilt.initial_edges == diamond.initial_edges

    def test_execution_serialisation_fields(self, bad_chain):
        result = run(OneStepPartialReversal(bad_chain), SequentialScheduler())
        data = execution_to_dict(result.execution)
        assert data["automaton"] == "OneStepPR"
        assert data["length"] == result.steps_taken
        assert len(data["actions"]) == result.steps_taken

    def test_execution_serialisation_is_json_compatible(self, bad_chain):
        result = run(OneStepPartialReversal(bad_chain), SequentialScheduler())
        data = execution_to_dict(result.execution)
        json.dumps(data)  # must not raise

    def test_serialized_actions_can_be_replayed(self, bad_chain):
        automaton = OneStepPartialReversal(bad_chain)
        result = run(automaton, SequentialScheduler())
        data = execution_to_dict(result.execution)
        rebuilt_instance = instance_from_dict(data["instance"])
        actions = [Reverse(entry["actors"][0]) for entry in data["actions"]]
        replayed = replay(OneStepPartialReversal(rebuilt_instance), actions)
        assert [list(e) for e in replayed.final_state.directed_edges()] == data["final_edges"]
