"""Tests for the scenario runner and the sharded campaign executor."""

from __future__ import annotations

import pytest

from repro.experiments.executor import CRASH_SENTINEL, run_campaign
from repro.experiments.runner import execute_scenario
from repro.experiments.spec import CampaignSpec, ScenarioSpec, derive_seed
from repro.experiments.store import ResultStore


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        family="chain", size=6, algorithm="pr", scheduler="greedy",
        topology_seed=derive_seed("t"), scheduler_seed=derive_seed("s"),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestExecuteScenario:
    def test_basic_run_record(self):
        record = execute_scenario(_spec())
        assert record["status"] == "ok"
        assert record["node_steps"] > 0
        assert record["converged"] is True
        assert record["destination_oriented"] is True
        assert record["acyclic_final"] is True
        assert record["rounds"] >= 1
        assert record["nodes"] == 6
        assert record["run_id"] == _spec().run_id

    def test_deterministic_given_spec(self):
        spec = _spec(family="random-dag", size=12, scheduler="random").to_dict()
        first = execute_scenario(dict(spec))
        second = execute_scenario(dict(spec))
        volatile = ("wall_time_s",)
        assert {k: v for k, v in first.items() if k not in volatile} == {
            k: v for k, v in second.items() if k not in volatile
        }

    def test_invalid_spec_is_error_record_not_exception(self):
        record = execute_scenario(dict(_spec().to_dict(), algorithm="nope"))
        assert record["status"] == "error"
        assert "nope" in record["error"]

    def test_timeout_recorded(self):
        record = execute_scenario(_spec(family="chain", size=60), timeout_s=0.0)
        assert record["status"] == "timeout"

    def test_link_failures_applied_on_robust_topology(self):
        record = execute_scenario(
            _spec(family="grid", size=16, failure_model="link-failures", failure_count=3)
        )
        assert record["status"] == "ok"
        assert record["failures_applied"] + record["partition_skips"] == 3
        assert record["failures_applied"] >= 1
        assert record["acyclic_final"] is True
        assert record["destination_oriented"] is True

    def test_link_failures_on_chain_all_skipped(self):
        # removing any chain link partitions the graph, so every failure is skipped
        record = execute_scenario(
            _spec(failure_model="link-failures", failure_count=2)
        )
        assert record["status"] == "ok"
        assert record["failures_applied"] == 0
        assert record["partition_skips"] == 2

    def test_truncated_churn_run_not_marked_converged(self):
        # the initial convergence hits max_steps, so even though every
        # injected failure is partition-skipped the record must say
        # converged=False (regression: churn phases used to reset the flag)
        record = execute_scenario(_spec(
            family="chain", size=12, algorithm="fr",
            failure_model="link-failures", failure_count=3, max_steps=2,
        ))
        assert record["status"] == "ok"
        assert record["converged"] is False
        assert record["destination_oriented"] is False

    def test_mobility_churn(self):
        record = execute_scenario(
            _spec(family="geometric", size=12, failure_model="mobility", failure_count=5)
        )
        assert record["status"] == "ok"
        assert record["failures_applied"] + record["partition_skips"] <= 5
        assert record["acyclic_final"] is True

    @pytest.mark.parametrize("algorithm", ["pr", "onestep-pr", "new-pr", "fr", "bll"])
    def test_every_algorithm_executes(self, algorithm):
        record = execute_scenario(_spec(algorithm=algorithm, family="random-dag", size=8))
        assert record["status"] == "ok"
        assert record["destination_oriented"] is True


class TestRunCampaign:
    def _campaign(self, **overrides) -> CampaignSpec:
        base = dict(
            name="t", families=("chain", "random-dag"), algorithms=("pr", "fr"),
            schedulers=("greedy",), sizes=(4, 6), replicates=2,
        )
        base.update(overrides)
        return CampaignSpec(**base)

    def test_inline_campaign(self, tmp_path):
        store = ResultStore(tmp_path)
        report = run_campaign(self._campaign(), store, workers=1)
        assert report.total == report.executed == report.ok == 16
        assert store.count() == 16
        assert store.load_campaign()["name"] == "t"

    def test_resume_skips_stored_runs(self, tmp_path):
        store = ResultStore(tmp_path)
        partial = self._campaign(sizes=(4,))
        run_campaign(partial, store, workers=1)
        report = run_campaign(self._campaign(), store, workers=1)
        assert report.skipped == 8
        assert report.executed == 8
        assert store.count() == 16

    def test_no_resume_reexecutes(self, tmp_path):
        store = ResultStore(tmp_path)
        run_campaign(self._campaign(), store, workers=1)
        report = run_campaign(self._campaign(), store, workers=1, resume=False)
        assert report.skipped == 0
        assert report.executed == 16
        assert store.count() == 16  # run_ids are primary keys: replaced, not duplicated

    def test_pooled_matches_inline(self, tmp_path):
        inline_store = ResultStore(tmp_path / "inline")
        pooled_store = ResultStore(tmp_path / "pooled")
        campaign = self._campaign(schedulers=("greedy", "random"))
        run_campaign(campaign, inline_store, workers=1)
        report = run_campaign(campaign, pooled_store, workers=2, chunk_size=3)
        assert report.ok == report.executed == 32

        volatile = ("wall_time_s",)
        inline_records = {
            r["run_id"]: {k: v for k, v in r.items() if k not in volatile}
            for r in inline_store.records()
        }
        pooled_records = {
            r["run_id"]: {k: v for k, v in r.items() if k not in volatile}
            for r in pooled_store.records()
        }
        assert inline_records == pooled_records

    def test_worker_crash_is_isolated(self, tmp_path):
        store = ResultStore(tmp_path)
        campaign = self._campaign(algorithms=("pr", CRASH_SENTINEL), sizes=(4,))
        report = run_campaign(campaign, store, workers=2, chunk_size=1)
        assert report.crashed == 4  # every __crash__ run, and only those
        assert report.ok == 4
        crashed = store.records(status="crashed")
        assert {r["algorithm"] for r in crashed} == {CRASH_SENTINEL}
        assert all(r["status"] == "ok" for r in store.records(algorithm="pr"))

    def test_campaign_interruption_then_resume(self, tmp_path):
        # simulate an interrupted campaign by storing only the first shard's
        # worth of records, then resuming
        store = ResultStore(tmp_path)
        campaign = self._campaign()
        specs = [s.to_dict() for s in campaign.expand()]
        from repro.experiments.runner import run_scenarios

        store.append(run_scenarios(specs[:5]))
        report = run_campaign(campaign, store, workers=1)
        assert report.skipped == 5
        assert report.executed == len(specs) - 5
        assert store.count() == len(specs)

    def test_progress_callback(self, tmp_path):
        seen = []
        run_campaign(
            self._campaign(sizes=(4,)), ResultStore(tmp_path), workers=1,
            chunk_size=2, progress=lambda done, total: seen.append((done, total)),
        )
        assert seen[-1] == (8, 8)
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)

    def test_per_run_timeout_in_campaign(self, tmp_path):
        store = ResultStore(tmp_path)
        campaign = self._campaign(families=("chain",), sizes=(80,), algorithms=("fr",),
                                  replicates=1)
        report = run_campaign(campaign, store, workers=1, timeout_s=0.0)
        assert report.timeouts == 1
        assert store.records()[0]["status"] == "timeout"
