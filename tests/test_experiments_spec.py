"""Unit tests for the campaign / scenario specification layer."""

from __future__ import annotations

import json

import pytest

from repro.experiments.spec import (
    ALGORITHM_FACTORIES,
    CampaignSpec,
    ScenarioSpec,
    derive_seed,
)
from repro.schedulers import SCHEDULER_FACTORIES
from repro.topology.generators import FAMILY_NAMES


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        family="chain", size=6, algorithm="pr", scheduler="greedy",
        topology_seed=1, scheduler_seed=2,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(0, "topology", "chain", 10, 0) == derive_seed(
            0, "topology", "chain", 10, 0
        )

    def test_sensitive_to_every_component(self):
        base = derive_seed(0, "a", "b")
        assert derive_seed(1, "a", "b") != base
        assert derive_seed(0, "a", "c") != base
        assert derive_seed(0, "a") != base

    def test_component_boundaries_not_confusable(self):
        # ("ab", "c") must not collide with ("a", "bc")
        assert derive_seed("ab", "c") != derive_seed("a", "bc")

    def test_non_negative_63_bit(self):
        for i in range(50):
            seed = derive_seed("x", i)
            assert 0 <= seed < 2 ** 63


class TestScenarioSpec:
    def test_run_id_is_stable_and_identity_based(self):
        assert _spec().run_id == _spec().run_id
        assert _spec().run_id != _spec(size=7).run_id
        assert _spec().run_id != _spec(algorithm="fr").run_id
        assert _spec().run_id != _spec(scheduler_seed=3).run_id

    def test_run_id_ignores_campaign_label(self):
        assert _spec(campaign="a").run_id == _spec(campaign="b").run_id

    def test_dict_round_trip(self):
        spec = _spec(failure_model="link-failures", failure_count=2, max_steps=99)
        data = json.loads(json.dumps(spec.to_dict()))
        rebuilt = ScenarioSpec.from_dict(data)
        assert rebuilt == spec
        assert rebuilt.run_id == data["run_id"]

    @pytest.mark.parametrize("bad", [
        dict(family="moebius"),
        dict(algorithm="dijkstra"),
        dict(scheduler="fifo"),
        dict(failure_model="asteroid"),
        dict(failure_model="mobility"),  # only valid on the geometric family
        dict(size=1),
        dict(failure_count=-1),
    ])
    def test_validate_rejects_bad_axes(self, bad):
        with pytest.raises(ValueError):
            _spec(**bad).validate()

    def test_mobility_valid_on_geometric(self):
        _spec(family="geometric", failure_model="mobility", failure_count=2).validate()


class TestCampaignSpec:
    def test_expansion_is_deterministic(self):
        campaign = CampaignSpec(
            families=("chain", "grid"), algorithms=("pr", "fr"),
            schedulers=("greedy", "random"), sizes=(4, 8), replicates=2,
        )
        first = campaign.expand()
        second = campaign.expand()
        assert first == second
        assert [s.run_id for s in first] == [s.run_id for s in second]

    def test_run_count_matches_expansion(self):
        campaign = CampaignSpec(
            families=("chain", "geometric"), algorithms=("pr",),
            sizes=(5, 8), replicates=2,
            failure_models=[("none", 0), ("mobility", 3)],
        )
        runs = campaign.expand()
        # mobility applies to the geometric family only: chain gets 1 failure
        # model, geometric 2 → 3 family×model cells × 2 sizes × 2 replicates
        assert len(runs) == campaign.run_count == 3 * 2 * 2
        assert len({s.run_id for s in runs}) == len(runs)

    def test_topology_seed_shared_across_algorithms(self):
        campaign = CampaignSpec(algorithms=("pr", "fr", "bll"), replicates=2)
        runs = campaign.expand()
        by_replicate = {}
        for spec in runs:
            by_replicate.setdefault(spec.replicate, set()).add(spec.topology_seed)
        # one topology per replicate, shared by every algorithm (paired runs)
        for seeds in by_replicate.values():
            assert len(seeds) == 1
        assert by_replicate[0] != by_replicate[1]

    def test_scheduler_seeds_independent_per_algorithm(self):
        campaign = CampaignSpec(algorithms=("pr", "fr", "bll"), schedulers=("random",))
        seeds = [spec.scheduler_seed for spec in campaign.expand()]
        assert len(set(seeds)) == len(seeds)

    def test_base_seed_changes_everything(self):
        a = CampaignSpec(base_seed=0).expand()
        b = CampaignSpec(base_seed=1).expand()
        assert {s.run_id for s in a}.isdisjoint({s.run_id for s in b})

    def test_dict_round_trip(self):
        campaign = CampaignSpec(
            name="x", families=("grid",), algorithms=("new-pr",),
            sizes=(9,), replicates=3, base_seed=5,
            failure_models=[("link-failures", 2)], max_steps=1000,
        )
        rebuilt = CampaignSpec.from_dict(json.loads(json.dumps(campaign.to_dict())))
        assert rebuilt.expand() == campaign.expand()

    def test_registries_cover_defaults(self):
        campaign = CampaignSpec(
            families=FAMILY_NAMES,
            algorithms=tuple(ALGORITHM_FACTORIES),
            schedulers=tuple(SCHEDULER_FACTORIES),
            sizes=(4,),
        )
        for spec in campaign.expand():
            spec.validate()
