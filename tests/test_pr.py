"""Unit tests for the original Partial Reversal automaton (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.automata.executions import run
from repro.automata.ioa import TransitionError
from repro.core.base import Reverse
from repro.core.pr import PartialReversal, PRState, ReverseSet
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.sequential import SequentialScheduler
from repro.schedulers.random_scheduler import RandomScheduler


class TestReverseSetAction:
    def test_requires_non_empty(self):
        with pytest.raises(ValueError):
            ReverseSet(frozenset())

    def test_actors_sorted(self):
        action = ReverseSet(frozenset({3, 1, 2}))
        assert action.actors() == (1, 2, 3)

    def test_coerces_iterable_to_frozenset(self):
        action = ReverseSet({1, 2})
        assert isinstance(action.nodes, frozenset)

    def test_hashable(self):
        assert hash(ReverseSet(frozenset({1}))) == hash(ReverseSet(frozenset({1})))


class TestInitialState:
    def test_initial_lists_empty(self, diamond):
        state = PartialReversal(diamond).initial_state()
        for node in diamond.nodes:
            assert state.list_of(node) == frozenset()

    def test_initial_orientation_matches_instance(self, diamond):
        state = PartialReversal(diamond).initial_state()
        assert set(state.directed_edges()) == set(diamond.initial_edges)

    def test_rejects_cyclic_initial_graph(self):
        from repro.core.graph import LinkReversalInstance

        cyclic = LinkReversalInstance(
            nodes=(0, 1, 2), destination=0, initial_edges=((0, 1), (1, 2), (2, 0))
        )
        with pytest.raises(Exception):
            PartialReversal(cyclic)


class TestEnabledActions:
    def test_only_sinks_enabled(self, diamond):
        automaton = PartialReversal(diamond)
        state = automaton.initial_state()
        singles = list(automaton.enabled_single_actions(state))
        assert singles == [ReverseSet(frozenset({"c"}))]

    def test_subsets_enumerated(self, bad_grid):
        automaton = PartialReversal(bad_grid)
        state = automaton.initial_state()
        sinks = state.sinks()
        actions = list(automaton.enabled_actions(state))
        assert len(actions) == 2 ** len(sinks) - 1

    def test_destination_never_enabled(self, good_chain):
        automaton = PartialReversal(good_chain)
        state = automaton.initial_state()
        assert not automaton.is_enabled(state, ReverseSet(frozenset({0})))

    def test_non_sink_not_enabled(self, diamond):
        automaton = PartialReversal(diamond)
        state = automaton.initial_state()
        assert not automaton.is_enabled(state, ReverseSet(frozenset({"a"})))

    def test_greedy_action_is_all_sinks(self, bad_grid):
        automaton = PartialReversal(bad_grid)
        state = automaton.initial_state()
        action = automaton.greedy_action(state)
        assert action.nodes == frozenset(state.sinks())

    def test_greedy_action_none_when_quiescent(self, good_chain):
        automaton = PartialReversal(good_chain)
        assert automaton.greedy_action(automaton.initial_state()) is None

    def test_reverse_action_accepted_as_singleton(self, diamond):
        automaton = PartialReversal(diamond)
        state = automaton.initial_state()
        assert automaton.is_enabled(state, Reverse("c"))
        new_state = automaton.apply(state, Reverse("c"))
        assert not new_state.is_sink("c")


class TestTransitionSemantics:
    def test_first_step_reverses_all_edges_of_sink_with_empty_list(self, diamond):
        # list[c] is empty != nbrs(c), so c reverses nbrs \ list = both edges
        automaton = PartialReversal(diamond)
        state = automaton.initial_state()
        new_state = automaton.apply(state, ReverseSet(frozenset({"c"})))
        assert new_state.orientation.points_towards("c", "a")
        assert new_state.orientation.points_towards("c", "b")

    def test_neighbours_record_reversal_in_their_lists(self, diamond):
        automaton = PartialReversal(diamond)
        state = automaton.initial_state()
        new_state = automaton.apply(state, ReverseSet(frozenset({"c"})))
        assert "c" in new_state.list_of("a")
        assert "c" in new_state.list_of("b")

    def test_stepping_node_clears_its_list(self, diamond):
        automaton = PartialReversal(diamond)
        state = automaton.initial_state()
        s1 = automaton.apply(state, ReverseSet(frozenset({"c"})))
        # a and b are now sinks (their only other edge comes from d);
        # stepping a leaves list[a] empty again
        s2 = automaton.apply(s1, ReverseSet(frozenset({"a"})))
        assert s2.list_of("a") == frozenset()

    def test_partial_reversal_skips_listed_neighbours(self, diamond):
        automaton = PartialReversal(diamond)
        state = automaton.initial_state()
        s1 = automaton.apply(state, ReverseSet(frozenset({"c"})))
        # a's list contains c, so when a steps it reverses only the edge to d
        s2 = automaton.apply(s1, ReverseSet(frozenset({"a"})))
        assert s2.orientation.points_towards("a", "d")
        assert s2.orientation.points_towards("c", "a")  # untouched

    def test_full_reversal_case_when_list_equals_nbrs(self):
        # Two-node graph d <- x is impossible as a DAG start with x sink twice,
        # so build a path d - x - y: after x and y alternate, x's list becomes
        # equal to its neighbour set and it must reverse everything.
        from repro.core.graph import LinkReversalInstance

        instance = LinkReversalInstance.from_directed_edges(
            nodes=["d", "x"], destination="d", edges=[("d", "x")]
        )
        automaton = PartialReversal(instance)
        state = automaton.initial_state()
        # x is a sink with empty list: reverses its single edge
        s1 = automaton.apply(state, ReverseSet(frozenset({"x"})))
        assert s1.orientation.points_towards("x", "d")
        assert s1.is_destination_oriented()

    def test_apply_disabled_action_raises(self, diamond):
        automaton = PartialReversal(diamond)
        state = automaton.initial_state()
        with pytest.raises(TransitionError):
            automaton.apply(state, ReverseSet(frozenset({"a"})))

    def test_apply_does_not_mutate_input_state(self, diamond):
        automaton = PartialReversal(diamond)
        state = automaton.initial_state()
        before = state.signature()
        automaton.apply(state, ReverseSet(frozenset({"c"})))
        assert state.signature() == before

    def test_concurrent_set_step_equals_sequential_steps(self):
        from repro.topology.generators import star_instance

        instance = star_instance(5, destination_is_center=True)
        automaton = PartialReversal(instance)
        state = automaton.initial_state()
        sinks = state.sinks()
        assert len(sinks) >= 2
        concurrent = automaton.apply(state, ReverseSet(frozenset(sinks)))
        sequential = state
        for node in sinks:
            sequential = automaton.apply(sequential, ReverseSet(frozenset({node})))
        assert concurrent.signature() == sequential.signature()

    def test_reversal_targets_helper(self, diamond):
        automaton = PartialReversal(diamond)
        state = automaton.initial_state()
        assert automaton.reversal_targets(state, "c") == frozenset({"a", "b"})


class TestConvergence:
    @pytest.mark.parametrize("scheduler_factory", [GreedyScheduler, SequentialScheduler,
                                                   lambda: RandomScheduler(seed=3)])
    def test_converges_to_destination_orientation(self, bad_chain, scheduler_factory):
        automaton = PartialReversal(bad_chain)
        result = run(automaton, scheduler_factory())
        assert result.converged
        assert result.final_state.is_destination_oriented()

    def test_already_oriented_graph_needs_no_steps(self, good_chain):
        automaton = PartialReversal(good_chain)
        result = run(automaton, GreedyScheduler())
        assert result.steps_taken == 0
        assert result.converged

    def test_quiescence_iff_no_sinks(self, bad_chain):
        automaton = PartialReversal(bad_chain)
        result = run(automaton, SequentialScheduler())
        assert automaton.is_quiescent(result.final_state)
        assert result.final_state.sinks() == ()

    def test_final_orientation_is_acyclic(self, random_dag):
        automaton = PartialReversal(random_dag)
        result = run(automaton, GreedyScheduler())
        assert result.final_state.is_acyclic()

    def test_random_subset_scheduler_converges(self, bad_grid):
        automaton = PartialReversal(bad_grid)
        result = run(automaton, RandomScheduler(seed=11, subset_probability=0.7))
        assert result.converged
        assert result.final_state.is_destination_oriented()


class TestStateProtocol:
    def test_signature_includes_lists(self, diamond):
        automaton = PartialReversal(diamond)
        s0 = automaton.initial_state()
        s1 = automaton.apply(s0, ReverseSet(frozenset({"c"})))
        s2 = automaton.apply(s1, ReverseSet(frozenset({"a"})))
        s3 = automaton.apply(s2, ReverseSet(frozenset({"b"})))
        # compare two states with the same orientation but different lists
        assert s3.graph_signature() != s0.graph_signature() or s3.signature() != s0.signature()

    def test_copy_independent(self, diamond):
        state = PartialReversal(diamond).initial_state()
        clone = state.copy()
        clone.lists["c"] = frozenset({"a"})
        assert state.list_of("c") == frozenset()

    def test_equality_and_hash(self, diamond):
        automaton = PartialReversal(diamond)
        a = automaton.initial_state()
        b = automaton.initial_state()
        assert a == b
        assert hash(a) == hash(b)
