"""Property-based tests (Hypothesis) for the core invariants of the paper.

These tests generate random connected DAG instances and random schedules, then
assert the paper's claims on every state the executions visit:

* the directed graph stays acyclic for PR, OneStepPR, NewPR and FR
  (Theorems 4.3 and 5.5, plus the folklore FR argument);
* Invariants 3.1/3.2 (PR) and 4.1/4.2 (NewPR) hold in every visited state;
* the simulation relations R' and R hold along every generated PR execution;
* executions always converge, and the final orientation is destination
  oriented and independent of the schedule (confluence).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.automata.executions import run
from repro.core.full_reversal import FullReversal
from repro.core.graph import LinkReversalInstance
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.schedulers.random_scheduler import RandomScheduler
from repro.verification.acyclicity import check_acyclic_execution
from repro.verification.invariants import (
    check_invariant_3_1,
    check_invariant_3_2,
    check_invariant_4_1,
    check_invariant_4_2,
)
from repro.verification.simulation import check_full_simulation_chain


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def connected_dag_instances(draw, min_nodes: int = 2, max_nodes: int = 8):
    """A random connected DAG instance with node 0 as the destination.

    Edges are directed from the lower to the higher node index, which makes
    the orientation acyclic by construction; a spanning path guarantees
    connectivity.
    """
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    nodes = tuple(range(n))
    edges = set()
    # spanning path for connectivity
    for u in range(n - 1):
        edges.add((u, u + 1))
    # optional extra forward edges
    candidates = [(u, v) for u in range(n) for v in range(u + 1, n) if (u, v) not in edges]
    if candidates:
        extra = draw(st.lists(st.sampled_from(candidates), unique=True, max_size=len(candidates)))
        edges.update(extra)
    # optionally flip a subset of edges while keeping acyclicity: flipping any
    # subset of edges of a total order can create cycles, so instead we draw a
    # random permutation rank and direct each edge along it.
    permutation = draw(st.permutations(list(nodes)))
    rank = {node: index for index, node in enumerate(permutation)}
    directed = tuple(
        (u, v) if rank[u] < rank[v] else (v, u) for (u, v) in sorted(edges)
    )
    return LinkReversalInstance(nodes, 0, directed)


schedule_seeds = st.integers(min_value=0, max_value=2 ** 16)

COMMON_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# acyclicity (Theorems 4.3 / 5.5 and the FR argument)
# ----------------------------------------------------------------------
@given(instance=connected_dag_instances(), seed=schedule_seeds)
@settings(**COMMON_SETTINGS)
def test_newpr_acyclic_in_every_visited_state(instance, seed):
    result = run(NewPartialReversal(instance), RandomScheduler(seed=seed))
    assert result.converged
    assert check_acyclic_execution(result.execution).holds


@given(instance=connected_dag_instances(), seed=schedule_seeds)
@settings(**COMMON_SETTINGS)
def test_pr_acyclic_in_every_visited_state(instance, seed):
    result = run(
        PartialReversal(instance), RandomScheduler(seed=seed, subset_probability=0.5)
    )
    assert result.converged
    assert check_acyclic_execution(result.execution).holds


@given(instance=connected_dag_instances(), seed=schedule_seeds)
@settings(**COMMON_SETTINGS)
def test_fr_acyclic_in_every_visited_state(instance, seed):
    result = run(FullReversal(instance), RandomScheduler(seed=seed))
    assert result.converged
    assert check_acyclic_execution(result.execution).holds


# ----------------------------------------------------------------------
# invariants
# ----------------------------------------------------------------------
@given(instance=connected_dag_instances(), seed=schedule_seeds)
@settings(**COMMON_SETTINGS)
def test_pr_invariants_hold_in_every_visited_state(instance, seed):
    result = run(OneStepPartialReversal(instance), RandomScheduler(seed=seed))
    for state in result.execution.states:
        assert check_invariant_3_1(state).holds
        assert check_invariant_3_2(state).holds


@given(instance=connected_dag_instances(), seed=schedule_seeds)
@settings(**COMMON_SETTINGS)
def test_newpr_invariants_hold_in_every_visited_state(instance, seed):
    result = run(NewPartialReversal(instance), RandomScheduler(seed=seed))
    for state in result.execution.states:
        assert check_invariant_4_1(state).holds
        assert check_invariant_4_2(state).holds


# ----------------------------------------------------------------------
# simulation relations (Section 5)
# ----------------------------------------------------------------------
@given(instance=connected_dag_instances(max_nodes=7), seed=schedule_seeds)
@settings(**COMMON_SETTINGS)
def test_simulation_chain_holds_for_random_pr_executions(instance, seed):
    result = run(
        PartialReversal(instance), RandomScheduler(seed=seed, subset_probability=0.4)
    )
    chain = check_full_simulation_chain(result.execution)
    assert chain.holds


# ----------------------------------------------------------------------
# convergence and confluence
# ----------------------------------------------------------------------
@given(instance=connected_dag_instances(), seed=schedule_seeds)
@settings(**COMMON_SETTINGS)
def test_all_algorithms_converge_to_destination_orientation(instance, seed):
    for automaton_class in (PartialReversal, NewPartialReversal, FullReversal):
        result = run(automaton_class(instance), RandomScheduler(seed=seed))
        assert result.converged
        assert result.final_state.is_destination_oriented()


@given(instance=connected_dag_instances(max_nodes=7), seed_a=schedule_seeds, seed_b=schedule_seeds)
@settings(**COMMON_SETTINGS)
def test_final_orientation_is_schedule_independent(instance, seed_a, seed_b):
    result_a = run(OneStepPartialReversal(instance), RandomScheduler(seed=seed_a))
    result_b = run(OneStepPartialReversal(instance), RandomScheduler(seed=seed_b))
    assert result_a.final_state.graph_signature() == result_b.final_state.graph_signature()


@given(instance=connected_dag_instances(max_nodes=7), seed_a=schedule_seeds, seed_b=schedule_seeds)
@settings(**COMMON_SETTINGS)
def test_work_is_schedule_independent_for_pr(instance, seed_a, seed_b):
    result_a = run(OneStepPartialReversal(instance), RandomScheduler(seed=seed_a))
    result_b = run(OneStepPartialReversal(instance), RandomScheduler(seed=seed_b))
    assert result_a.steps_taken == result_b.steps_taken


# ----------------------------------------------------------------------
# graph substrate properties
# ----------------------------------------------------------------------
@given(instance=connected_dag_instances())
@settings(**COMMON_SETTINGS)
def test_generated_instances_satisfy_system_model(instance):
    assert instance.is_initially_acyclic()
    assert instance.is_connected()
    for u in instance.nodes:
        assert instance.nbrs(u) == instance.in_nbrs(u) | instance.out_nbrs(u)
        assert not (instance.in_nbrs(u) & instance.out_nbrs(u))


@given(instance=connected_dag_instances(), seed=schedule_seeds)
@settings(**COMMON_SETTINGS)
def test_orientation_reverse_is_involution(instance, seed):
    import random as _random

    orientation = instance.initial_orientation()
    rng = _random.Random(seed)
    edges = list(instance.initial_edges)
    chosen = rng.sample(edges, k=min(3, len(edges)))
    before = orientation.signature()
    for u, v in chosen:
        orientation.reverse_edge(u, v)
        orientation.reverse_edge(u, v)
    assert orientation.signature() == before
