"""Tests for the telemetry layer: metrics, spans, sidecars and the trace CLI.

Covers the tentpole contract: registry merges are deterministic across
worker counts, the sidecar round-trips through ``io.serialization``, the
disabled path writes nothing, and ``repro trace`` renders a stored sweep.
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.cli import main
from repro.experiments.executor import CampaignReport, run_campaign
from repro.experiments.runner import kernel_cache_stats
from repro.experiments.spec import CampaignSpec
from repro.experiments.store import ResultStore
from repro.io.serialization import (
    SerializationError,
    telemetry_event_from_dict,
    telemetry_events_to_jsonl,
)
from repro.telemetry.metrics import (
    ENGINE_METRICS,
    NULL_REGISTRY,
    MetricsRegistry,
)
from repro.telemetry.spans import NULL_TRACER, SpanTracer
from repro.telemetry.trace import (
    check_span_nesting,
    summarise_telemetry,
    top_spans,
)


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 4)
        registry.set_gauge("depth", 2.0)
        registry.max_gauge("depth", 7.0)
        registry.max_gauge("depth", 3.0)  # lower value does not win
        registry.observe("wall", 0.5)
        registry.observe("wall", 1.5)

        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"hits": 5}
        assert snapshot["gauges"] == {"depth": 7.0}
        wall = snapshot["histograms"]["wall"]
        assert wall["count"] == 2
        assert wall["min"] == 0.5
        assert wall["max"] == 1.5
        assert wall["mean"] == pytest.approx(1.0)

    def test_handles_are_memoised(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_merge_is_associative_on_all_instrument_kinds(self):
        # split one workload across two registries: the merged snapshot must
        # equal the single-registry run (the 2-worker == 1-worker guarantee)
        whole = MetricsRegistry()
        part_a = MetricsRegistry()
        part_b = MetricsRegistry()
        for i in range(10):
            target = part_a if i % 2 else part_b
            for registry in (whole, target):
                registry.inc("runs")
                registry.max_gauge("peak", float(i))
                registry.observe("wall", float(i))  # integer-exact sums

        merged = MetricsRegistry()
        merged.merge(part_a.snapshot())
        merged.merge(part_b.snapshot())
        assert merged.snapshot() == whole.snapshot()

    def test_clear_empties_the_registry(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.clear()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_null_registry_records_nothing(self):
        NULL_REGISTRY.inc("a")
        NULL_REGISTRY.max_gauge("b", 1.0)
        NULL_REGISTRY.observe("c", 1.0)
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestSpanTracer:
    def test_nesting_depth_and_parents(self):
        events = []
        tracer = SpanTracer(sink=events.extend, batch_size=1)
        with tracer.span("outer"):
            with tracer.span("inner", detail=1):
                pass
        tracer.flush()
        by_name = {event["name"]: event for event in events}
        inner, outer = by_name["inner"], by_name["outer"]
        assert outer["depth"] == 0 and outer["parent_id"] is None
        assert inner["depth"] == 1 and inner["parent_id"] == outer["span_id"]
        assert inner["attrs"] == {"detail": 1}
        assert check_span_nesting(events) == []

    def test_sink_receives_batches(self):
        batches = []
        tracer = SpanTracer(sink=batches.append, batch_size=3)
        for i in range(7):
            tracer.event("tick", i=i)
        tracer.flush()
        assert [len(batch) for batch in batches] == [3, 3, 1]

    def test_emit_span_nests_under_open_span(self):
        events = []
        tracer = SpanTracer(sink=events.extend)
        with tracer.span("campaign"):
            tracer.emit_span("chunk", t_start=tracer.now(), dur_s=0.0, runs=2)
        tracer.flush()
        chunk = next(e for e in events if e["name"] == "chunk")
        campaign = next(e for e in events if e["name"] == "campaign")
        assert chunk["parent_id"] == campaign["span_id"]
        assert chunk["depth"] == 1

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", x=1):
            NULL_TRACER.event("nothing")
        assert NULL_TRACER.drain() == []


class TestSessionGlobals:
    def test_disabled_by_default(self):
        assert telemetry.ENABLED is False
        assert telemetry.REGISTRY is telemetry.NULL_REGISTRY
        assert telemetry.TRACER is telemetry.NULL_TRACER

    def test_session_activates_and_restores(self):
        with telemetry.session() as (registry, tracer):
            assert telemetry.ENABLED is True
            assert telemetry.REGISTRY is registry
            assert telemetry.TRACER is tracer
        assert telemetry.ENABLED is False
        assert telemetry.REGISTRY is telemetry.NULL_REGISTRY

    def test_session_flushes_sink_on_exit(self):
        batches = []
        with telemetry.session(sink=batches.append) as (_, tracer):
            tracer.event("one")
        assert sum(len(batch) for batch in batches) == 1


class TestSidecarSerialization:
    def test_round_trip_through_jsonl(self):
        events = []
        tracer = SpanTracer(sink=events.extend)
        with tracer.span("campaign", pending=3):
            tracer.event("quarantine_retry", index=0, runs=2)
        tracer.flush()
        events.append({"kind": "scenario", "t": 0.1, "run_id": "r1",
                       "engine": "kernel", "status": "ok", "family": "chain",
                       "algorithm": "pr", "wall_s": 0.01})
        events.append({"kind": "metrics", "t": 0.2, "counters": {"runs": 1},
                       "gauges": {}, "histograms": {}})

        text = telemetry_events_to_jsonl(events)
        parsed = [
            telemetry_event_from_dict(json.loads(line))
            for line in text.splitlines()
        ]
        assert [event["kind"] for event in parsed] == [
            "event", "span", "scenario", "metrics",
        ]

    def test_int_widens_to_float(self):
        event = telemetry_event_from_dict(
            {"kind": "event", "name": "tick", "t": 3, "attrs": {}}
        )
        assert event["t"] == 3.0 and isinstance(event["t"], float)

    @pytest.mark.parametrize("bad", [
        {"kind": "warp", "name": "x"},                              # unknown kind
        {"kind": "event", "t": 0.0, "attrs": {}},                   # missing name
        {"kind": "event", "name": "x", "t": True, "attrs": {}},     # bool as number
        {"kind": "span", "name": "x", "span_id": 1, "parent_id": "root",
         "depth": 0, "t_start": 0.0, "dur_s": 0.0, "attrs": {}},    # bad parent
        "not even a dict",
    ])
    def test_malformed_events_rejected(self, bad):
        with pytest.raises(SerializationError):
            telemetry_event_from_dict(bad)


def _campaign() -> CampaignSpec:
    return CampaignSpec(
        name="tele", families=("chain",), algorithms=("pr", "fr"),
        sizes=(5, 8), replicates=2,
    )


def _final_counters(store: ResultStore) -> dict:
    metrics = [e for e in store.iter_telemetry() if e["kind"] == "metrics"]
    assert metrics, "campaign should snapshot its registry into the sidecar"
    return metrics[-1]["counters"]


class TestCampaignTelemetry:
    def test_worker_merge_is_deterministic(self, tmp_path):
        # the same campaign swept inline and over 2 workers must report
        # identical counter totals: merges only add, never lose
        inline_store = ResultStore(tmp_path / "inline")
        pooled_store = ResultStore(tmp_path / "pooled")
        run_campaign(_campaign(), inline_store, workers=1)
        run_campaign(_campaign(), pooled_store, workers=2, chunk_size=2)
        assert _final_counters(inline_store) == _final_counters(pooled_store)

    def test_sidecar_matches_engine_counts(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_campaign(_campaign(), store, workers=2, chunk_size=3)
        scenario_counts: dict = {}
        for event in store.iter_telemetry():
            if event["kind"] == "scenario":
                engine = event.get("engine") or "none"
                scenario_counts[engine] = scenario_counts.get(engine, 0) + 1
        assert scenario_counts == store.engine_counts()

    def test_sidecar_spans_are_well_nested(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_campaign(_campaign(), store, workers=1)
        events = list(store.iter_telemetry())
        assert check_span_nesting(events) == []
        summary = summarise_telemetry(events)
        assert summary["spans"]["campaign"]["count"] == 1
        assert summary["spans"]["chunk"]["count"] >= 1
        assert sum(w["runs"] for w in summary["workers"].values()) == 8

    def test_disabled_writes_no_sidecar(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        report = run_campaign(_campaign(), store, workers=1, telemetry=False)
        assert report.executed == 8
        assert not store.telemetry_path.exists()
        assert telemetry.ENABLED is False  # no leakage into the process

    def test_report_carries_timings(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        report = run_campaign(_campaign(), store, workers=1)
        assert report.execution_wall_s > 0
        assert report.execution_wall_s <= report.wall_time_s
        assert report.cpu_time_s > 0
        assert 0 < report.worker_utilisation <= 1.5  # clock jitter headroom
        payload = report.to_dict()
        assert payload["execution_wall_s"] > 0
        assert "worker_utilisation" in payload

    def test_engine_cache_counters_live_in_shared_registry(self):
        # satellite (a): the compat dicts are views over ENGINE_METRICS
        stats = kernel_cache_stats()
        snapshot = ENGINE_METRICS.snapshot()["counters"]
        for key in ("instance_hits", "kernel_compiles", "batch_outcome_hits"):
            assert key in stats
        assert stats["kernel_compiles"] == snapshot.get("kernel_kernel_compiles", 0)
        assert stats["batch_outcome_hits"] == snapshot.get("batch_outcome_hits", 0)


class TestRunsPerSecond:
    def test_uses_execution_wall_time(self):
        report = CampaignReport(total=10, skipped=0, executed=10)
        report.execution_wall_s = 2.0
        report.wall_time_s = 100.0  # store writes, resume scans, ...
        assert report.runs_per_second == pytest.approx(5.0)

    def test_zero_when_nothing_executed(self):
        report = CampaignReport(total=10, skipped=10, executed=0)
        report.wall_time_s = 1.0
        assert report.runs_per_second == 0.0

    def test_resume_then_report_stays_finite(self, tmp_path):
        # regression: a fully resumed sweep executes nothing, and the stored
        # report must show 0 runs/s, not executed/epsilon garbage
        store = ResultStore(tmp_path / "store")
        run_campaign(_campaign(), store, workers=1)
        resumed = run_campaign(_campaign(), store, workers=1)
        assert resumed.executed == 0
        assert resumed.skipped == 8
        assert resumed.runs_per_second == 0.0
        stored = store.load_report()
        assert stored["executed"] == 0


class TestTraceCli:
    def _sweep(self, store, extra=()):
        return main([
            "sweep", "--families", "chain", "--algorithms", "pr,fr",
            "--sizes", "5,8", "--replicates", "2", "--store", str(store),
            "--quiet", *extra,
        ])

    def test_trace_renders_a_swept_store(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert self._sweep(store, ["--workers", "2"]) == 0
        capsys.readouterr()
        assert main(["trace", str(store)]) == 0
        output = capsys.readouterr().out
        assert "campaign" in output
        assert "kernel" in output
        assert "scenarios.kernel" in output

    def test_trace_json_includes_nesting_check(self, tmp_path, capsys):
        store = tmp_path / "store"
        self._sweep(store)
        capsys.readouterr()
        assert main(["trace", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["nesting_problems"] == []
        assert payload["summary"]["scenarios"]["kernel"]["count"] == 8

    def test_trace_without_sidecar_fails_cleanly(self, tmp_path, capsys):
        store = tmp_path / "store"
        self._sweep(store, ["--no-telemetry"])
        capsys.readouterr()
        assert main(["trace", str(store)]) == 2
        assert "no telemetry sidecar" in capsys.readouterr().err

    def test_report_shows_telemetry_section(self, tmp_path, capsys):
        store = tmp_path / "store"
        self._sweep(store)
        capsys.readouterr()
        assert main(["report", "--store", str(store)]) == 0
        output = capsys.readouterr().out
        assert "## Telemetry" in output
        assert "engine kernel" in output

    def test_top_spans_orders_by_total(self):
        summary = {"spans": {
            "a": {"count": 1, "total_s": 0.1, "max_s": 0.1},
            "b": {"count": 5, "total_s": 0.9, "max_s": 0.3},
        }}
        rows = top_spans(summary, limit=1)
        assert [row["name"] for row in rows] == ["b"]
