"""Integration tests: the paper's claims, end to end.

Each test class corresponds to one headline statement of the paper and checks
it across *all* small instances (exhaustively over graphs and over reachable
states) plus a spot check on a larger instance.  These are the machine-checked
counterparts of the proofs; the per-experiment benchmark harness in
``benchmarks/`` reports the same checks as numbers.
"""

from __future__ import annotations

import pytest

from repro.automata.executions import run
from repro.core.full_reversal import FullReversal
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.exploration.enumerate_graphs import all_connected_dag_instances
from repro.exploration.state_space import explore_and_check
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.random_scheduler import RandomScheduler
from repro.topology.generators import random_dag_instance
from repro.verification.acyclicity import is_acyclic
from repro.verification.invariants import (
    newpr_invariant_checks,
    pr_invariant_checks,
)
from repro.verification.simulation import check_full_simulation_chain


#: All connected DAGs on 4 labelled nodes with destination 0 — the exhaustive
#: graph family used throughout this module (38 instances).
SMALL_INSTANCES = list(all_connected_dag_instances(4))


class TestSection3Invariants:
    """Invariants 3.1 and 3.2 hold in every reachable PR state (all small graphs)."""

    def test_exhaustive_over_graphs_and_states(self):
        for instance in SMALL_INSTANCES:
            report = explore_and_check(PartialReversal(instance), pr_invariant_checks())
            assert report.all_predicates_hold, f"{instance}: {report}"

    def test_onestep_variant_as_well(self):
        for instance in SMALL_INSTANCES:
            report = explore_and_check(
                OneStepPartialReversal(instance), pr_invariant_checks()
            )
            assert report.all_predicates_hold, f"{instance}: {report}"


class TestSection4Invariants:
    """Invariants 4.1 and 4.2 hold in every reachable NewPR state (all small graphs)."""

    def test_exhaustive_over_graphs_and_states(self):
        for instance in SMALL_INSTANCES:
            report = explore_and_check(NewPartialReversal(instance), newpr_invariant_checks())
            assert report.all_predicates_hold, f"{instance}: {report}"


class TestTheorem43:
    """NewPR never creates a cycle, over every reachable state of every small graph."""

    def test_exhaustive(self):
        for instance in SMALL_INSTANCES:
            report = explore_and_check(NewPartialReversal(instance), {"acyclic": is_acyclic})
            assert report.all_predicates_hold, f"{instance}: {report}"

    def test_larger_randomized(self):
        instance = random_dag_instance(40, edge_probability=0.12, seed=11)
        result = run(NewPartialReversal(instance), RandomScheduler(seed=11))
        assert result.converged
        assert all(state.is_acyclic() for state in result.execution.states)


class TestTheorem55:
    """PR never creates a cycle; acyclicity transfers through R' and R."""

    def test_direct_acyclicity_exhaustive(self):
        for instance in SMALL_INSTANCES:
            report = explore_and_check(PartialReversal(instance), {"acyclic": is_acyclic})
            assert report.all_predicates_hold, f"{instance}: {report}"

    def test_simulation_chain_on_every_small_graph(self):
        for instance in SMALL_INSTANCES:
            result = run(PartialReversal(instance), GreedyScheduler())
            chain = check_full_simulation_chain(result.execution)
            assert chain.holds, f"{instance}"

    def test_simulation_chain_on_larger_random_graphs(self):
        for seed in range(3):
            instance = random_dag_instance(25, edge_probability=0.15, seed=seed)
            result = run(
                PartialReversal(instance), RandomScheduler(seed=seed, subset_probability=0.3)
            )
            assert check_full_simulation_chain(result.execution).holds


class TestFullReversalFolkloreArgument:
    """Section 1: FR trivially maintains acyclicity (last stepping node is a source)."""

    def test_exhaustive(self):
        for instance in SMALL_INSTANCES:
            report = explore_and_check(FullReversal(instance), {"acyclic": is_acyclic})
            assert report.all_predicates_hold, f"{instance}: {report}"

    def test_stepping_node_has_only_outgoing_edges(self):
        for instance in SMALL_INSTANCES[:10]:
            automaton = FullReversal(instance)
            result = run(automaton, GreedyScheduler())
            for step in result.execution.steps():
                for node in step.action.actors():
                    assert step.post_state.orientation.is_source(node)


class TestConvergenceClaims:
    """All four algorithms make every small graph destination oriented."""

    @pytest.mark.parametrize(
        "automaton_class",
        [PartialReversal, OneStepPartialReversal, NewPartialReversal, FullReversal],
    )
    def test_every_small_instance_converges(self, automaton_class):
        for instance in SMALL_INSTANCES:
            result = run(automaton_class(instance), GreedyScheduler())
            assert result.converged
            assert result.final_state.is_destination_oriented(), f"{instance}"

    def test_all_algorithms_reach_identical_final_orientation_per_instance(self):
        """PR, OneStepPR and NewPR end in the same orientation (FR may differ)."""
        for instance in SMALL_INSTANCES:
            finals = set()
            for automaton_class in (PartialReversal, OneStepPartialReversal, NewPartialReversal):
                result = run(automaton_class(instance), GreedyScheduler())
                finals.add(result.final_state.graph_signature())
            assert len(finals) == 1, f"{instance}"
