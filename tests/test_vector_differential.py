"""Differential pins for the vectorised frontier engine (PR 10).

The batch kernels in :mod:`repro.kernels.vector` and the checker's
``vectorized`` paths promise *exact* equality with the scalar oracle —
not just the same verdict but the same state/transition counts, the same
visited sets, the same truncation points, the same failure lists in the
same order, and counterexample traces that replay.  Every promise gets a
pin here, plus coverage for the batch-first :class:`VisitedSet` API the
engine rides on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.full_reversal import FullReversal
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.exploration.checker import ModelChecker
from repro.exploration.frontier import VisitedSet
from repro.kernels.signature import compile_expander, shard_of
from repro.kernels.vector import compile_vector_expander, shard_of_batch
from repro.topology.generators import chain_instance, grid_instance

ALGORITHM_CLASSES = (PartialReversal, OneStepPartialReversal, NewPartialReversal, FullReversal)

REPORT_FIELDS = (
    "states_explored",
    "transitions_explored",
    "quiescent_states",
    "max_depth",
    "truncated",
)


def _vectorisable_instance(automaton_class):
    """A non-trivial instance whose signature fits the 64-bit batch lane."""
    if automaton_class is NewPartialReversal:
        # NewPR packs E + 16·n bits; only toy instances fit one word
        return chain_instance(3, towards_destination=False)
    return grid_instance(3, 3, oriented_towards_destination=False)


def _run(automaton, predicates=None, **kwargs):
    kwargs.setdefault("max_traced_failures", 10_000)
    return ModelChecker(automaton, predicates, **kwargs).run()


def _summaries(report):
    return tuple(getattr(report, field) for field in REPORT_FIELDS)


def _failure_keys(report):
    return [
        (
            failure.predicate_name,
            failure.detail,
            tuple(failure.trace.signatures or ()),
            tuple(str(action) for action in failure.trace.actions),
        )
        for failure in report.failures
    ]


def _planted_predicates(automaton):
    initial_signature = automaton.initial_state().signature()
    return {
        "is-initial": lambda s: s.signature() == initial_signature,
        "at-most-one-reversal": lambda s: bin(s.graph_signature()).count("1") <= 1,
    }


# ----------------------------------------------------------------------
# engine-level pins: vectorised == scalar, field for field
# ----------------------------------------------------------------------
class TestVectorMatchesScalar:
    @pytest.mark.parametrize("automaton_class", ALGORITHM_CLASSES)
    def test_counts_and_visited_sets(self, automaton_class):
        instance = _vectorisable_instance(automaton_class)
        base = dict(check_acyclicity=True, collect_signatures=True)
        scalar = _run(automaton_class(instance), vectorized="never", **base)
        batch = _run(automaton_class(instance), vectorized="always", **base)
        assert not scalar.vectorized and batch.vectorized
        assert _summaries(scalar) == _summaries(batch)
        assert scalar.signatures == batch.signatures

    @pytest.mark.parametrize("automaton_class", ALGORITHM_CLASSES)
    def test_failure_lists_identical_in_order(self, automaton_class):
        instance = _vectorisable_instance(automaton_class)
        automaton = automaton_class(instance)
        predicates = _planted_predicates(automaton)
        base = dict(check_acyclicity=True, check_progress=True)
        scalar = _run(automaton_class(instance), predicates, vectorized="never", **base)
        batch = _run(automaton_class(instance), predicates, vectorized="always", **base)
        assert _failure_keys(scalar), "planted predicates must actually fail"
        assert _failure_keys(scalar) == _failure_keys(batch)

    @pytest.mark.parametrize("max_states", [1, 3, 10, 50, 200])
    def test_truncation_points_identical(self, max_states):
        instance = grid_instance(3, 3, oriented_towards_destination=False)
        base = dict(check_acyclicity=True, collect_signatures=True, max_states=max_states)
        scalar = _run(FullReversal(instance), vectorized="never", **base)
        batch = _run(FullReversal(instance), vectorized="always", **base)
        assert _summaries(scalar) == _summaries(batch)
        assert scalar.signatures == batch.signatures

    def test_sharded_vector_matches_single(self):
        instance = grid_instance(3, 3, oriented_towards_destination=False)
        base = dict(check_acyclicity=True, check_progress=True, collect_signatures=True)
        single = _run(FullReversal(instance), vectorized="always", **base)
        sharded = _run(FullReversal(instance), vectorized="always", workers=3, **base)
        assert sharded.vectorized
        assert _summaries(single) == _summaries(sharded)
        assert single.signatures == sharded.signatures
        assert sorted(_failure_keys(single)) == sorted(_failure_keys(sharded))

    def test_sharded_spill_and_compaction_match_scalar(self, tmp_path):
        instance = grid_instance(4, 4, oriented_towards_destination=False)
        base = dict(check_acyclicity=True, collect_signatures=True,
                    spill_threshold=200, spill_max_runs=2)
        scalar = _run(FullReversal(instance), vectorized="never", workers=2,
                      spill_dir=str(tmp_path / "scalar"), **base)
        batch = _run(FullReversal(instance), vectorized="always", workers=2,
                     spill_dir=str(tmp_path / "batch"), **base)
        assert batch.spilled and scalar.spilled
        assert batch.spill_stats["spills"] > 0
        assert batch.spill_stats["compactions"] > 0
        assert _summaries(scalar) == _summaries(batch)
        assert scalar.signatures == batch.signatures

    def test_counterexamples_replay(self):
        instance = grid_instance(3, 3, oriented_towards_destination=False)
        for workers in (1, 2):
            automaton = OneStepPartialReversal(instance)
            predicates = _planted_predicates(automaton)
            report = _run(automaton, predicates, vectorized="always", workers=workers)
            assert report.vectorized and report.failures
            for failure in report.failures:
                assert failure.trace.reconstructed
                execution = failure.trace.replay(OneStepPartialReversal(instance))
                execution.validate()
                assert not predicates[failure.predicate_name](execution.final_state)

    def test_wide_signatures_fall_back_to_scalar(self):
        # NewPR on a 4×4 grid needs 24 + 16·16 bits — far past one word
        instance = grid_instance(4, 4, oriented_towards_destination=False)
        expander = compile_expander(NewPartialReversal(instance))
        assert compile_vector_expander(expander) is None
        report = _run(NewPartialReversal(instance), vectorized="auto", max_states=50)
        assert not report.vectorized  # fell back, still answered
        with pytest.raises(ValueError, match="vectorized='always'"):
            ModelChecker(NewPartialReversal(instance), vectorized="always")

    def test_shard_of_batch_matches_scalar_shard_of(self):
        mersenne = (1 << 61) - 1
        edge_values = [0, 1, mersenne - 1, mersenne, mersenne + 1, (1 << 64) - 1]
        rng = np.random.default_rng(7)
        values = np.concatenate([
            np.array(edge_values, dtype=np.uint64),
            rng.integers(0, 1 << 63, size=1000, dtype=np.uint64),
        ])
        for shards in (2, 3, 7):
            batch = shard_of_batch(values, shards)
            expected = [shard_of(int(v), shards) for v in values.tolist()]
            assert batch.tolist() == expected


# ----------------------------------------------------------------------
# the batch-first VisitedSet underneath the engine
# ----------------------------------------------------------------------
class TestVisitedSetBatch:
    def test_add_many_mask_matches_scalar_add_semantics(self, tmp_path):
        vs = VisitedSet(key_bytes=8, spill_threshold=64, spill_dir=tmp_path)
        reference: set = set()
        rng = np.random.default_rng(11)
        try:
            for _ in range(40):
                batch = rng.integers(0, 500, size=37, dtype=np.uint64)
                expected = []
                for value in batch.tolist():
                    expected.append(value not in reference)
                    reference.add(value)
                mask = vs.add_many(batch)
                assert mask.tolist() == expected
            assert len(vs) == len(reference)
            assert set(vs) == reference
        finally:
            vs.close()

    def test_contains_many_across_memory_segments_and_runs(self, tmp_path):
        vs = VisitedSet(key_bytes=8, spill_threshold=50, spill_dir=tmp_path, max_runs=2)
        members = list(range(0, 600, 3))
        try:
            for value in members:
                vs.add(value)
            assert vs.spilled_runs > 0
            probes = np.arange(0, 620, dtype=np.uint64)
            hits = vs.contains_many(probes)
            assert hits.tolist() == [int(p) in set(members) for p in probes.tolist()]
        finally:
            vs.close()

    def test_iter_streams_spilled_runs(self, tmp_path):
        vs = VisitedSet(key_bytes=8, spill_threshold=32, spill_dir=tmp_path)
        values = set(range(1000, 1500))
        try:
            for value in values:
                vs.add(value)
            assert vs.spilled_runs > 1
            assert set(vs) == values
        finally:
            vs.close()

    def test_compaction_folds_runs_and_counts_survive(self, tmp_path):
        vs = VisitedSet(key_bytes=8, spill_threshold=40, spill_dir=tmp_path, max_runs=2)
        try:
            for value in range(700):
                vs.add(value)
            stats = vs.stats
            assert stats["compactions"] > 0
            assert stats["runs"] <= 2
            assert len(vs) == 700
            assert all(value in vs for value in range(0, 700, 97))
        finally:
            vs.close()

    def test_close_empties_the_set(self, tmp_path):
        """Satellite pin: ``close()`` must leave a genuinely empty set."""
        vs = VisitedSet(key_bytes=8, spill_threshold=16, spill_dir=tmp_path)
        for value in range(100):
            vs.add(value)
        assert vs.spilled_runs > 0 and len(vs) == 100
        vs.close()
        assert len(vs) == 0
        assert list(vs) == []
        assert 5 not in vs
        assert list(tmp_path.glob("run-*.bin")) == []
        # close() is idempotent and the set stays usable as an empty one
        vs.close()
        assert len(vs) == 0
