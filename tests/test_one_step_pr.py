"""Unit tests for OneStepPR (Algorithm 3)."""

from __future__ import annotations

import pytest

from repro.automata.executions import run
from repro.automata.ioa import TransitionError
from repro.core.base import Reverse
from repro.core.one_step_pr import OneStepPartialReversal, OneStepPRState
from repro.core.pr import PartialReversal, ReverseSet
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.random_scheduler import RandomScheduler
from repro.schedulers.sequential import SequentialScheduler


class TestBasics:
    def test_initial_state_type(self, diamond):
        state = OneStepPartialReversal(diamond).initial_state()
        assert isinstance(state, OneStepPRState)

    def test_initial_lists_empty(self, diamond):
        state = OneStepPartialReversal(diamond).initial_state()
        assert all(state.list_of(u) == frozenset() for u in diamond.nodes)

    def test_only_single_node_actions(self, bad_grid):
        automaton = OneStepPartialReversal(bad_grid)
        state = automaton.initial_state()
        for action in automaton.enabled_actions(state):
            assert isinstance(action, Reverse)
            assert len(action.actors()) == 1

    def test_destination_not_enabled(self, good_chain):
        automaton = OneStepPartialReversal(good_chain)
        assert not automaton.is_enabled(automaton.initial_state(), Reverse(0))

    def test_disabled_apply_raises(self, diamond):
        automaton = OneStepPartialReversal(diamond)
        with pytest.raises(TransitionError):
            automaton.apply(automaton.initial_state(), Reverse("a"))


class TestSemanticsMatchPR:
    def test_single_step_matches_pr_singleton_step(self, diamond):
        onestep = OneStepPartialReversal(diamond)
        pr = PartialReversal(diamond)
        s = onestep.apply(onestep.initial_state(), Reverse("c"))
        t = pr.apply(pr.initial_state(), ReverseSet(frozenset({"c"})))
        assert s.graph_signature() == t.graph_signature()
        assert all(s.list_of(u) == t.list_of(u) for u in diamond.nodes)

    def test_whole_sequential_executions_agree(self, bad_chain):
        onestep = OneStepPartialReversal(bad_chain)
        pr = PartialReversal(bad_chain)
        r1 = run(onestep, SequentialScheduler())
        r2 = run(pr, SequentialScheduler())
        assert r1.final_state.graph_signature() == r2.final_state.graph_signature()

    def test_reversal_targets(self, diamond):
        automaton = OneStepPartialReversal(diamond)
        state = automaton.initial_state()
        assert automaton.reversal_targets(state, "c") == frozenset({"a", "b"})

    def test_list_equal_nbrs_triggers_full_reversal(self):
        # d -> x <- y: after x steps, y's list equals its whole neighbour set,
        # which exercises the "reverse everything" branch of Algorithm 1/3.
        from repro.core.graph import LinkReversalInstance

        instance = LinkReversalInstance.from_directed_edges(
            nodes=["d", "x", "y"], destination="d", edges=[("d", "x"), ("y", "x")]
        )
        automaton = OneStepPartialReversal(instance)
        s = automaton.apply(automaton.initial_state(), Reverse("x"))
        assert s.list_of("y") == frozenset({"x"}) == instance.nbrs("y")
        assert s.is_sink("y")
        s2 = automaton.apply(s, Reverse("y"))
        # the full-reversal branch reverses the (only) edge and clears the list
        assert s2.orientation.points_towards("y", "x")
        assert s2.list_of("y") == frozenset()
        assert "y" in s2.list_of("x")


class TestConvergence:
    @pytest.mark.parametrize(
        "scheduler_factory",
        [GreedyScheduler, SequentialScheduler, lambda: RandomScheduler(seed=9)],
    )
    def test_converges(self, bad_chain, scheduler_factory):
        result = run(OneStepPartialReversal(bad_chain), scheduler_factory())
        assert result.converged
        assert result.final_state.is_destination_oriented()

    def test_acyclic_throughout(self, random_dag):
        result = run(OneStepPartialReversal(random_dag), RandomScheduler(seed=4))
        assert all(state.is_acyclic() for state in result.execution.states)

    def test_grid_converges(self, bad_grid):
        result = run(OneStepPartialReversal(bad_grid), GreedyScheduler())
        assert result.converged
        assert result.final_state.is_destination_oriented()

    def test_final_state_independent_of_scheduler(self, bad_grid):
        final_signatures = set()
        for scheduler in (GreedyScheduler(), SequentialScheduler(), RandomScheduler(seed=1)):
            result = run(OneStepPartialReversal(bad_grid), scheduler)
            final_signatures.add(result.final_state.graph_signature())
        assert len(final_signatures) == 1
