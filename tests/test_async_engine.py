"""The async campaign engine, the engine registry and the async plumbing.

Three layers under test:

* **registry** — engines are peers: ``auto`` routes delay-model specs to the
  async engine and synchronous specs to kernel/legacy; explicit mismatches
  raise with actionable messages.
* **differential** — an async run with zero delay, zero loss and sequential
  (FIFO) delivery must agree with the kernel/legacy engines field-for-field
  on convergence outcome and final orientation (the engines model the same
  algorithm, so the confluent final state is engine-independent).
* **plumbing** — spec validation and run_id stability, campaign
  cross-product expansion, the store's async columns, campaign
  interrupt+resume, CLI sweep, and the aggregate summary.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.distributed.fast_network import FastAsyncNetwork
from repro.distributed.network import DELAY_MODELS
from repro.distributed.protocol import ReversalMode
from repro.experiments.async_engine import ASYNC_MODES, AsyncEngine
from repro.experiments.engines import (
    ENGINE_REGISTRY,
    engine_names,
    get_engine,
    register_engine,
)
from repro.experiments.executor import run_campaign
from repro.experiments.runner import (
    ENGINE_ASYNC,
    ENGINE_BATCH,
    ENGINE_CHOICES,
    ENGINE_DATAPLANE,
    ENGINE_KERNEL,
    ENGINE_LEGACY,
    execute_scenario,
    resolve_engine,
)
from repro.experiments.spec import (
    DELAY_MODEL_NAMES,
    CampaignSpec,
    ScenarioSpec,
    derive_seed,
)
from repro.experiments.store import ResultStore
from repro.kernels import compile_expander, make_mask_scheduler, mask_directed_edges
from repro.kernels.simulator import SignatureSimulator
from repro.experiments.spec import ALGORITHM_FACTORIES
from repro.topology.generators import build_family


def _spec(**overrides):
    base = dict(
        family="grid",
        size=12,
        algorithm="pr",
        scheduler="greedy",
        topology_seed=derive_seed(0, "topology", "grid", 12, 0),
        scheduler_seed=derive_seed(0, "scheduler", "grid", 12, 0, "pr", "greedy"),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestRegistry:
    def test_registry_names(self):
        assert set(ENGINE_REGISTRY) == {
            ENGINE_KERNEL, ENGINE_LEGACY, ENGINE_ASYNC, ENGINE_BATCH,
            ENGINE_DATAPLANE,
        }
        assert engine_names() == (
            "auto", ENGINE_KERNEL, ENGINE_LEGACY, ENGINE_ASYNC, ENGINE_BATCH,
            ENGINE_DATAPLANE,
        )
        assert ENGINE_CHOICES == engine_names()

    def test_auto_routes_by_spec_content(self):
        assert resolve_engine("auto", _spec()) == ENGINE_KERNEL
        assert resolve_engine("auto", _spec(algorithm="bll")) == ENGINE_LEGACY
        assert resolve_engine("auto", _spec(delay_model="uniform")) == ENGINE_ASYNC

    def test_explicit_engine_must_support_the_spec(self):
        with pytest.raises(ValueError, match="async"):
            resolve_engine(ENGINE_KERNEL, _spec(delay_model="zero"))
        with pytest.raises(ValueError, match="async"):
            resolve_engine(ENGINE_LEGACY, _spec(delay_model="zero"))
        with pytest.raises(ValueError, match="delay_model"):
            resolve_engine(ENGINE_ASYNC, _spec())
        with pytest.raises(ValueError, match="bll"):
            resolve_engine(ENGINE_ASYNC, _spec(algorithm="bll", delay_model="zero"))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("warp-drive", _spec())
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("warp-drive")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_engine(AsyncEngine())

    def test_async_supports_table(self):
        engine = get_engine(ENGINE_ASYNC)
        assert engine.supports(_spec(algorithm="fr", delay_model="fixed"))
        assert not engine.supports(_spec(algorithm="new-pr", delay_model="fixed"))
        assert not engine.supports(_spec())
        assert not engine.supports(
            _spec(family="geometric", delay_model="fixed",
                  failure_model="mobility", failure_count=1)
        )


class TestSpecValidation:
    def test_delay_model_names_match_the_network_table(self):
        assert set(DELAY_MODEL_NAMES) == set(DELAY_MODELS)

    def test_unknown_delay_model_rejected(self):
        with pytest.raises(ValueError, match="delay model"):
            _spec(delay_model="warp").validate()

    def test_loss_requires_a_delay_model(self):
        with pytest.raises(ValueError, match="loss"):
            _spec(loss=0.1).validate()

    def test_loss_range_checked(self):
        with pytest.raises(ValueError, match="loss"):
            _spec(delay_model="zero", loss=1.0).validate()

    def test_async_mobility_rejected(self):
        with pytest.raises(ValueError, match="mobility"):
            _spec(family="geometric", delay_model="zero",
                  failure_model="mobility", failure_count=1).validate()

    def test_valid_async_spec_passes(self):
        _spec(delay_model="fifo", loss=0.3,
              failure_model="link-failures", failure_count=2).validate()

    def test_sync_run_id_unchanged_by_the_async_fields(self):
        """Pre-async stores must keep resuming: old identities hash identically."""
        spec = _spec()
        legacy_identity = {
            "family": spec.family,
            "size": spec.size,
            "algorithm": spec.algorithm,
            "scheduler": spec.scheduler,
            "topology_seed": spec.topology_seed,
            "scheduler_seed": spec.scheduler_seed,
            "replicate": spec.replicate,
            "failure_model": spec.failure_model,
            "failure_count": spec.failure_count,
            "max_steps": spec.max_steps,
        }
        blob = json.dumps(legacy_identity, sort_keys=True, separators=(",", ":"))
        assert spec.run_id == hashlib.sha1(blob.encode("utf-8")).hexdigest()[:16]

    def test_async_axes_change_the_run_id(self):
        assert _spec().run_id != _spec(delay_model="zero").run_id
        assert _spec(delay_model="zero").run_id != _spec(delay_model="fixed").run_id
        assert (
            _spec(delay_model="zero").run_id
            != _spec(delay_model="zero", loss=0.1).run_id
        )

    def test_to_dict_round_trips_the_async_fields(self):
        spec = _spec(delay_model="uniform", loss=0.25)
        rebuilt = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.run_id == spec.run_id


class TestCampaignExpansion:
    def test_delay_and_loss_axes_cross_product(self):
        campaign = CampaignSpec(
            families=("chain",), algorithms=("pr", "fr"), sizes=(6,),
            delay_models=("zero", "uniform"), losses=(0.0, 0.2),
        )
        runs = campaign.expand()
        assert campaign.run_count == len(runs) == 2 * 2 * 2
        assert {(r.delay_model, r.loss) for r in runs} == {
            ("zero", 0.0), ("zero", 0.2), ("uniform", 0.0), ("uniform", 0.2),
        }

    def test_sync_cells_skip_lossy_combinations(self):
        campaign = CampaignSpec(
            families=("chain",), algorithms=("pr",), sizes=(6,),
            delay_models=(None, "fixed"), losses=(0.0, 0.2),
        )
        runs = campaign.expand()
        assert campaign.run_count == len(runs) == 3  # (None,0), (fixed,0), (fixed,.2)
        assert (None, 0.2) not in {(r.delay_model, r.loss) for r in runs}

    def test_async_cells_skip_mobility(self):
        campaign = CampaignSpec(
            families=("geometric",), algorithms=("pr",), sizes=(8,),
            failure_models=[("mobility", 2)], delay_models=(None, "fixed"),
        )
        runs = campaign.expand()
        assert campaign.run_count == len(runs) == 1
        assert runs[0].delay_model is None

    def test_campaign_dict_round_trip(self):
        campaign = CampaignSpec(
            delay_models=("zero", None), losses=(0.0, 0.1),
        )
        rebuilt = CampaignSpec.from_dict(json.loads(json.dumps(campaign.to_dict())))
        assert rebuilt.delay_models == campaign.delay_models
        assert rebuilt.losses == campaign.losses
        assert [s.run_id for s in rebuilt.expand()] == [
            s.run_id for s in campaign.expand()
        ]


def _kernel_final_edges(spec):
    instance = build_family(spec.family, spec.size, spec.topology_seed)
    automaton = ALGORITHM_FACTORIES[spec.algorithm](instance)
    simulator = SignatureSimulator(compile_expander(automaton))
    outcome = simulator.run_phase(make_mask_scheduler(spec.scheduler, spec.scheduler_seed))
    mask = simulator.kernel.orientation_mask(outcome.signature)
    return set(mask_directed_edges(instance, mask)), instance


class TestAsyncVsKernelDifferential:
    """Zero delay + zero loss + sequential delivery matches the sync engines."""

    @pytest.mark.parametrize("family,size", [
        ("chain", 10), ("grid", 16), ("random-dag", 16), ("tree", 12),
    ])
    @pytest.mark.parametrize("algorithm", sorted(ASYNC_MODES))
    def test_convergence_outcome_matches_kernel_and_legacy(self, family, size, algorithm):
        seeds = dict(
            topology_seed=derive_seed(3, "topology", family, size, 0),
            scheduler_seed=derive_seed(3, "scheduler", family, size, 0, algorithm, "greedy"),
        )
        sync_spec = _spec(family=family, size=size, algorithm=algorithm, **seeds)
        async_spec = _spec(
            family=family, size=size, algorithm=algorithm,
            delay_model="zero", **seeds,
        )
        kernel = execute_scenario(sync_spec, engine=ENGINE_KERNEL)
        legacy = execute_scenario(sync_spec, engine=ENGINE_LEGACY)
        async_record = execute_scenario(async_spec, engine=ENGINE_ASYNC)
        for record in (kernel, legacy, async_record):
            assert record["status"] == "ok"
        for field in ("converged", "destination_oriented", "acyclic_final",
                      "nodes", "edges", "bad_nodes"):
            assert async_record[field] == kernel[field] == legacy[field], field

    @pytest.mark.parametrize("algorithm", sorted(ASYNC_MODES))
    def test_final_orientation_matches_the_kernel_engine(self, algorithm):
        spec = _spec(algorithm=algorithm, delay_model="zero")
        kernel_edges, instance = _kernel_final_edges(spec)
        network = FastAsyncNetwork(
            instance,
            mode=ASYNC_MODES[algorithm],
            min_delay=0.0,
            max_delay=0.0,
            seed=derive_seed(spec.topology_seed, "async-channels"),
        )
        network.run_to_quiescence()
        assert set(network.global_directed_edges()) == kernel_edges

    def test_auto_uses_async_and_records_message_stats(self):
        record = execute_scenario(_spec(delay_model="uniform", loss=0.1))
        assert record["engine"] == ENGINE_ASYNC
        assert record["status"] == "ok"
        assert record["messages_sent"] > record["messages_delivered"] > 0
        assert record["messages_lost"] == record["messages_sent"] - record["messages_delivered"]
        assert record["simulated_time"] > 0
        assert record["events_dispatched"] > 0
        assert record["acyclic_final"] is True

    def test_async_churn_records_failures(self):
        record = execute_scenario(
            _spec(delay_model="fixed", failure_model="link-failures", failure_count=3)
        )
        assert record["status"] == "ok"
        assert record["failures_applied"] + record["partition_skips"] == 3
        assert record["converged"] is True
        assert record["destination_oriented"] is True

    def test_async_timeout_is_recorded_with_partial_work(self):
        record = execute_scenario(
            _spec(size=30, delay_model="uniform"), timeout_s=0.0
        )
        assert record["status"] == "timeout"
        assert record["engine"] == ENGINE_ASYNC
        assert record["events_dispatched"] >= 1

    def test_paired_channels_across_algorithms(self):
        """pr and fr of one replicate derive the same channel seed base."""
        pr = _spec(algorithm="pr", delay_model="uniform")
        fr = _spec(algorithm="fr", delay_model="uniform")
        assert derive_seed(pr.topology_seed, "async-channels") == derive_seed(
            fr.topology_seed, "async-channels"
        )


class TestAsyncCampaigns:
    def _campaign(self):
        return CampaignSpec(
            name="async-test",
            families=("chain", "grid"),
            algorithms=("pr", "fr"),
            schedulers=("greedy",),
            sizes=(6,),
            replicates=1,
            delay_models=("zero", "uniform"),
            losses=(0.0, 0.2),
            failure_models=[("link-failures", 1)],
        )

    def test_campaign_runs_and_store_indexes_async_columns(self, tmp_path):
        campaign = self._campaign()
        store = ResultStore(tmp_path / "store")
        report = run_campaign(campaign, store, workers=1)
        assert report.executed == campaign.run_count == 16
        assert report.engines == {"async": 16}
        assert report.ok == 16
        # the async columns are indexed and filterable
        zero_rows = store.records(delay_model="zero")
        assert len(zero_rows) == 8
        assert all(row["messages_sent"] > 0 for row in zero_rows)
        assert all(row["simulated_time"] is not None for row in zero_rows)
        lossy = store.records(delay_model="uniform", status="ok")
        assert any(row["messages_lost"] > 0 for row in lossy)

    def test_interrupt_and_resume(self, tmp_path):
        """A half-written store resumes exactly the missing runs."""
        campaign = self._campaign()
        store = ResultStore(tmp_path / "store")
        runs = campaign.expand()
        half = [execute_scenario(spec) for spec in runs[: len(runs) // 2]]
        store.append(half)  # simulate a campaign killed mid-flight
        report = run_campaign(campaign, store, workers=1)
        assert report.skipped == len(half)
        assert report.executed == len(runs) - len(half)
        again = run_campaign(campaign, store, workers=1)
        assert again.executed == 0
        assert again.skipped == len(runs)

    def test_mixed_engine_campaign(self, tmp_path):
        campaign = CampaignSpec(
            name="mixed",
            families=("chain",),
            algorithms=("pr",),
            sizes=(6,),
            delay_models=(None, "fixed"),
        )
        store = ResultStore(tmp_path / "store")
        report = run_campaign(campaign, store, workers=1)
        assert report.engines == {"kernel": 1, "async": 1}

    def test_aggregate_async_summary(self, tmp_path):
        from repro.experiments.aggregate import async_summary, build_report

        campaign = self._campaign()
        store = ResultStore(tmp_path / "store")
        run_campaign(campaign, store, workers=1)
        summary = async_summary(store.records(status="ok"))
        assert summary["runs"] == 16
        assert set(summary["by_delay_model"]) == {"zero", "uniform"}
        assert summary["by_delay_model"]["zero"]["mean_messages"] > 0
        report = build_report(store)
        assert report["async"]["runs"] == 16


class TestAsyncSweepCli:
    def test_sweep_engine_async_and_resume(self, tmp_path, capsys):
        from repro.cli import main

        store = str(tmp_path / "store")
        args = [
            "sweep", "--name", "cli-async", "--engine", "async",
            "--families", "chain", "--algorithms", "pr,fr", "--sizes", "5,7",
            "--delay-models", "zero,fifo", "--losses", "0,0.1",
            "--failure-model", "link-failures", "--failure-count", "1",
            "--store", store, "--quiet", "--json",
        ]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engines"] == {"async": 16}
        assert payload["ok"] == 16
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executed"] == 0
        assert payload["skipped"] == payload["total"] == 16

    def test_sweep_defaults_delay_model_for_async_engine(self, tmp_path, capsys):
        from repro.cli import main

        args = [
            "sweep", "--engine", "async", "--families", "chain",
            "--algorithms", "pr", "--sizes", "5",
            "--store", str(tmp_path / "store"), "--quiet", "--json",
        ]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engines"] == {"async": 1}

    def test_simulate_fast_engine(self, capsys):
        from repro.cli import main

        code = main(["simulate", "--topology", "grid", "--nodes", "16",
                     "--delay-model", "fixed"])
        out = capsys.readouterr().out
        assert code == 0
        assert "oriented=True" in out

    def test_simulate_engines_agree(self, capsys):
        from repro.cli import main

        main(["simulate", "--topology", "grid", "--nodes", "16", "--engine", "fast"])
        fast_out = capsys.readouterr().out
        main(["simulate", "--topology", "grid", "--nodes", "16", "--engine", "legacy"])
        legacy_out = capsys.readouterr().out
        assert fast_out == legacy_out


class TestNetworkReportSerialization:
    def test_round_trip(self):
        from repro.io.serialization import (
            network_report_from_dict,
            network_report_to_dict,
        )

        instance = build_family("chain", 8, 0)
        report = FastAsyncNetwork(instance, seed=3).run_to_quiescence()
        data = json.loads(json.dumps(network_report_to_dict(report)))
        assert network_report_from_dict(data) == report

    def test_missing_field_rejected(self):
        from repro.io.serialization import SerializationError, network_report_from_dict

        with pytest.raises(SerializationError, match="missing"):
            network_report_from_dict({"simulated_time": 1.0})

    def test_wrong_type_rejected(self):
        from repro.io.serialization import (
            SerializationError,
            network_report_from_dict,
            network_report_to_dict,
        )

        instance = build_family("chain", 6, 0)
        data = network_report_to_dict(FastAsyncNetwork(instance, seed=1).run_to_quiescence())
        data["messages_sent"] = "many"
        with pytest.raises(SerializationError, match="messages_sent"):
            network_report_from_dict(data)

    def test_int_accepted_for_float_fields(self):
        from repro.io.serialization import network_report_from_dict, network_report_to_dict

        instance = build_family("chain", 6, 0)
        data = network_report_to_dict(FastAsyncNetwork(instance, seed=1).run_to_quiescence())
        data["simulated_time"] = 7  # JSON may narrow whole floats
        assert network_report_from_dict(data).simulated_time == 7.0
