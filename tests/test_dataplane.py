"""Tests for the packet-level data plane and its campaign engine."""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.dataplane.packets import PacketSimulator, numpy_available
from repro.dataplane.run import DataPlaneRun
from repro.dataplane.traffic import (
    TRAFFIC_MODELS,
    TRAFFIC_MODEL_NAMES,
    TrafficModel,
    resolve_traffic,
)
from repro.distributed.protocol import ReversalMode
from repro.experiments.runner import execute_scenario
from repro.experiments.spec import CampaignSpec, ScenarioSpec
from repro.experiments.spec import TRAFFIC_MODEL_NAMES as SPEC_TRAFFIC_NAMES
from repro.topology.generators import build_family, grid_instance


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        family="grid",
        size=16,
        algorithm="pr",
        scheduler="random",
        topology_seed=3,
        scheduler_seed=4,
        replicate=0,
        failure_model="none",
        failure_count=0,
        max_steps=None,
        campaign="test-dataplane",
        delay_model=None,
        loss=0.0,
        traffic="steady",
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _assert_conservation_fields(counters) -> None:
    """The invariant, field for field, from a counters() dict."""
    assert counters["packets_injected"] == (
        counters["packets_delivered"]
        + counters["drop_tail"]
        + counters["drop_ttl"]
        + counters["drop_no_route"]
        + counters["drop_link_down"]
        + counters["packets_in_flight"]
    )
    assert counters["packets_dropped"] == (
        counters["drop_tail"]
        + counters["drop_ttl"]
        + counters["drop_no_route"]
        + counters["drop_link_down"]
    )


class TestTrafficModels:
    def test_model_names_mirror_matches_canonical_table(self):
        # spec.py mirrors the names so it stays import-light; the two lists
        # must never drift
        assert SPEC_TRAFFIC_NAMES == tuple(TRAFFIC_MODELS)
        assert SPEC_TRAFFIC_NAMES == TRAFFIC_MODEL_NAMES

    def test_resolve_traffic_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown traffic model"):
            resolve_traffic("flood")

    def test_bursty_keeps_long_run_mean(self):
        bursty = TRAFFIC_MODELS["bursty"]
        steady = TRAFFIC_MODELS["steady"]
        assert bursty.rate == steady.rate
        assert bursty.on_rate > steady.rate

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficModel("bad", rate=-1.0)
        with pytest.raises(ValueError):
            TrafficModel("bad", rate=1.0, burst_on=0.0)


class TestPacketSimulator:
    def _two_node_sim(self, **overrides) -> PacketSimulator:
        # 1 -> 0 (destination) with both directed queues
        kwargs = dict(
            link_from=[0, 1],
            link_to=[1, 0],
            n_nodes=2,
            destination=0,
            rates=[0.0, 1.0],
            undirected_distance=[0, 1],
            queue_capacity=4,
            link_capacity=1,
            ttl=8,
            seed=1,
        )
        kwargs.update(overrides)
        sim = PacketSimulator(**kwargs)
        sim.set_next_hop_link(1, 1)
        return sim

    def test_delivery_on_a_single_link(self):
        sim = self._two_node_sim()
        for _ in range(64):
            sim.inject_slot()
            sim.step()
        while sim.in_flight:
            sim.step()
        assert sim.injected > 0
        assert sim.delivered > 0
        assert sim.conservation_ok()
        _assert_conservation_fields(sim.counters())

    def test_tail_drops_when_queue_full(self):
        sim = self._two_node_sim(rates=[0.0, 50.0], queue_capacity=2)
        sim.inject_slot()
        assert sim.drop_tail > 0
        assert sim.conservation_ok()

    def test_no_route_drops_without_next_hop(self):
        sim = self._two_node_sim()
        sim.set_next_hop_link(1, -1)
        sim.inject_slot()
        assert sim.drop_no_route == sim.injected > 0
        assert sim.conservation_ok()

    def test_ttl_expiry_on_a_ping_pong_loop(self):
        # 1 and 2 forward to each other: every packet from either node
        # bounces until its TTL dies; none reaches destination 0
        sim = PacketSimulator(
            link_from=[1, 2],
            link_to=[2, 1],
            n_nodes=3,
            destination=0,
            rates=[0.0, 1.0, 0.0],
            undirected_distance=[0, 1, 1],
            queue_capacity=8,
            link_capacity=4,
            ttl=6,
            seed=2,
        )
        sim.set_next_hop_link(1, 0)
        sim.set_next_hop_link(2, 1)
        for _ in range(8):
            sim.inject_slot()
            sim.step()
        for _ in range(32):
            if not sim.in_flight:
                break
            sim.step()
        assert sim.delivered == 0
        assert sim.drop_ttl > 0
        assert sim.loop_bounces > 0
        assert sim.conservation_ok()

    def test_kill_links_flushes_in_flight_packets(self):
        sim = self._two_node_sim(rates=[0.0, 3.0])
        sim.inject_slot()
        in_flight = sim.in_flight
        assert in_flight > 0
        sim.kill_links([0, 1])
        assert sim.in_flight == 0
        assert sim.drop_link_down == in_flight
        assert sim.conservation_ok()

    def test_determinism_same_seed_same_counters(self):
        def run_once():
            sim = self._two_node_sim(rates=[0.0, 2.5], seed=9)
            for _ in range(32):
                sim.inject_slot()
                sim.step()
            return sim.counters()

        assert run_once() == run_once()


class TestDataPlaneRun:
    def _converged_run(self, **overrides) -> DataPlaneRun:
        kwargs = dict(
            mode=ReversalMode.PARTIAL,
            traffic="steady",
            delay_model="fixed",
            loss=0.0,
            channel_seed=5,
            traffic_seed=6,
        )
        instance = overrides.pop("instance", None) or grid_instance(
            4, 4, oriented_towards_destination=False
        )
        kwargs.update(overrides)
        run = DataPlaneRun(instance, **kwargs)
        run.network.run_to_quiescence(max_events=1_000_000)
        run._advance_control(None)
        return run

    def test_steady_traffic_mostly_delivers_on_converged_dag(self):
        run = self._converged_run()
        run.run(128, drain_slots=256)
        counters = run.sim.counters()
        _assert_conservation_fields(counters)
        assert counters["packets_injected"] > 0
        # steady load is half the sink cut: deliveries dominate
        assert counters["packets_delivered"] > counters["packets_dropped"]
        assert counters["mean_stretch"] >= 1.0

    def test_conservation_field_for_field_under_mid_run_churn(self):
        run = self._converged_run(delay_model="uniform")
        network = run.network

        def fail(count: int) -> None:
            for _ in range(count):
                for u, v in network.sorted_link_pairs():
                    if not network.link_would_partition(u, v):
                        run.fail_link(u, v)
                        return

        plan = {32: 1, 64: 1, 96: 1}
        run.run(128, drain_slots=512, failure_plan=plan, fail_hook=fail)
        counters = run.sim.counters()
        _assert_conservation_fields(counters)
        assert run.sim.conservation_ok()
        assert counters["packets_injected"] > 0
        assert counters["packets_delivered"] > 0
        # the cascades genuinely rewrote the DAG under the packets
        assert network.total_reversals() > 0
        assert run.repatched_nodes > 0

    def test_run_is_deterministic(self):
        def counters_once():
            run = self._converged_run()
            run.run(64, drain_slots=128)
            return run.sim.counters()

        assert counters_once() == counters_once()

    def test_offered_load_scales_with_sink_cut(self):
        # the same named model on a bigger grid injects against the *same*
        # sink-cut multiple, so delivery ratios stay comparable across sizes
        small = self._converged_run()
        small.run(64, drain_slots=256)
        big = self._converged_run(
            instance=grid_instance(6, 6, oriented_towards_destination=False)
        )
        big.run(64, drain_slots=256)
        for counters in (small.sim.counters(), big.sim.counters()):
            injected = counters["packets_injected"]
            assert injected > 0
            assert counters["packets_delivered"] / injected > 0.9


@pytest.mark.skipif(not numpy_available(), reason="numpy required")
class TestDataPlaneEngine:
    def test_execute_scenario_routes_traffic_spec_to_dataplane(self):
        record = execute_scenario(_spec())
        assert record["status"] == "ok"
        assert record["engine"] == "dataplane"
        assert record["traffic"] == "steady"
        _assert_conservation_fields(record)
        assert record["packets_injected"] > 0
        assert record["packets_delivered"] > 0
        assert record["converged"] is True
        assert record["destination_oriented"] is True

    def test_engine_record_conserves_under_link_failures(self):
        record = execute_scenario(
            _spec(failure_model="link-failures", failure_count=3,
                  delay_model="uniform", scheduler_seed=11)
        )
        assert record["status"] == "ok"
        _assert_conservation_fields(record)
        assert record["failures_applied"] + record["partition_skips"] == 3
        assert record["node_steps"] > 0

    def test_engine_is_deterministic(self):
        spec = _spec(topology_seed=8, scheduler_seed=9)
        first = execute_scenario(spec)
        second = execute_scenario(spec)
        volatile = ("wall_time_s", "simulated_time")
        for key in first:
            if key in volatile:
                continue
            assert first[key] == second[key], key

    def test_auto_selection_prefers_dataplane_over_async(self):
        # a spec with both delay model and traffic is a data-plane scenario
        record = execute_scenario(_spec(delay_model="fixed"))
        assert record["engine"] == "dataplane"

    def test_forced_async_engine_rejects_traffic_spec(self):
        record = execute_scenario(_spec(delay_model="fixed"), engine="async")
        assert record["status"] == "error"
        assert "dataplane" in record["error"]

    def test_forced_kernel_and_batch_reject_traffic_spec(self):
        for engine in ("kernel", "batch", "legacy"):
            record = execute_scenario(_spec(), engine=engine)
            assert record["status"] == "error", engine
            assert "traffic" in record["error"], engine

    def test_unknown_algorithm_for_dataplane(self):
        record = execute_scenario(_spec(algorithm="bll"), engine="dataplane")
        assert record["status"] == "error"


class TestSpecTrafficAxis:
    def test_traffic_joins_run_id_only_when_set(self):
        with_traffic = _spec()
        without = _spec(traffic=None)
        assert with_traffic.run_id != without.run_id
        # pre-traffic specs keep their historical run ids (resume safety)
        legacy_identity = without.run_id
        assert "traffic" not in legacy_identity

    def test_unknown_traffic_rejected(self):
        with pytest.raises(ValueError, match="traffic"):
            _spec(traffic="flood").validate()

    def test_traffic_round_trips_through_dict(self):
        spec = _spec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_campaign_expands_traffic_axis(self):
        campaign = CampaignSpec(
            name="t",
            families=("grid",),
            algorithms=("pr",),
            schedulers=("random",),
            sizes=(9,),
            replicates=1,
            traffics=(None, "steady"),
        )
        specs = list(campaign.expand())
        assert campaign.run_count == len(specs) == 2
        assert {s.traffic for s in specs} == {None, "steady"}

    def test_traffic_plus_mobility_cells_are_dropped(self):
        campaign = CampaignSpec(
            name="t",
            families=("geometric",),
            algorithms=("pr",),
            schedulers=("random",),
            sizes=(16,),
            replicates=1,
            failure_models=(("mobility", 2),),
            traffics=("steady",),
        )
        assert campaign.run_count == 0
