"""Unit tests for the derived properties (destination orientation, confluence)."""

from __future__ import annotations

import pytest

from repro.automata.executions import run
from repro.core.full_reversal import FullReversal
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.schedulers.adversarial import AdversarialScheduler, LazyScheduler
from repro.schedulers.base import RoundRobinScheduler
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.random_scheduler import RandomScheduler
from repro.schedulers.sequential import SequentialScheduler
from repro.verification.properties import (
    check_confluence,
    check_destination_oriented_at_quiescence,
    check_sinks_are_independent,
)


class TestDestinationOrientedAtQuiescence:
    @pytest.mark.parametrize(
        "automaton_class",
        [PartialReversal, OneStepPartialReversal, NewPartialReversal, FullReversal],
    )
    def test_holds_after_convergence(self, bad_chain, automaton_class):
        automaton = automaton_class(bad_chain)
        result = run(automaton, SequentialScheduler())
        report = check_destination_oriented_at_quiescence(automaton, result.final_state)
        assert report.holds

    def test_vacuous_for_non_quiescent_state(self, bad_chain):
        automaton = PartialReversal(bad_chain)
        report = check_destination_oriented_at_quiescence(automaton, automaton.initial_state())
        assert report.holds
        assert "vacuous" in report.detail

    def test_holds_on_grid(self, bad_grid):
        automaton = NewPartialReversal(bad_grid)
        result = run(automaton, GreedyScheduler())
        assert check_destination_oriented_at_quiescence(automaton, result.final_state).holds


class TestSinkIndependence:
    def test_initial_states(self, bad_chain, bad_grid, diamond):
        for instance in (bad_chain, bad_grid, diamond):
            state = PartialReversal(instance).initial_state()
            assert check_sinks_are_independent(state).holds

    def test_along_execution(self, bad_grid):
        result = run(PartialReversal(bad_grid), GreedyScheduler())
        for state in result.execution.states:
            assert check_sinks_are_independent(state).holds

    def test_along_newpr_execution(self, random_dag):
        result = run(NewPartialReversal(random_dag), RandomScheduler(seed=19))
        for state in result.execution.states:
            assert check_sinks_are_independent(state).holds


class TestConfluence:
    """The final orientation does not depend on the scheduler (diamond property)."""

    def test_pr_confluent_on_grid(self, bad_grid):
        report = check_confluence(
            lambda: PartialReversal(bad_grid),
            [
                GreedyScheduler(),
                SequentialScheduler(),
                RandomScheduler(seed=1),
                RandomScheduler(seed=2),
                AdversarialScheduler(),
                LazyScheduler(),
                RoundRobinScheduler(),
            ],
        )
        assert report.holds

    def test_onestep_confluent_on_chain(self, bad_chain):
        report = check_confluence(
            lambda: OneStepPartialReversal(bad_chain),
            [SequentialScheduler(), RandomScheduler(seed=5), AdversarialScheduler()],
        )
        assert report.holds

    def test_fr_confluent(self, worst_chain):
        report = check_confluence(
            lambda: FullReversal(worst_chain),
            [GreedyScheduler(), SequentialScheduler(), RandomScheduler(seed=9)],
        )
        assert report.holds

    def test_newpr_confluent(self, bad_grid):
        report = check_confluence(
            lambda: NewPartialReversal(bad_grid),
            [SequentialScheduler(), RandomScheduler(seed=3), RoundRobinScheduler()],
        )
        assert report.holds

    def test_non_convergence_reported(self, bad_grid):
        report = check_confluence(
            lambda: FullReversal(bad_grid),
            [SequentialScheduler()],
            max_steps=1,
        )
        assert not report.holds
        assert "did not converge" in report.detail
