"""Unit tests for the Full Reversal baseline."""

from __future__ import annotations

import pytest

from repro.automata.executions import run
from repro.automata.ioa import TransitionError
from repro.core.base import Reverse
from repro.core.full_reversal import FRState, FullReversal
from repro.core.pr import PartialReversal
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.random_scheduler import RandomScheduler
from repro.schedulers.sequential import SequentialScheduler
from repro.analysis.work import count_reversals


class TestSemantics:
    def test_sink_reverses_all_edges(self, diamond):
        automaton = FullReversal(diamond)
        state = automaton.initial_state()
        new_state = automaton.apply(state, Reverse("c"))
        assert new_state.orientation.points_towards("c", "a")
        assert new_state.orientation.points_towards("c", "b")

    def test_counter_increments(self, diamond):
        automaton = FullReversal(diamond)
        s1 = automaton.apply(automaton.initial_state(), Reverse("c"))
        assert s1.count("c") == 1
        assert s1.total_steps() == 1

    def test_reversal_targets_are_all_neighbours(self, diamond):
        automaton = FullReversal(diamond)
        state = automaton.initial_state()
        assert automaton.reversal_targets(state, "c") == diamond.nbrs("c")

    def test_disabled_apply_raises(self, diamond):
        automaton = FullReversal(diamond)
        with pytest.raises(TransitionError):
            automaton.apply(automaton.initial_state(), Reverse("d"))

    def test_stepping_node_becomes_source(self, random_dag):
        automaton = FullReversal(random_dag)
        state = automaton.initial_state()
        sinks = state.sinks()
        assert sinks
        new_state = automaton.apply(state, Reverse(sinks[0]))
        assert new_state.orientation.is_source(sinks[0])

    def test_greedy_action_nodes(self, bad_grid):
        automaton = FullReversal(bad_grid)
        state = automaton.initial_state()
        assert set(automaton.greedy_action_nodes(state)) == set(state.sinks())


class TestAcyclicity:
    """Experiment E9: the folklore FR acyclicity argument, checked empirically."""

    def test_fr_never_creates_a_cycle_on_chain(self, bad_chain):
        result = run(FullReversal(bad_chain), SequentialScheduler())
        assert all(state.is_acyclic() for state in result.execution.states)

    def test_fr_never_creates_a_cycle_on_random_dag(self, random_dag):
        result = run(FullReversal(random_dag), RandomScheduler(seed=13))
        assert all(state.is_acyclic() for state in result.execution.states)

    def test_fr_never_creates_a_cycle_on_grid(self, bad_grid):
        result = run(FullReversal(bad_grid), GreedyScheduler())
        assert all(state.is_acyclic() for state in result.execution.states)


class TestConvergence:
    @pytest.mark.parametrize(
        "scheduler_factory",
        [GreedyScheduler, SequentialScheduler, lambda: RandomScheduler(seed=21)],
    )
    def test_converges(self, bad_chain, scheduler_factory):
        result = run(FullReversal(bad_chain), scheduler_factory())
        assert result.converged
        assert result.final_state.is_destination_oriented()

    def test_signature_ignores_counters(self, diamond):
        # two FR states with the same orientation are behaviourally identical
        automaton = FullReversal(diamond)
        state = automaton.initial_state()
        assert state.signature() == state.graph_signature()


class TestWorkComparison:
    """Experiment E9: PR performs at most as many reversals as FR on these families."""

    def test_pr_not_worse_than_fr_on_bad_chain(self, bad_chain):
        pr_work = count_reversals(PartialReversal(bad_chain), GreedyScheduler())
        fr_work = count_reversals(FullReversal(bad_chain), GreedyScheduler())
        assert pr_work.node_steps <= fr_work.node_steps
        assert pr_work.edge_reversals <= fr_work.edge_reversals

    def test_pr_strictly_better_on_worst_chain(self, worst_chain):
        pr_work = count_reversals(PartialReversal(worst_chain), GreedyScheduler())
        fr_work = count_reversals(FullReversal(worst_chain), GreedyScheduler())
        assert pr_work.node_steps < fr_work.node_steps

    def test_fr_work_on_bad_chain_is_quadratic_shape(self):
        # on the k-bad-node chain FR performs k + (k-1) + ... + 1 node steps
        from repro.topology.generators import worst_case_chain_instance

        for k in (2, 3, 4, 5):
            instance = worst_case_chain_instance(k)
            work = count_reversals(FullReversal(instance), GreedyScheduler())
            assert work.node_steps == k * (k + 1) // 2
