"""Unit tests for the shared base classes and small framework pieces.

Covers the pieces not exercised directly elsewhere: the :class:`Reverse`
action, the :class:`LinkReversalState` protocol (signatures, hashing,
cross-algorithm graph signatures), the default methods of
:class:`IOAutomaton`, and the public package surface (``repro.__all__``).
"""

from __future__ import annotations

import pytest

import repro
from repro.automata.ioa import IOAutomaton
from repro.core.base import LinkReversalState, Reverse
from repro.core.full_reversal import FullReversal
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal


class TestReverseAction:
    def test_actors(self):
        assert Reverse("x").actors() == ("x",)

    def test_hashable_and_equal(self):
        assert Reverse(3) == Reverse(3)
        assert hash(Reverse(3)) == hash(Reverse(3))
        assert Reverse(3) != Reverse(4)

    def test_str(self):
        assert str(Reverse("a")) == "reverse(a)"


class TestLinkReversalStateProtocol:
    def test_dir_view_matches_orientation(self, diamond):
        state = OneStepPartialReversal(diamond).initial_state()
        for u, v in diamond.initial_edges:
            assert state.dir(u, v) is state.orientation.dir(u, v)

    def test_graph_signature_is_shared_across_algorithms(self, diamond):
        """States of different automata with the same orientation have equal graph signatures."""
        signatures = set()
        for automaton_class in (PartialReversal, OneStepPartialReversal,
                                NewPartialReversal, FullReversal):
            signatures.add(automaton_class(diamond).initial_state().graph_signature())
        assert len(signatures) == 1

    def test_full_signature_distinguishes_algorithms_bookkeeping(self, diamond):
        pr_state = OneStepPartialReversal(diamond).initial_state()
        newpr_state = NewPartialReversal(diamond).initial_state()
        # different state types never compare equal even with identical graphs
        assert pr_state != newpr_state

    def test_states_usable_as_dict_keys(self, diamond):
        automaton = NewPartialReversal(diamond)
        s0 = automaton.initial_state()
        s1 = automaton.apply(s0, Reverse("c"))
        table = {s0: "initial", s1: "after-c"}
        assert table[automaton.initial_state()] == "initial"

    def test_sinks_and_is_sink_agree(self, bad_grid):
        state = FullReversal(bad_grid).initial_state()
        assert all(state.is_sink(u) for u in state.sinks())

    def test_base_state_copy(self, diamond):
        state = LinkReversalState(diamond, diamond.initial_orientation())
        clone = state.copy()
        clone.orientation.reverse_edge("a", "c")
        assert state.orientation.points_towards("a", "c")


class TestIOAutomatonDefaults:
    def test_is_quiescent(self, good_chain, bad_chain):
        assert PartialReversal(good_chain).is_quiescent(
            PartialReversal(good_chain).initial_state()
        )
        assert not PartialReversal(bad_chain).is_quiescent(
            PartialReversal(bad_chain).initial_state()
        )

    def test_has_enabled_action(self, bad_chain):
        automaton = NewPartialReversal(bad_chain)
        assert automaton.has_enabled_action(automaton.initial_state())

    def test_step_alias(self, diamond):
        automaton = NewPartialReversal(diamond)
        state = automaton.initial_state()
        assert automaton.step(state, Reverse("c")).signature() == automaton.apply(
            state, Reverse("c")
        ).signature()

    def test_run_to_quiescence_helper(self, bad_chain):
        from repro.schedulers.sequential import SequentialScheduler

        automaton = OneStepPartialReversal(bad_chain)
        result = automaton.run_to_quiescence(SequentialScheduler())
        assert result.converged
        assert result.final_state.is_destination_oriented()

    def test_enabled_single_actions_default_filter(self, bad_grid):
        automaton = PartialReversal(bad_grid)
        state = automaton.initial_state()
        singles = list(automaton.enabled_single_actions(state))
        assert all(len(action.actors()) == 1 for action in singles)

    def test_repr(self, diamond):
        assert "PartialReversal" in repr(PartialReversal(diamond))


class TestPackageSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_top_level_quickstart_flow(self):
        instance = repro.chain_instance(5, towards_destination=False)
        result = repro.run(repro.PartialReversal(instance), repro.GreedyScheduler())
        assert result.final_state.is_destination_oriented()
        assert repro.is_acyclic(result.final_state)

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.applications
        import repro.automata
        import repro.distributed
        import repro.exploration
        import repro.io
        import repro.routing
        import repro.schedulers
        import repro.topology
        import repro.verification

        assert repro.routing.ToraRouter is not None
