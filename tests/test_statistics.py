"""Unit tests for the small statistics helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis.statistics import (
    evaluate_polynomial,
    fit_polynomial,
    mean,
    percentile,
    quadratic_fit_r2,
    r_squared,
)


class TestMean:
    def test_simple(self):
        assert mean([1, 2, 3, 4]) == 2.5

    def test_single(self):
        assert mean([7.0]) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_min_max(self):
        values = [5, 1, 9, 3]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1, 2], 150)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_single_value(self):
        assert percentile([4], 75) == 4


class TestPolynomialFit:
    def test_exact_line(self):
        xs = [0, 1, 2, 3]
        ys = [1, 3, 5, 7]  # y = 2x + 1
        coefficients = fit_polynomial(xs, ys, degree=1)
        assert math.isclose(coefficients[0], 2.0, abs_tol=1e-9)
        assert math.isclose(coefficients[1], 1.0, abs_tol=1e-9)

    def test_exact_quadratic(self):
        xs = list(range(6))
        ys = [3 * x * x - 2 * x + 5 for x in xs]
        coefficients = fit_polynomial(xs, ys, degree=2)
        assert math.isclose(coefficients[0], 3.0, abs_tol=1e-8)
        assert math.isclose(coefficients[1], -2.0, abs_tol=1e-8)
        assert math.isclose(coefficients[2], 5.0, abs_tol=1e-8)

    def test_evaluate(self):
        assert evaluate_polynomial([2, -1, 3], 2) == 2 * 4 - 2 + 3

    def test_r_squared_perfect(self):
        xs = list(range(5))
        ys = [2 * x + 1 for x in xs]
        coefficients = fit_polynomial(xs, ys, degree=1)
        assert math.isclose(r_squared(xs, ys, coefficients), 1.0, abs_tol=1e-12)

    def test_r_squared_poor_for_wrong_model(self):
        xs = list(range(8))
        ys = [x ** 3 for x in xs]
        coefficients = fit_polynomial(xs, ys, degree=1)
        assert r_squared(xs, ys, coefficients) < 0.95

    def test_quadratic_fit_r2(self):
        xs = [float(x) for x in range(1, 10)]
        ys = [x * (x + 1) / 2 for x in xs]
        coefficients, r2 = quadratic_fit_r2(xs, ys)
        assert math.isclose(coefficients[0], 0.5, abs_tol=1e-8)
        assert r2 > 0.9999

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_polynomial([1, 2], [1], degree=1)

    def test_underdetermined(self):
        with pytest.raises(ValueError):
            fit_polynomial([1, 2], [1, 2], degree=2)

    def test_constant_data_r_squared(self):
        xs = [1, 2, 3]
        ys = [5, 5, 5]
        coefficients = fit_polynomial(xs, ys, degree=1)
        assert r_squared(xs, ys, coefficients) == 1.0
