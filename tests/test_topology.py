"""Unit tests for the topology generators, geometric networks and mobility."""

from __future__ import annotations

import math

import pytest

from repro.core.graph import LinkReversalInstance
from repro.topology.generators import (
    chain_instance,
    grid_instance,
    layered_instance,
    random_dag_instance,
    star_instance,
    tree_instance,
    worst_case_chain_instance,
)
from repro.topology.manet import GeometricNetwork, random_geometric_instance
from repro.topology.mobility import RandomWaypointMobility


class TestChain:
    def test_towards_destination_is_oriented(self):
        instance = chain_instance(6, towards_destination=True)
        assert instance.initial_orientation().is_destination_oriented()

    def test_away_from_destination_all_bad(self):
        instance = chain_instance(6, towards_destination=False)
        assert instance.bad_nodes() == frozenset(range(1, 6))

    def test_destination_in_middle(self):
        instance = chain_instance(7, towards_destination=True, destination_at_end=False)
        assert instance.destination == 3
        assert instance.initial_orientation().is_destination_oriented()

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            chain_instance(1)

    def test_worst_case_chain(self):
        instance = worst_case_chain_instance(5)
        assert instance.node_count == 6
        assert len(instance.bad_nodes()) == 5

    def test_worst_case_needs_positive_bad_count(self):
        with pytest.raises(ValueError):
            worst_case_chain_instance(0)


class TestStarTreeGridLayered:
    def test_star_center_destination(self):
        instance = star_instance(5, destination_is_center=True)
        assert instance.destination == 0
        assert len(instance.initial_sinks()) == 5  # every leaf is a sink

    def test_star_leaf_destination(self):
        instance = star_instance(5, destination_is_center=False)
        assert instance.destination == 1
        assert instance.is_initially_acyclic()

    def test_star_needs_a_leaf(self):
        with pytest.raises(ValueError):
            star_instance(0)

    def test_tree_is_tree(self):
        instance = tree_instance(15, seed=3)
        assert instance.edge_count == 14
        assert instance.is_connected()
        assert instance.is_initially_acyclic()

    def test_tree_oriented_flag(self):
        oriented = tree_instance(10, seed=1, oriented_towards_destination=True)
        assert oriented.initial_orientation().is_destination_oriented()
        unoriented = tree_instance(10, seed=1, oriented_towards_destination=False)
        assert unoriented.bad_nodes()

    def test_tree_too_small(self):
        with pytest.raises(ValueError):
            tree_instance(1)

    def test_grid_shape(self):
        instance = grid_instance(3, 4)
        assert instance.node_count == 12
        assert instance.edge_count == 3 * 3 + 2 * 4  # horizontal + vertical edges

    def test_grid_oriented(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        assert instance.initial_orientation().is_destination_oriented()

    def test_grid_unoriented_has_bad_nodes(self):
        instance = grid_instance(3, 3, oriented_towards_destination=False)
        assert instance.bad_nodes()

    def test_grid_invalid_dimensions(self):
        with pytest.raises(ValueError):
            grid_instance(0, 3)
        with pytest.raises(ValueError):
            grid_instance(1, 1)

    def test_layered_structure(self):
        instance = layered_instance(4, 3, seed=2)
        assert instance.node_count == 1 + 3 * 3
        assert instance.is_initially_acyclic()
        assert instance.is_connected()

    def test_layered_validation(self):
        with pytest.raises(ValueError):
            layered_instance(1, 3)
        with pytest.raises(ValueError):
            layered_instance(3, 0)


class TestRandomDag:
    def test_connected_and_acyclic(self):
        for seed in range(5):
            instance = random_dag_instance(15, edge_probability=0.2, seed=seed)
            assert instance.is_connected()
            assert instance.is_initially_acyclic()

    def test_reproducible(self):
        a = random_dag_instance(12, seed=4)
        b = random_dag_instance(12, seed=4)
        assert a.initial_edges == b.initial_edges

    def test_destination_is_node_zero(self):
        assert random_dag_instance(8, seed=0).destination == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            random_dag_instance(1)
        with pytest.raises(ValueError):
            random_dag_instance(5, edge_probability=1.5)

    def test_orient_fraction_keeps_dag(self):
        instance = random_dag_instance(
            15, edge_probability=0.3, seed=2, orient_fraction_towards_destination=0.5
        )
        assert instance.is_initially_acyclic()


class TestGeometricNetwork:
    def test_links_are_symmetric_within_radius(self):
        network = GeometricNetwork(
            positions={0: (0.0, 0.0), 1: (0.1, 0.0), 2: (0.9, 0.9)},
            radius=0.2,
            destination=0,
        )
        links = network.links()
        assert frozenset((0, 1)) in links
        assert frozenset((0, 2)) not in links

    def test_distance(self):
        network = GeometricNetwork(
            positions={0: (0.0, 0.0), 1: (0.3, 0.4)}, radius=1.0, destination=0
        )
        assert math.isclose(network.distance(0, 1), 0.5)

    def test_destination_must_exist(self):
        with pytest.raises(ValueError):
            GeometricNetwork(positions={0: (0, 0)}, radius=0.5, destination=9)

    def test_radius_positive(self):
        with pytest.raises(ValueError):
            GeometricNetwork(positions={0: (0, 0)}, radius=0.0, destination=0)

    def test_to_instance_is_destination_oriented_dag(self):
        instance, network = random_geometric_instance(20, radius=0.4, seed=3)
        assert instance.is_initially_acyclic()
        assert instance.is_connected()
        assert instance.initial_orientation().is_destination_oriented()

    def test_random_geometric_reproducible(self):
        a, _ = random_geometric_instance(15, radius=0.4, seed=5)
        b, _ = random_geometric_instance(15, radius=0.4, seed=5)
        assert a.initial_edges == b.initial_edges

    def test_unreachable_radius_raises(self):
        with pytest.raises(RuntimeError):
            random_geometric_instance(30, radius=0.01, seed=0, max_attempts=3)

    def test_moved_returns_new_network(self):
        _, network = random_geometric_instance(10, radius=0.4, seed=1)
        moved = network.moved({1: (0.5, 0.5)})
        assert moved.positions[1] == (0.5, 0.5)
        assert network.positions[1] != (0.5, 0.5) or network.positions[1] == (0.5, 0.5)
        assert moved is not network


class TestMobility:
    def test_step_returns_change(self):
        _, network = random_geometric_instance(12, radius=0.4, seed=2)
        mobility = RandomWaypointMobility(network, speed=0.1, seed=3)
        change = mobility.step()
        assert change.step == 1
        assert isinstance(change.is_empty, bool)

    def test_positions_change_over_time(self):
        _, network = random_geometric_instance(12, radius=0.4, seed=2)
        mobility = RandomWaypointMobility(network, speed=0.1, seed=3)
        before = mobility.positions()
        mobility.run(5)
        after = mobility.positions()
        moved_nodes = [u for u in before if before[u] != after[u]]
        assert moved_nodes

    def test_destination_pinned(self):
        _, network = random_geometric_instance(12, radius=0.4, seed=2)
        mobility = RandomWaypointMobility(network, speed=0.1, seed=3, pin_destination=True)
        before = mobility.positions()[network.destination]
        mobility.run(10)
        assert mobility.positions()[network.destination] == before

    def test_speed_must_be_positive(self):
        _, network = random_geometric_instance(10, radius=0.4, seed=2)
        with pytest.raises(ValueError):
            RandomWaypointMobility(network, speed=0.0)

    def test_run_length(self):
        _, network = random_geometric_instance(10, radius=0.4, seed=2)
        mobility = RandomWaypointMobility(network, speed=0.05, seed=1)
        changes = mobility.run(7)
        assert len(changes) == 7
        assert mobility.step_count == 7

    def test_changes_reference_real_links(self):
        _, network = random_geometric_instance(15, radius=0.35, seed=4)
        mobility = RandomWaypointMobility(network, speed=0.15, seed=4)
        all_nodes = set(network.nodes)
        for change in mobility.run(10):
            for link in change.removed_links | change.added_links:
                assert link <= all_nodes
