"""Unit tests for the routing layer (experiment E15)."""

from __future__ import annotations

import pytest

from repro.automata.executions import run
from repro.core.pr import PartialReversal
from repro.core.full_reversal import FullReversal
from repro.routing.dag_routing import RoutingTable, extract_route, route_stretch
from repro.routing.maintenance import RouteMaintenanceSimulation, repair_with_automaton
from repro.schedulers.greedy import GreedyScheduler
from repro.topology.generators import chain_instance, grid_instance
from repro.topology.manet import random_geometric_instance
from repro.topology.mobility import RandomWaypointMobility
from repro.distributed.protocol import ReversalMode


class TestRoutingTable:
    def test_oriented_graph_routes_every_node(self, good_chain):
        table = RoutingTable.from_orientation(good_chain.initial_orientation())
        assert table.routable_fraction() == 1.0
        assert all(table.has_route(u) for u in good_chain.nodes)

    def test_unoriented_graph_has_missing_routes(self, bad_chain):
        table = RoutingTable.from_orientation(bad_chain.initial_orientation())
        assert table.routable_fraction() < 1.0
        assert not table.has_route(4)

    def test_route_reaches_destination(self, good_chain):
        table = RoutingTable.from_orientation(good_chain.initial_orientation())
        route = table.route(4)
        assert route[0] == 4
        assert route[-1] == good_chain.destination

    def test_route_of_destination_is_itself(self, good_chain):
        table = RoutingTable.from_orientation(good_chain.initial_orientation())
        assert table.route(0) == (0,)

    def test_route_empty_when_unroutable(self, bad_chain):
        table = RoutingTable.from_orientation(bad_chain.initial_orientation())
        assert table.route(3) == ()

    def test_stretch_is_one_on_shortest_path_dag(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        table = RoutingTable.from_orientation(instance.initial_orientation())
        for node in instance.nodes:
            if node == instance.destination:
                continue
            assert table.stretch(node) == 1.0
        assert table.average_stretch() == 1.0

    def test_stretch_after_link_reversal_can_exceed_one(self):
        instance = grid_instance(3, 3, oriented_towards_destination=False)
        result = run(PartialReversal(instance), GreedyScheduler())
        table = RoutingTable.from_orientation(result.final_state.orientation)
        assert table.routable_fraction() == 1.0
        assert table.average_stretch() >= 1.0

    def test_next_hop_points_downhill(self, good_chain):
        table = RoutingTable.from_orientation(good_chain.initial_orientation())
        for node in good_chain.nodes:
            hop = table.next_hop[node]
            if hop is not None:
                assert table.directed_distance[hop] < table.directed_distance[node]

    def test_helper_functions(self, good_chain):
        orientation = good_chain.initial_orientation()
        assert extract_route(orientation, 3) == (3, 2, 1, 0)
        assert route_stretch(orientation, 3) == 1.0


class TestSynchronousRepair:
    def test_repair_restores_routes(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        orientation = instance.initial_orientation()
        new_instance, result = repair_with_automaton(
            instance, orientation, failed_link=(1, 0), algorithm_factory=PartialReversal
        )
        assert result.converged
        assert result.final_state.is_destination_oriented()
        assert new_instance.edge_count == instance.edge_count - 1

    def test_repair_with_fr(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        orientation = instance.initial_orientation()
        _, result = repair_with_automaton(
            instance, orientation, failed_link=(3, 0), algorithm_factory=FullReversal
        )
        assert result.final_state.is_destination_oriented()

    def test_unknown_link_rejected(self):
        instance = grid_instance(3, 3)
        with pytest.raises(ValueError):
            repair_with_automaton(
                instance, instance.initial_orientation(), (0, 8), PartialReversal
            )


class TestRouteMaintenanceSimulation:
    def test_single_failure_recovery(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        simulation = RouteMaintenanceSimulation(instance, seed=1)
        result = simulation.fail_links([(4, 1)])
        assert not result.partitioned
        assert result.destination_oriented
        assert result.routable_fraction == 1.0

    def test_failure_statistics_recorded(self):
        instance = grid_instance(4, 4, oriented_towards_destination=True)
        simulation = RouteMaintenanceSimulation(instance, seed=2)
        simulation.fail_links([(5, 1)])
        simulation.fail_links([(10, 6)])
        summary = simulation.summary()
        assert summary["failures"] == 2
        assert summary["recovered_fraction"] == 1.0

    def test_random_failures(self):
        instance = grid_instance(4, 4, oriented_towards_destination=True)
        simulation = RouteMaintenanceSimulation(instance, seed=3)
        results = simulation.fail_random_links(3)
        assert len(results) == 3
        for result in results:
            if not result.partitioned:
                assert result.destination_oriented

    def test_full_mode_also_recovers(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        simulation = RouteMaintenanceSimulation(instance, mode=ReversalMode.FULL, seed=4)
        result = simulation.fail_links([(4, 1)])
        assert result.destination_oriented

    def test_empty_summary(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        simulation = RouteMaintenanceSimulation(instance, seed=5)
        summary = simulation.summary()
        assert summary["failures"] == 0

    def test_geometric_network_with_mobility_changes(self):
        instance, network = random_geometric_instance(16, radius=0.45, seed=7)
        simulation = RouteMaintenanceSimulation(instance, seed=7)
        mobility = RandomWaypointMobility(network, speed=0.03, seed=7)
        changes = mobility.run(5)
        results = simulation.apply_topology_changes(changes)
        # every non-partitioning change is recovered from
        for result in results:
            if not result.partitioned:
                assert result.destination_oriented
