"""Unit tests for the routing layer (experiment E15)."""

from __future__ import annotations

import pytest

from repro.automata.executions import run
from repro.core.pr import PartialReversal
from repro.core.full_reversal import FullReversal
from repro.core.graph import LinkReversalInstance
from repro.routing.dag_routing import (
    ROUTE_DELIVERED,
    ROUTE_LOOP,
    ROUTE_NO_ROUTE,
    ROUTE_TRUNCATED,
    RoutingTable,
    extract_route,
    route_stretch,
    undirected_distances,
)
from repro.routing.maintenance import RouteMaintenanceSimulation, repair_with_automaton
from repro.schedulers.greedy import GreedyScheduler
from repro.topology.generators import chain_instance, grid_instance
from repro.topology.manet import random_geometric_instance
from repro.topology.mobility import RandomWaypointMobility
from repro.distributed.protocol import ReversalMode


class TestRoutingTable:
    def test_oriented_graph_routes_every_node(self, good_chain):
        table = RoutingTable.from_orientation(good_chain.initial_orientation())
        assert table.routable_fraction() == 1.0
        assert all(table.has_route(u) for u in good_chain.nodes)

    def test_unoriented_graph_has_missing_routes(self, bad_chain):
        table = RoutingTable.from_orientation(bad_chain.initial_orientation())
        assert table.routable_fraction() < 1.0
        assert not table.has_route(4)

    def test_route_reaches_destination(self, good_chain):
        table = RoutingTable.from_orientation(good_chain.initial_orientation())
        route = table.route(4)
        assert route[0] == 4
        assert route[-1] == good_chain.destination

    def test_route_of_destination_is_itself(self, good_chain):
        table = RoutingTable.from_orientation(good_chain.initial_orientation())
        assert table.route(0) == (0,)

    def test_route_empty_when_unroutable(self, bad_chain):
        table = RoutingTable.from_orientation(bad_chain.initial_orientation())
        assert table.route(3) == ()

    def test_stretch_is_one_on_shortest_path_dag(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        table = RoutingTable.from_orientation(instance.initial_orientation())
        for node in instance.nodes:
            if node == instance.destination:
                continue
            assert table.stretch(node) == 1.0
        assert table.average_stretch() == 1.0

    def test_stretch_after_link_reversal_can_exceed_one(self):
        instance = grid_instance(3, 3, oriented_towards_destination=False)
        result = run(PartialReversal(instance), GreedyScheduler())
        table = RoutingTable.from_orientation(result.final_state.orientation)
        assert table.routable_fraction() == 1.0
        assert table.average_stretch() >= 1.0

    def test_next_hop_points_downhill(self, good_chain):
        table = RoutingTable.from_orientation(good_chain.initial_orientation())
        for node in good_chain.nodes:
            hop = table.next_hop[node]
            if hop is not None:
                assert table.directed_distance[hop] < table.directed_distance[node]

    def test_helper_functions(self, good_chain):
        orientation = good_chain.initial_orientation()
        assert extract_route(orientation, 3) == (3, 2, 1, 0)
        assert route_stretch(orientation, 3) == 1.0


class TestSynchronousRepair:
    def test_repair_restores_routes(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        orientation = instance.initial_orientation()
        new_instance, result = repair_with_automaton(
            instance, orientation, failed_link=(1, 0), algorithm_factory=PartialReversal
        )
        assert result.converged
        assert result.final_state.is_destination_oriented()
        assert new_instance.edge_count == instance.edge_count - 1

    def test_repair_with_fr(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        orientation = instance.initial_orientation()
        _, result = repair_with_automaton(
            instance, orientation, failed_link=(3, 0), algorithm_factory=FullReversal
        )
        assert result.final_state.is_destination_oriented()

    def test_unknown_link_rejected(self):
        instance = grid_instance(3, 3)
        with pytest.raises(ValueError):
            repair_with_automaton(
                instance, instance.initial_orientation(), (0, 8), PartialReversal
            )


class TestRouteMaintenanceSimulation:
    def test_single_failure_recovery(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        simulation = RouteMaintenanceSimulation(instance, seed=1)
        result = simulation.fail_links([(4, 1)])
        assert not result.partitioned
        assert result.destination_oriented
        assert result.routable_fraction == 1.0

    def test_failure_statistics_recorded(self):
        instance = grid_instance(4, 4, oriented_towards_destination=True)
        simulation = RouteMaintenanceSimulation(instance, seed=2)
        simulation.fail_links([(5, 1)])
        simulation.fail_links([(10, 6)])
        summary = simulation.summary()
        assert summary["failures"] == 2
        assert summary["recovered_fraction"] == 1.0

    def test_random_failures(self):
        instance = grid_instance(4, 4, oriented_towards_destination=True)
        simulation = RouteMaintenanceSimulation(instance, seed=3)
        results = simulation.fail_random_links(3)
        assert len(results) == 3
        for result in results:
            if not result.partitioned:
                assert result.destination_oriented

    def test_full_mode_also_recovers(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        simulation = RouteMaintenanceSimulation(instance, mode=ReversalMode.FULL, seed=4)
        result = simulation.fail_links([(4, 1)])
        assert result.destination_oriented

    def test_empty_summary(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        simulation = RouteMaintenanceSimulation(instance, seed=5)
        summary = simulation.summary()
        assert summary["failures"] == 0

    def test_geometric_network_with_mobility_changes(self):
        instance, network = random_geometric_instance(16, radius=0.45, seed=7)
        simulation = RouteMaintenanceSimulation(instance, seed=7)
        mobility = RandomWaypointMobility(network, speed=0.03, seed=7)
        changes = mobility.run(5)
        results = simulation.apply_topology_changes(changes)
        # every non-partitioning change is recovered from
        for result in results:
            if not result.partitioned:
                assert result.destination_oriented


class TestRoutingEdgeCases:
    """Partitioned graphs, tie-break determinism and route verdicts."""

    def _partitioned_instance(self) -> LinkReversalInstance:
        # 2 -> 1 -> 0 (destination) plus a disconnected island 4 -> 3
        return LinkReversalInstance(
            nodes=(0, 1, 2, 3, 4),
            destination=0,
            initial_edges=((1, 0), (2, 1), (4, 3)),
        )

    def test_stretch_undefined_on_partitioned_component(self):
        table = RoutingTable.from_orientation(
            self._partitioned_instance().initial_orientation()
        )
        # the connected side routes at stretch 1.0
        assert table.stretch(2) == 1.0
        # island nodes have no undirected path to the destination: stretch
        # is undefined (None), never 0.0 or infinity
        assert table.stretch(3) is None
        assert table.stretch(4) is None
        # the mean covers only nodes with a defined stretch
        assert table.average_stretch() == 1.0
        # island nodes are absent from the undirected distance map entirely
        distances = undirected_distances(self._partitioned_instance())
        assert set(distances) == {0, 1, 2}

    def test_destination_distance_zero_is_not_conflated_with_missing(self):
        table = RoutingTable.from_orientation(
            self._partitioned_instance().initial_orientation()
        )
        # the destination's undirected distance is a legitimate 0 — the old
        # truthiness check (`if not shortest`) returned None here
        assert table.undirected_distance[0] == 0
        assert table.stretch(0) == 1.0

    def test_routable_fraction_under_total_disconnection(self):
        instance = LinkReversalInstance(
            nodes=(0, 1, 2, 3), destination=0, initial_edges=()
        )
        table = RoutingTable.from_orientation(instance.initial_orientation())
        # only the destination can "route" (to itself); nobody else can
        assert table.routable_fraction() == 1 / 4
        assert table.average_stretch() is None
        for node in (1, 2, 3):
            verdict, path = table.route_with_verdict(node)
            assert verdict == ROUTE_NO_ROUTE
            assert path == (node,)

    def test_next_hop_tie_break_is_node_order_independent(self):
        # node 3 has two out-neighbours at equal directed distance; the
        # chosen hop must not depend on the instance's node-list order
        edges = ((1, 0), (2, 0), (3, 1), (3, 2))
        orderings = [(0, 1, 2, 3), (3, 2, 1, 0), (2, 0, 3, 1)]
        hops = set()
        for nodes in orderings:
            instance = LinkReversalInstance(
                nodes=nodes, destination=0, initial_edges=edges
            )
            table = RoutingTable.from_orientation(instance.initial_orientation())
            hops.add(table.next_hop[3])
        assert len(hops) == 1

    def test_route_verdict_distinguishes_loop_from_no_route(self):
        # a hand-built snapshot modelling a table patched mid-cascade:
        # 1 -> 2 -> 3 -> 1 is a transient cycle, 4 is a dead end
        instance = LinkReversalInstance(
            nodes=(0, 1, 2, 3, 4),
            destination=0,
            initial_edges=((1, 0), (2, 1), (3, 2), (4, 3), (3, 1)),
        )
        table = RoutingTable(
            instance,
            next_hop={0: None, 1: 2, 2: 3, 3: 1, 4: None},
            directed_distance={0: 0},
            undirected_distance={0: 0, 1: 1, 2: 2, 3: 2, 4: 3},
        )
        verdict, path = table.route_with_verdict(1)
        assert verdict == ROUTE_LOOP
        # the walk stops at the first revisit, not the hop budget
        assert path == (1, 2, 3, 1)
        assert table.route(1) == ()
        assert table.stretch(1) is None
        verdict, path = table.route_with_verdict(4)
        assert verdict == ROUTE_NO_ROUTE
        assert table.route(4) == ()

    def test_route_verdict_truncated_by_explicit_hop_budget(self):
        instance = chain_instance(6, towards_destination=True)
        table = RoutingTable.from_orientation(instance.initial_orientation())
        verdict, path = table.route_with_verdict(5, max_hops=2)
        assert verdict == ROUTE_TRUNCATED
        assert len(path) == 3
        verdict, _ = table.route_with_verdict(5)
        assert verdict == ROUTE_DELIVERED

    def test_route_mid_reversal_cascade_is_delivered_or_no_route(self):
        # snapshots of a *real* cascade stay acyclic (the invariant the
        # paper proves), so every verdict is delivered or no-route; route()
        # returning () must always mean a non-delivered verdict
        instance = grid_instance(3, 3, oriented_towards_destination=False)
        automaton = PartialReversal(instance)
        state = automaton.initial_state()
        scheduler = GreedyScheduler()
        for _ in range(5):
            result = run(
                automaton, scheduler, max_steps=1, initial_state=state,
                record_states=False,
            )
            state = result.final_state
            table = RoutingTable.from_orientation(state.orientation)
            for node in instance.nodes:
                verdict, _ = table.route_with_verdict(node)
                assert verdict in (ROUTE_DELIVERED, ROUTE_NO_ROUTE)
                if verdict == ROUTE_DELIVERED:
                    assert table.route(node) != ()
                else:
                    assert table.route(node) == ()
