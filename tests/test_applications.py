"""Unit tests for the leader-election and mutual-exclusion applications (E16)."""

from __future__ import annotations

import pytest

from repro.applications.leader_election import LeaderElectionService
from repro.applications.mutual_exclusion import TokenMutex
from repro.core.full_reversal import FullReversal
from repro.topology.generators import chain_instance, grid_instance, random_dag_instance


class TestLeaderElection:
    def test_initial_leader_is_destination(self, small_grid):
        service = LeaderElectionService(small_grid)
        assert service.current_leader() == small_grid.destination
        assert service.is_leader_oriented()

    def test_failover_elects_highest_id(self, small_grid):
        service = LeaderElectionService(small_grid)
        report = service.fail_leader()
        assert report.failed_leader == 0
        assert report.new_leader == max(u for u in small_grid.nodes if u != 0)
        assert service.is_leader_oriented()

    def test_reorientation_reported(self, small_grid):
        service = LeaderElectionService(small_grid)
        report = service.fail_leader()
        assert report.destination_oriented
        assert report.surviving_nodes == small_grid.node_count - 1
        assert report.rounds >= 0

    def test_successive_failovers(self):
        instance = grid_instance(4, 4, oriented_towards_destination=True)
        service = LeaderElectionService(instance)
        leaders = [service.current_leader()]
        for _ in range(3):
            report = service.fail_leader()
            leaders.append(report.new_leader)
            assert service.is_leader_oriented()
        assert len(set(leaders)) == len(leaders)  # a fresh leader every time

    def test_history_is_recorded(self, small_grid):
        service = LeaderElectionService(small_grid)
        service.fail_leader()
        service.fail_leader()
        assert len(service.history) == 2

    def test_orientation_is_acyclic_after_election(self, small_grid):
        service = LeaderElectionService(small_grid)
        service.fail_leader()
        assert service.orientation.is_acyclic()

    def test_disconnecting_failure_rejected(self):
        # a path graph: removing the leader at the end is fine, but build a
        # case where removing it disconnects the rest -> destination in middle
        instance = chain_instance(5, towards_destination=True, destination_at_end=False)
        service = LeaderElectionService(instance)
        with pytest.raises(RuntimeError):
            service.fail_leader()

    def test_custom_algorithm_factory(self, small_grid):
        service = LeaderElectionService(small_grid, algorithm_factory=FullReversal)
        report = service.fail_leader()
        assert report.destination_oriented

    def test_elect_rule_is_deterministic(self, small_grid):
        service = LeaderElectionService(small_grid)
        assert service.elect([3, 7, 5]) == 7
        with pytest.raises(ValueError):
            service.elect([])


class TestTokenMutex:
    def test_initial_holder_is_destination(self, small_grid):
        mutex = TokenMutex(small_grid)
        assert mutex.token_holder() == small_grid.destination
        assert mutex.is_token_oriented()
        assert mutex.is_acyclic()

    def test_grant_moves_token(self, small_grid):
        mutex = TokenMutex(small_grid)
        mutex.request(8)
        report = mutex.grant_next()
        assert report.requester == 8
        assert mutex.token_holder() == 8
        assert mutex.is_token_oriented()

    def test_safety_single_holder_at_all_times(self, small_grid):
        mutex = TokenMutex(small_grid)
        for node in (4, 8, 2, 6):
            mutex.request(node)
        while mutex.pending_requests():
            mutex.grant_next()
            # exactly one holder, and the DAG still points at it
            assert mutex.token_holder() in small_grid.nodes
            assert mutex.is_token_oriented()
            assert mutex.is_acyclic()

    def test_liveness_all_requests_granted_in_order(self, small_grid):
        mutex = TokenMutex(small_grid)
        requests = [5, 2, 7, 1, 8]
        for node in requests:
            mutex.request(node)
        reports = mutex.grant_all()
        assert [r.requester for r in reports] == requests
        assert mutex.pending_requests() == ()

    def test_grant_with_no_requests_returns_none(self, small_grid):
        mutex = TokenMutex(small_grid)
        assert mutex.grant_next() is None

    def test_request_for_current_holder_is_free(self, small_grid):
        mutex = TokenMutex(small_grid)
        mutex.request(small_grid.destination)
        report = mutex.grant_next()
        assert report.request_path_hops == 0
        assert report.reversal_steps == 0

    def test_unknown_node_rejected(self, small_grid):
        mutex = TokenMutex(small_grid)
        with pytest.raises(ValueError):
            mutex.request(99)

    def test_hops_reflect_distance(self, small_grid):
        mutex = TokenMutex(small_grid)
        mutex.request(8)  # opposite corner of the 3x3 grid
        report = mutex.grant_next()
        assert report.request_path_hops >= 4  # at least the Manhattan distance

    def test_works_on_random_dag(self):
        instance = random_dag_instance(15, edge_probability=0.3, seed=5)
        mutex = TokenMutex(instance)
        for node in (3, 9, 14, 1):
            mutex.request(node)
        mutex.grant_all()
        assert mutex.is_token_oriented()
        assert mutex.is_acyclic()

    def test_total_reversal_steps_accumulate(self, small_grid):
        mutex = TokenMutex(small_grid)
        for node in (8, 4):
            mutex.request(node)
        mutex.grant_all()
        assert mutex.total_reversal_steps == sum(r.reversal_steps for r in mutex.grants)

    def test_repeated_requests_from_same_node(self, small_grid):
        mutex = TokenMutex(small_grid)
        mutex.request(8)
        mutex.request(8)
        reports = mutex.grant_all()
        assert len(reports) == 2
        assert reports[1].reversal_steps == 0  # already the holder
