"""Unit tests for the graph substrate (Section 2 system model)."""

from __future__ import annotations

import pytest

from repro.core.graph import (
    EdgeDirection,
    GraphValidationError,
    LinkReversalInstance,
    Orientation,
    all_orientations,
    undirected,
)


def make_triangle() -> LinkReversalInstance:
    """d -> a, d -> b, a -> b (a DAG on a triangle)."""
    return LinkReversalInstance.from_directed_edges(
        nodes=["d", "a", "b"],
        destination="d",
        edges=[("d", "a"), ("d", "b"), ("a", "b")],
    )


class TestEdgeDirection:
    def test_flipped_in(self):
        assert EdgeDirection.IN.flipped() is EdgeDirection.OUT

    def test_flipped_out(self):
        assert EdgeDirection.OUT.flipped() is EdgeDirection.IN

    def test_values_match_paper_terms(self):
        assert EdgeDirection.IN.value == "in"
        assert EdgeDirection.OUT.value == "out"


class TestInstanceConstruction:
    def test_basic_fields(self, bad_chain):
        assert bad_chain.destination == 0
        assert bad_chain.node_count == 5
        assert bad_chain.edge_count == 4

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(GraphValidationError):
            LinkReversalInstance(nodes=(0, 0, 1), destination=0, initial_edges=((0, 1),))

    def test_unknown_destination_rejected(self):
        with pytest.raises(GraphValidationError):
            LinkReversalInstance(nodes=(0, 1), destination=9, initial_edges=((0, 1),))

    def test_edge_to_unknown_node_rejected(self):
        with pytest.raises(GraphValidationError):
            LinkReversalInstance(nodes=(0, 1), destination=0, initial_edges=((0, 5),))

    def test_self_loop_rejected(self):
        with pytest.raises(GraphValidationError):
            LinkReversalInstance(nodes=(0, 1), destination=0, initial_edges=((1, 1),))

    def test_parallel_edge_rejected(self):
        with pytest.raises(GraphValidationError):
            LinkReversalInstance(
                nodes=(0, 1), destination=0, initial_edges=((0, 1), (1, 0))
            )

    def test_from_directed_edges_roundtrip(self, diamond):
        assert set(diamond.nodes) == {"d", "a", "b", "c"}
        assert ("a", "c") in diamond.initial_edges

    def test_from_networkx_and_back(self, bad_chain):
        graph = bad_chain.to_networkx()
        rebuilt = LinkReversalInstance.from_networkx(graph, destination=0)
        assert set(rebuilt.initial_edges) == set(bad_chain.initial_edges)
        assert rebuilt.destination == bad_chain.destination

    def test_relabelled(self, diamond):
        mapping = {"d": 0, "a": 1, "b": 2, "c": 3}
        relabelled = diamond.relabelled(mapping)
        assert relabelled.destination == 0
        assert (1, 3) in relabelled.initial_edges


class TestNeighbourSets:
    def test_nbrs_is_union_of_in_and_out(self, diamond):
        for u in diamond.nodes:
            assert diamond.nbrs(u) == diamond.in_nbrs(u) | diamond.out_nbrs(u)

    def test_in_and_out_disjoint(self, diamond):
        for u in diamond.nodes:
            assert not (diamond.in_nbrs(u) & diamond.out_nbrs(u))

    def test_chain_neighbour_sets(self, bad_chain):
        # edges are 0->1, 1->2, 2->3, 3->4
        assert bad_chain.out_nbrs(0) == frozenset({1})
        assert bad_chain.in_nbrs(0) == frozenset()
        assert bad_chain.in_nbrs(4) == frozenset({3})
        assert bad_chain.out_nbrs(4) == frozenset()
        assert bad_chain.nbrs(2) == frozenset({1, 3})

    def test_degree(self, diamond):
        assert diamond.degree("d") == 2
        assert diamond.degree("c") == 2

    def test_has_edge(self, diamond):
        assert diamond.has_edge("a", "c")
        assert diamond.has_edge("c", "a")
        assert not diamond.has_edge("a", "b")


class TestInstanceStructure:
    def test_non_destination_nodes(self, bad_chain):
        assert bad_chain.non_destination_nodes == (1, 2, 3, 4)

    def test_initial_sinks_of_bad_chain(self, bad_chain):
        # only the far end (node 4) has all incident edges incoming
        assert bad_chain.initial_sinks() == (4,)

    def test_initial_sources_of_bad_chain(self, bad_chain):
        assert bad_chain.initial_sources() == (0,)

    def test_initially_acyclic(self, bad_chain, diamond, random_dag):
        for instance in (bad_chain, diamond, random_dag):
            assert instance.is_initially_acyclic()

    def test_cycle_detected(self):
        instance = LinkReversalInstance(
            nodes=(0, 1, 2),
            destination=0,
            initial_edges=((0, 1), (1, 2), (2, 0)),
        )
        assert not instance.is_initially_acyclic()

    def test_validate_rejects_cycle(self):
        instance = LinkReversalInstance(
            nodes=(0, 1, 2),
            destination=0,
            initial_edges=((0, 1), (1, 2), (2, 0)),
        )
        with pytest.raises(GraphValidationError):
            instance.validate(require_dag=True)

    def test_validate_connectivity(self):
        instance = LinkReversalInstance(
            nodes=(0, 1, 2, 3), destination=0, initial_edges=((0, 1), (2, 3))
        )
        assert not instance.is_connected()
        with pytest.raises(GraphValidationError):
            instance.validate(require_connected=True)

    def test_bad_nodes_of_bad_chain(self, bad_chain):
        assert bad_chain.bad_nodes() == frozenset({1, 2, 3, 4})

    def test_bad_nodes_of_good_chain(self, good_chain):
        assert good_chain.bad_nodes() == frozenset()

    def test_connected(self, bad_chain, diamond):
        assert bad_chain.is_connected()
        assert diamond.is_connected()


class TestOrientation:
    def test_initial_orientation_matches_instance(self, diamond):
        orientation = diamond.initial_orientation()
        assert set(orientation.directed_edges()) == set(diamond.initial_edges)

    def test_dir_view(self, diamond):
        orientation = diamond.initial_orientation()
        assert orientation.dir("d", "a") is EdgeDirection.OUT
        assert orientation.dir("a", "d") is EdgeDirection.IN
        assert orientation.dir("c", "a") is EdgeDirection.IN

    def test_invariant_3_1_by_construction(self, random_dag):
        orientation = random_dag.initial_orientation()
        for u, v in random_dag.initial_edges:
            assert (orientation.dir(u, v) is EdgeDirection.IN) == (
                orientation.dir(v, u) is EdgeDirection.OUT
            )

    def test_head_and_tail(self, diamond):
        orientation = diamond.initial_orientation()
        assert orientation.head("d", "a") == "a"
        assert orientation.tail("d", "a") == "d"

    def test_points_towards(self, diamond):
        orientation = diamond.initial_orientation()
        assert orientation.points_towards("d", "a")
        assert not orientation.points_towards("a", "d")

    def test_reverse_edge(self, diamond):
        orientation = diamond.initial_orientation()
        orientation.reverse_edge("a", "c")
        assert orientation.points_towards("c", "a")
        orientation.reverse_edge("a", "c")
        assert orientation.points_towards("a", "c")

    def test_reverse_edges_from_only_flips_incoming(self, diamond):
        orientation = diamond.initial_orientation()
        # c is a sink: reversing from c flips both edges
        flipped = orientation.reverse_edges_from("c", ["a", "b"])
        assert set(flipped) == {"a", "b"}
        # now nothing points at c, so a second call flips nothing
        assert orientation.reverse_edges_from("c", ["a", "b"]) == ()

    def test_copy_is_independent(self, diamond):
        orientation = diamond.initial_orientation()
        clone = orientation.copy()
        clone.reverse_edge("a", "c")
        assert orientation.points_towards("a", "c")
        assert clone.points_towards("c", "a")

    def test_current_in_out_nbrs(self, diamond):
        orientation = diamond.initial_orientation()
        assert orientation.current_in_nbrs("c") == frozenset({"a", "b"})
        assert orientation.current_out_nbrs("c") == frozenset()
        assert orientation.current_out_nbrs("d") == frozenset({"a", "b"})

    def test_sink_and_source_predicates(self, diamond):
        orientation = diamond.initial_orientation()
        assert orientation.is_sink("c")
        assert orientation.is_source("d")
        assert not orientation.is_sink("a")
        assert not orientation.is_source("a")

    def test_sinks_excludes_destination_by_default(self, good_chain):
        orientation = good_chain.initial_orientation()
        # destination 0 is the only structural sink in a destination-oriented chain
        assert orientation.sinks(exclude_destination=True) == ()
        assert orientation.sinks(exclude_destination=False) == (0,)

    def test_acyclicity_check(self, diamond):
        orientation = diamond.initial_orientation()
        assert orientation.is_acyclic()
        assert orientation.find_cycle() == ()

    def test_cycle_found_when_present(self):
        instance = LinkReversalInstance(
            nodes=(0, 1, 2), destination=0, initial_edges=((0, 1), (1, 2), (0, 2))
        )
        cyclic = Orientation.from_directed_edges(instance, [(0, 1), (1, 2), (2, 0)])
        assert not cyclic.is_acyclic()
        cycle = cyclic.find_cycle()
        assert len(cycle) == 3
        assert set(cycle) == {0, 1, 2}

    def test_path_reachability(self, bad_chain, good_chain):
        assert bad_chain.initial_orientation().nodes_with_path_to_destination() == frozenset({0})
        assert good_chain.initial_orientation().is_destination_oriented()

    def test_shortest_path_to_destination(self, good_chain):
        orientation = good_chain.initial_orientation()
        assert orientation.shortest_path_to_destination(4) == (4, 3, 2, 1, 0)
        assert orientation.shortest_path_to_destination(0) == (0,)

    def test_shortest_path_absent(self, bad_chain):
        orientation = bad_chain.initial_orientation()
        assert orientation.shortest_path_to_destination(4) == ()

    def test_signature_and_hash(self, diamond):
        a = diamond.initial_orientation()
        b = diamond.initial_orientation()
        assert a.signature() == b.signature()
        assert hash(a) == hash(b)
        b.reverse_edge("a", "c")
        assert a.signature() != b.signature()

    def test_orientation_from_bad_edge_rejected(self, diamond):
        with pytest.raises(GraphValidationError):
            Orientation.from_directed_edges(diamond, [("a", "b")])

    def test_orientation_missing_edge_rejected(self, diamond):
        with pytest.raises(GraphValidationError):
            Orientation.from_directed_edges(diamond, [("d", "a")])


class TestAllOrientations:
    def test_count_is_two_to_the_edges(self):
        instance = make_triangle()
        orientations = list(all_orientations(instance))
        assert len(orientations) == 2 ** instance.edge_count

    def test_all_unique(self):
        instance = make_triangle()
        signatures = {o.signature() for o in all_orientations(instance)}
        assert len(signatures) == 2 ** instance.edge_count

    def test_includes_cyclic_and_acyclic(self):
        instance = make_triangle()
        acyclic = [o for o in all_orientations(instance) if o.is_acyclic()]
        cyclic = [o for o in all_orientations(instance) if not o.is_acyclic()]
        # a triangle has 8 orientations, exactly 2 of them are directed cycles
        assert len(cyclic) == 2
        assert len(acyclic) == 6


class TestUndirectedHelper:
    def test_undirected_is_symmetric(self):
        assert undirected(1, 2) == undirected(2, 1)

    def test_undirected_is_frozenset(self):
        assert undirected("a", "b") == frozenset({"a", "b"})
