"""Cross-algorithm confluence suite and the bitmask-signature equivalence oracle.

Two roles:

1. **Confluence / convergence across the whole algorithm zoo** — for a suite
   of small random DAG instances, every automaton (PR, OneStepPR, NewPR, FR,
   BLL) must reach a destination-oriented quiescent state under every
   scheduler, and FR's final orientation must be scheduler independent
   (Full Reversal has no bookkeeping, so its reachable quiescent orientation
   is unique).

2. **Equivalence oracle for the indexed representation** — the library's
   states fingerprint themselves with compact ints (edge-reversal bitmask +
   packed bookkeeping).  Along identical seeded executions we recompute the
   *legacy* tuple signatures (directed edge pairs + sorted per-node
   bookkeeping, exactly what the seed implementation used) and assert the two
   signature schemes induce the same equality relation on every visited
   state.  This proves the bitmask refactor preserves the semantics the
   model checker and the simulation relations depend on.
"""

from __future__ import annotations

import pytest

from repro.automata.executions import run
from repro.core.bll import BinaryLinkLabels
from repro.core.full_reversal import FullReversal
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.schedulers import (
    AdversarialScheduler,
    GreedyScheduler,
    LazyScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    SequentialScheduler,
)
from repro.topology.generators import (
    grid_instance,
    random_dag_instance,
    worst_case_chain_instance,
)

ALGORITHMS = {
    "PR": PartialReversal,
    "OneStepPR": OneStepPartialReversal,
    "NewPR": NewPartialReversal,
    "FR": FullReversal,
    "BLL": BinaryLinkLabels,
}

SCHEDULERS = {
    "greedy": GreedyScheduler,
    "sequential": SequentialScheduler,
    "random": lambda: RandomScheduler(seed=11),
    "adversarial": AdversarialScheduler,
    "lazy": LazyScheduler,
    "round-robin": RoundRobinScheduler,
}


def _instances():
    """Small instances covering random DAGs plus the structured families."""
    suite = {
        "worst-chain-6": worst_case_chain_instance(6),
        "grid-3x3": grid_instance(3, 3, oriented_towards_destination=False),
    }
    for seed in range(4):
        suite[f"random-dag-12-s{seed}"] = random_dag_instance(
            12, edge_probability=0.25, seed=seed
        )
    return suite


# ----------------------------------------------------------------------
# 1. confluence / convergence across algorithms and schedulers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm_name", sorted(ALGORITHMS))
def test_every_algorithm_converges_under_every_scheduler(algorithm_name):
    automaton_factory = ALGORITHMS[algorithm_name]
    for instance_name, instance in _instances().items():
        for scheduler_name, scheduler_factory in SCHEDULERS.items():
            result = run(
                automaton_factory(instance),
                scheduler_factory(),
                record_states=False,
            )
            context = f"{algorithm_name}/{instance_name}/{scheduler_name}"
            assert result.converged, f"{context}: did not reach quiescence"
            final = result.final_state
            assert final.is_destination_oriented(), (
                f"{context}: quiescent but not destination oriented"
            )
            assert final.sinks() == (), f"{context}: quiescent state still has sinks"
            assert final.is_acyclic(), f"{context}: final orientation has a cycle"


def test_fr_final_orientation_is_scheduler_independent():
    """FR is memoryless, so its quiescent orientation is unique per instance."""
    for instance_name, instance in _instances().items():
        finals = {
            name: run(FullReversal(instance), factory(), record_states=False)
            .final_state.graph_signature()
            for name, factory in SCHEDULERS.items()
        }
        assert len(set(finals.values())) == 1, (
            f"{instance_name}: FR finals differ across schedulers: {finals}"
        )


# ----------------------------------------------------------------------
# 2. the legacy-signature equivalence oracle
# ----------------------------------------------------------------------
def _legacy_graph_signature(state):
    """The seed implementation's orientation fingerprint: directed edge pairs."""
    return state.orientation.directed_edges()


def _legacy_full_signature(state):
    """The seed implementation's full-state fingerprint (tuple based)."""
    bookkeeping = getattr(state, "lists", None)
    if bookkeeping is None:
        bookkeeping = getattr(state, "marks", None)
    if bookkeeping is None:
        bookkeeping = getattr(state, "counts", None)
    if bookkeeping is None:
        return _legacy_graph_signature(state)
    if all(isinstance(value, int) for value in bookkeeping.values()):
        extra = tuple((u, bookkeeping[u]) for u in state.instance.nodes)
    else:
        extra = tuple(
            (u, tuple(sorted(bookkeeping[u], key=repr))) for u in state.instance.nodes
        )
    return (_legacy_graph_signature(state), extra)


@pytest.mark.parametrize("algorithm_name", ["OneStepPR", "NewPR", "BLL"])
def test_int_signatures_equivalent_to_legacy_tuple_signatures(algorithm_name):
    """Equal int signatures iff equal legacy tuple signatures, trace by trace.

    Runs several identically seeded executions per instance, collects every
    visited state, and checks the two signature schemes partition the states
    the same way — the oracle for the bitmask refactor.
    """
    automaton_factory = ALGORITHMS[algorithm_name]
    for instance_name, instance in _instances().items():
        states = []
        for seed in (1, 2, 3):
            automaton = automaton_factory(instance)
            collected = []

            def observer(step_index, pre_state, action, post_state, _bag=collected):
                _bag.append(post_state)

            result = run(
                automaton,
                RandomScheduler(seed=seed),
                observers=(observer,),
                record_states=False,
            )
            states.append(automaton.initial_state())
            states.extend(collected)
            assert result.converged

        int_sigs = [s.signature() for s in states]
        legacy_sigs = [_legacy_full_signature(s) for s in states]
        for i in range(len(states)):
            for j in range(i + 1, len(states)):
                assert (int_sigs[i] == int_sigs[j]) == (
                    legacy_sigs[i] == legacy_sigs[j]
                ), (
                    f"{algorithm_name}/{instance_name}: states {i} and {j} "
                    "disagree between int and legacy signatures"
                )


def test_graph_signature_equivalent_to_legacy_across_algorithms():
    """Orientation bitmasks agree with directed-edge tuples across automata.

    The same orientation reached by different algorithms must produce the
    same int graph signature exactly when the legacy directed-edge tuples
    coincide (the cross-automaton comparison the simulation relations use).
    """
    instance = random_dag_instance(10, edge_probability=0.3, seed=7)
    states = []
    for factory in ALGORITHMS.values():
        automaton = factory(instance)
        result = run(automaton, SequentialScheduler(), record_states=True)
        states.extend(result.execution.states)
    for i in range(len(states)):
        for j in range(i + 1, len(states)):
            same_int = states[i].graph_signature() == states[j].graph_signature()
            same_legacy = _legacy_graph_signature(states[i]) == _legacy_graph_signature(
                states[j]
            )
            assert same_int == same_legacy
