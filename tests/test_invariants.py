"""Unit tests for the executable invariants (Invariants 3.1, 3.2, 4.1, 4.2)."""

from __future__ import annotations

import pytest

from repro.automata.executions import run
from repro.core.base import Reverse
from repro.core.embedding import PlanarEmbedding
from repro.core.new_pr import NewPartialReversal, NewPRState
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal, PRState, ReverseSet
from repro.schedulers.random_scheduler import RandomScheduler
from repro.schedulers.sequential import SequentialScheduler
from repro.verification.invariants import (
    check_corollary_3_3,
    check_corollary_3_4,
    check_invariant_3_1,
    check_invariant_3_2,
    check_invariant_4_1,
    check_invariant_4_2,
    newpr_invariant_checks,
    pr_invariant_checks,
)


class TestInvariant31:
    def test_holds_initially(self, diamond):
        state = PartialReversal(diamond).initial_state()
        assert check_invariant_3_1(state).holds

    def test_holds_along_pr_execution(self, bad_chain):
        result = run(PartialReversal(bad_chain), SequentialScheduler())
        for state in result.execution.states:
            assert check_invariant_3_1(state).holds

    def test_holds_for_newpr_states_too(self, bad_chain):
        result = run(NewPartialReversal(bad_chain), SequentialScheduler())
        for state in result.execution.states:
            assert check_invariant_3_1(state).holds

    def test_report_is_truthy_when_holding(self, diamond):
        report = check_invariant_3_1(PartialReversal(diamond).initial_state())
        assert bool(report)
        assert report.violations == []


class TestInvariant32:
    def test_holds_initially(self, diamond):
        state = PartialReversal(diamond).initial_state()
        assert check_invariant_3_2(state).holds

    def test_holds_along_pr_execution(self, bad_grid):
        result = run(PartialReversal(bad_grid), SequentialScheduler())
        for state in result.execution.states:
            assert check_invariant_3_2(state).holds

    def test_holds_along_onestep_execution(self, random_dag):
        result = run(OneStepPartialReversal(random_dag), RandomScheduler(seed=17))
        for state in result.execution.states:
            assert check_invariant_3_2(state).holds

    def test_detects_corrupted_list(self, diamond):
        state = PartialReversal(diamond).initial_state()
        # manually corrupt the state: a sink whose list wrongly contains an
        # out-neighbour with an outgoing edge
        state.lists["a"] = frozenset({"c"})
        report = check_invariant_3_2(state)
        assert not report.holds
        assert any("a" in violation.subject for violation in report.violations)

    def test_exactly_one_alternative(self, bad_chain):
        # for the initial bad chain, every node's part-2 alternative holds and
        # part 1 fails, which the check accepts (exactly one alternative)
        state = PartialReversal(bad_chain).initial_state()
        assert check_invariant_3_2(state).holds


class TestCorollaries:
    def test_corollary_3_3_holds_along_execution(self, bad_grid):
        result = run(PartialReversal(bad_grid), SequentialScheduler())
        for state in result.execution.states:
            assert check_corollary_3_3(state).holds

    def test_corollary_3_4_holds_along_execution(self, bad_grid):
        result = run(PartialReversal(bad_grid), SequentialScheduler())
        for state in result.execution.states:
            assert check_corollary_3_4(state).holds

    def test_corollary_3_3_detects_mixed_list(self, diamond):
        state = PartialReversal(diamond).initial_state()
        # node a has in-nbr d and out-nbr c; a list containing both is illegal
        state.lists["a"] = frozenset({"d", "c"})
        assert not check_corollary_3_3(state).holds

    def test_corollary_3_4_detects_bad_sink_list(self, diamond):
        automaton = PartialReversal(diamond)
        state = automaton.initial_state()
        # c is a sink; its list must equal in-nbrs or out-nbrs, not a strict subset
        state.lists["c"] = frozenset({"a"})
        assert not check_corollary_3_4(state).holds


class TestInvariant41:
    def test_holds_initially(self, bad_chain):
        state = NewPartialReversal(bad_chain).initial_state()
        assert check_invariant_4_1(state).holds

    def test_holds_along_execution(self, bad_grid):
        automaton = NewPartialReversal(bad_grid)
        result = run(automaton, SequentialScheduler())
        embedding = PlanarEmbedding.from_topological_order(bad_grid)
        for state in result.execution.states:
            assert check_invariant_4_1(state, embedding).holds

    def test_holds_on_random_dag_random_schedule(self, random_dag):
        result = run(NewPartialReversal(random_dag), RandomScheduler(seed=23))
        for state in result.execution.states:
            assert check_invariant_4_1(state).holds

    def test_detects_violation_in_corrupted_state(self, bad_chain):
        automaton = NewPartialReversal(bad_chain)
        state = automaton.initial_state()
        # both endpoints have even parity but we flip an edge right-to-left by hand
        state.orientation.reverse_edge(4, 3)
        report = check_invariant_4_1(state)
        assert not report.holds

    def test_vacuous_when_parities_differ(self, bad_chain):
        automaton = NewPartialReversal(bad_chain)
        s1 = automaton.apply(automaton.initial_state(), Reverse(4))
        # node 4 has parity odd, node 3 parity even: 4.1 says nothing about that edge
        assert check_invariant_4_1(s1).holds


class TestInvariant42:
    def test_holds_initially(self, random_dag):
        state = NewPartialReversal(random_dag).initial_state()
        assert check_invariant_4_2(state).holds

    def test_holds_along_execution(self, bad_grid):
        result = run(NewPartialReversal(bad_grid), SequentialScheduler())
        embedding = PlanarEmbedding.from_topological_order(bad_grid)
        for state in result.execution.states:
            assert check_invariant_4_2(state, embedding).holds

    def test_holds_under_random_schedules(self, worst_chain):
        for seed in range(5):
            result = run(NewPartialReversal(worst_chain), RandomScheduler(seed=seed))
            for state in result.execution.states:
                assert check_invariant_4_2(state).holds

    def test_part_a_detects_large_count_gap(self, bad_chain):
        state = NewPartialReversal(bad_chain).initial_state()
        state.counts[4] = 5  # neighbours 3 and 4 now differ by 5
        report = check_invariant_4_2(state)
        assert not report.holds
        assert any("more than one" in v.detail for v in report.violations)

    def test_part_d_detects_wrong_direction(self, bad_chain):
        state = NewPartialReversal(bad_chain).initial_state()
        # count[3] > count[4] but the edge still points 3 -> 4 ... wait the
        # initial edge already points 3 -> 4, so make count[4] bigger instead:
        # count[4] > count[3] while the edge points 3 -> 4 violates (d).
        state.counts[4] = 1
        report = check_invariant_4_2(state)
        assert not report.holds

    def test_violation_messages_are_informative(self, bad_chain):
        state = NewPartialReversal(bad_chain).initial_state()
        state.counts[4] = 3
        report = check_invariant_4_2(state)
        assert report.violations
        assert all(isinstance(str(v), str) and str(v) for v in report.violations)


class TestBundles:
    def test_pr_bundle_contains_expected_checks(self):
        bundle = pr_invariant_checks()
        assert set(bundle) == {
            "Invariant 3.1",
            "Invariant 3.2",
            "Corollary 3.3",
            "Corollary 3.4",
        }

    def test_newpr_bundle_contains_expected_checks(self):
        bundle = newpr_invariant_checks()
        assert set(bundle) == {"Invariant 3.1", "Invariant 4.1", "Invariant 4.2"}

    def test_pr_bundle_passes_on_execution(self, bad_chain):
        bundle = pr_invariant_checks()
        result = run(PartialReversal(bad_chain), SequentialScheduler())
        for state in result.execution.states:
            for check in bundle.values():
                assert check(state).holds

    def test_newpr_bundle_passes_on_execution(self, bad_chain):
        embedding = PlanarEmbedding.from_topological_order(bad_chain)
        bundle = newpr_invariant_checks(embedding)
        result = run(NewPartialReversal(bad_chain), SequentialScheduler())
        for state in result.execution.states:
            for check in bundle.values():
                assert check(state).holds
