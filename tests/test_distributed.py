"""Unit tests for the discrete-event simulator, channels and the async protocol."""

from __future__ import annotations

import pytest

from repro.distributed.channel import Channel, Message
from repro.distributed.events import DiscreteEventSimulator
from repro.distributed.network import AsyncLinkReversalNetwork
from repro.distributed.protocol import HeightValue, LinkReversalNodeProcess, ReversalMode
from repro.topology.generators import chain_instance, grid_instance, random_dag_instance
from repro.topology.manet import random_geometric_instance


class TestSimulator:
    def test_events_run_in_time_order(self):
        simulator = DiscreteEventSimulator()
        order = []
        simulator.schedule(5.0, lambda s: order.append("late"))
        simulator.schedule(1.0, lambda s: order.append("early"))
        simulator.run_until_idle()
        assert order == ["early", "late"]

    def test_ties_broken_by_insertion_order(self):
        simulator = DiscreteEventSimulator()
        order = []
        simulator.schedule(1.0, lambda s: order.append("first"))
        simulator.schedule(1.0, lambda s: order.append("second"))
        simulator.run_until_idle()
        assert order == ["first", "second"]

    def test_clock_advances(self):
        simulator = DiscreteEventSimulator()
        simulator.schedule(3.5, lambda s: None)
        simulator.run_until_idle()
        assert simulator.now == 3.5

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            DiscreteEventSimulator().schedule(-1.0, lambda s: None)

    def test_run_until(self):
        simulator = DiscreteEventSimulator()
        fired = []
        simulator.schedule(1.0, lambda s: fired.append(1))
        simulator.schedule(10.0, lambda s: fired.append(2))
        simulator.run(until=5.0)
        assert fired == [1]
        assert simulator.pending_events == 1

    def test_cancelled_events_skipped(self):
        simulator = DiscreteEventSimulator()
        fired = []
        event = simulator.schedule(1.0, lambda s: fired.append(1))
        event.cancel()
        simulator.run_until_idle()
        assert fired == []

    def test_events_can_schedule_events(self):
        simulator = DiscreteEventSimulator()
        fired = []

        def first(sim):
            fired.append("first")
            sim.schedule(1.0, lambda s: fired.append("chained"))

        simulator.schedule(1.0, first)
        simulator.run_until_idle()
        assert fired == ["first", "chained"]

    def test_max_events_guard(self):
        simulator = DiscreteEventSimulator()

        def rescheduling(sim):
            sim.schedule(1.0, rescheduling)

        simulator.schedule(1.0, rescheduling)
        dispatched = simulator.run_until_idle(max_events=25)
        assert dispatched == 25

    def test_schedule_at_absolute_time(self):
        simulator = DiscreteEventSimulator()
        times = []
        simulator.schedule_at(4.0, lambda s: times.append(s.now))
        simulator.run_until_idle()
        assert times == [4.0]


class TestChannel:
    def _make_channel(self, **kwargs):
        simulator = DiscreteEventSimulator()
        received = []
        channel = Channel(
            simulator, sender="a", receiver="b", deliver=received.append, **kwargs
        )
        return simulator, channel, received

    def test_delivers_after_delay(self):
        simulator, channel, received = self._make_channel(min_delay=2.0, max_delay=2.0)
        channel.send(Message("a", "b", "HEIGHT", 1))
        simulator.run_until_idle()
        assert len(received) == 1
        assert simulator.now == 2.0
        assert channel.stats.delivered == 1

    def test_loss_probability_drops_messages(self):
        simulator, channel, received = self._make_channel(loss_probability=0.5, seed=1)
        for _ in range(50):
            channel.send(Message("a", "b", "HEIGHT", 0))
        simulator.run_until_idle()
        assert channel.stats.dropped > 0
        assert channel.stats.delivered + channel.stats.dropped == 50

    def test_down_channel_loses_messages(self):
        simulator, channel, received = self._make_channel()
        channel.fail()
        channel.send(Message("a", "b", "HEIGHT", 0))
        simulator.run_until_idle()
        assert received == []
        assert channel.stats.lost_to_failure == 1

    def test_failure_loses_in_flight_messages(self):
        simulator, channel, received = self._make_channel(min_delay=5.0, max_delay=5.0)
        channel.send(Message("a", "b", "HEIGHT", 0))
        channel.fail()
        simulator.run_until_idle()
        assert received == []

    def test_repair_restores_delivery(self):
        simulator, channel, received = self._make_channel()
        channel.fail()
        channel.repair()
        channel.send(Message("a", "b", "HEIGHT", 0))
        simulator.run_until_idle()
        assert len(received) == 1

    def test_invalid_parameters(self):
        simulator = DiscreteEventSimulator()
        with pytest.raises(ValueError):
            Channel(simulator, "a", "b", lambda m: None, min_delay=2.0, max_delay=1.0)
        with pytest.raises(ValueError):
            Channel(simulator, "a", "b", lambda m: None, loss_probability=1.0)


class TestNodeProcess:
    def test_local_sink_detection(self):
        sent = []
        process = LinkReversalNodeProcess(
            node="x",
            destination="d",
            initial_height=HeightValue(0, 0, 1),
            neighbours=frozenset({"d"}),
            initial_neighbour_heights={"d": HeightValue(0, 5, 0)},
            send=lambda nbr, msg: sent.append((nbr, msg)),
        )
        assert process.is_local_sink()

    def test_destination_never_a_sink(self):
        process = LinkReversalNodeProcess(
            node="d",
            destination="d",
            initial_height=HeightValue(0, 0, 0),
            neighbours=frozenset({"x"}),
            initial_neighbour_heights={"x": HeightValue(0, 5, 1)},
            send=lambda nbr, msg: None,
        )
        assert not process.is_local_sink()

    def test_reversal_raises_height_and_broadcasts(self):
        sent = []
        process = LinkReversalNodeProcess(
            node="x",
            destination="d",
            initial_height=HeightValue(0, 0, 1),
            neighbours=frozenset({"d"}),
            initial_neighbour_heights={"d": HeightValue(0, 5, 0)},
            send=lambda nbr, msg: sent.append((nbr, msg)),
        )
        process.maybe_reverse()
        assert process.reversal_count == 1
        assert process.height > HeightValue(0, 5, 0)
        assert sent  # the new height was broadcast

    def test_full_mode_rises_above_maximum(self):
        process = LinkReversalNodeProcess(
            node="x",
            destination="d",
            initial_height=HeightValue(0, 0, 2),
            neighbours=frozenset({"d", "y"}),
            initial_neighbour_heights={
                "d": HeightValue(3, 0, 0),
                "y": HeightValue(7, 0, 1),
            },
            send=lambda nbr, msg: None,
            mode=ReversalMode.FULL,
        )
        process.maybe_reverse()
        assert process.height.a == 8

    def test_link_down_removes_neighbour(self):
        process = LinkReversalNodeProcess(
            node="x",
            destination="d",
            initial_height=HeightValue(0, 0, 1),
            neighbours=frozenset({"d", "y"}),
            initial_neighbour_heights={
                "d": HeightValue(0, 1, 0),
                "y": HeightValue(0, -5, 2),
            },
            send=lambda nbr, msg: None,
        )
        assert not process.is_local_sink()  # y is below x
        process.on_link_down("y")
        assert "y" not in process.neighbours

    def test_stale_message_from_unknown_sender_ignored(self):
        process = LinkReversalNodeProcess(
            node="x",
            destination="d",
            initial_height=HeightValue(0, 0, 1),
            neighbours=frozenset({"d"}),
            initial_neighbour_heights={"d": HeightValue(0, 5, 0)},
            send=lambda nbr, msg: None,
        )
        process.on_message(Message("ghost", "x", "HEIGHT", HeightValue(9, 9, 9)))
        assert "ghost" not in process.neighbour_heights


class TestAsyncNetwork:
    """Experiment E17: asynchronous executions converge and stay acyclic."""

    def test_converges_on_bad_chain(self):
        instance = chain_instance(8, towards_destination=False)
        network = AsyncLinkReversalNetwork(instance, seed=1)
        report = network.run_to_quiescence()
        assert report.destination_oriented
        assert report.acyclic
        assert report.total_reversals > 0

    def test_converges_on_grid(self):
        instance = grid_instance(4, 4, oriented_towards_destination=False)
        network = AsyncLinkReversalNetwork(instance, seed=2)
        report = network.run_to_quiescence()
        assert report.destination_oriented

    def test_converges_with_full_reversal_mode(self):
        instance = chain_instance(8, towards_destination=False)
        network = AsyncLinkReversalNetwork(instance, mode=ReversalMode.FULL, seed=3)
        report = network.run_to_quiescence()
        assert report.destination_oriented

    def test_already_oriented_instance_needs_no_reversals(self):
        instance, _ = random_geometric_instance(15, radius=0.4, seed=6)
        network = AsyncLinkReversalNetwork(instance, seed=6)
        report = network.run_to_quiescence()
        assert report.destination_oriented
        assert report.total_reversals == 0

    def test_link_failure_triggers_recovery(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        network = AsyncLinkReversalNetwork(instance, seed=4)
        network.run_to_quiescence()
        # fail a link on the unique route of the far corner's neighbourhood
        network.fail_link(7, 8)
        report = network.run_to_quiescence()
        assert report.destination_oriented
        assert report.acyclic

    def test_partition_cannot_recover(self):
        """Classic GB behaviour: in a partition the reversal cascade never settles.

        The run is therefore bounded by ``max_events``; the partitioned side
        keeps reversing and the network never becomes destination oriented
        (real deployments layer partition detection on top, as TORA does).
        """
        instance = chain_instance(4, towards_destination=True)
        network = AsyncLinkReversalNetwork(instance, seed=5)
        network.run_to_quiescence()
        network.fail_link(0, 1)  # disconnects everything from the destination
        report = network.run_for(duration=200.0, max_events=5000)
        assert not report.destination_oriented
        assert report.acyclic

    def test_add_link_reconnects(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        network = AsyncLinkReversalNetwork(instance, seed=8)
        network.run_to_quiescence()
        network.fail_link(5, 8)
        network.run_to_quiescence()
        network.add_link(5, 8)
        report = network.run_to_quiescence()
        assert report.destination_oriented

    def test_global_orientation_available_when_links_unchanged(self):
        instance = chain_instance(6, towards_destination=False)
        network = AsyncLinkReversalNetwork(instance, seed=9)
        network.run_to_quiescence()
        orientation = network.global_orientation()
        assert orientation is not None
        assert orientation.is_destination_oriented()

    def test_global_orientation_none_after_topology_change(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        network = AsyncLinkReversalNetwork(instance, seed=10)
        network.run_to_quiescence()
        network.fail_link(7, 8)
        assert network.global_orientation() is None

    def test_fail_unknown_link_rejected(self):
        instance = chain_instance(4, towards_destination=True)
        network = AsyncLinkReversalNetwork(instance, seed=11)
        with pytest.raises(ValueError):
            network.fail_link(0, 3)

    def test_message_statistics_accumulate(self):
        instance = chain_instance(8, towards_destination=False)
        network = AsyncLinkReversalNetwork(instance, seed=12)
        report = network.run_to_quiescence()
        assert report.messages_sent >= report.messages_delivered
        assert report.messages_sent > 0

    def test_random_delays_still_converge(self):
        instance = random_dag_instance(15, edge_probability=0.25, seed=3)
        network = AsyncLinkReversalNetwork(instance, min_delay=0.5, max_delay=5.0, seed=13)
        report = network.run_to_quiescence()
        assert report.destination_oriented
        assert report.acyclic


class TestBeaconing:
    """Anti-entropy beacon rounds recover destination orientation under message loss."""

    def test_lossy_network_recovers_with_beacons(self):
        instance = grid_instance(4, 4, oriented_towards_destination=False)
        network = AsyncLinkReversalNetwork(
            instance, min_delay=0.5, max_delay=2.0, loss_probability=0.3, seed=17
        )
        report = network.run_with_beacons(max_rounds=20)
        assert report.acyclic
        assert report.destination_oriented

    def test_beacons_are_noop_when_already_oriented(self):
        instance = chain_instance(6, towards_destination=True)
        network = AsyncLinkReversalNetwork(instance, seed=3)
        first = network.run_to_quiescence()
        assert first.destination_oriented
        reversals_before = first.total_reversals
        network.broadcast_heights()
        second = network.run_to_quiescence()
        assert second.total_reversals == reversals_before

    def test_run_with_beacons_gives_up_on_partition(self):
        instance = chain_instance(4, towards_destination=True)
        network = AsyncLinkReversalNetwork(instance, seed=4)
        network.run_to_quiescence()
        network.fail_link(0, 1)
        report = network.run_with_beacons(max_rounds=2, max_events_per_round=2000)
        assert not report.destination_oriented
