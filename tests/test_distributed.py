"""Unit tests for the discrete-event simulator, channels and the async protocol."""

from __future__ import annotations

import pytest

from repro.distributed.channel import Channel, Message
from repro.distributed.events import DiscreteEventSimulator
from repro.distributed.network import AsyncLinkReversalNetwork
from repro.distributed.protocol import HeightValue, LinkReversalNodeProcess, ReversalMode
from repro.topology.generators import chain_instance, grid_instance, random_dag_instance
from repro.topology.manet import random_geometric_instance


class TestSimulator:
    def test_events_run_in_time_order(self):
        simulator = DiscreteEventSimulator()
        order = []
        simulator.schedule(5.0, lambda s: order.append("late"))
        simulator.schedule(1.0, lambda s: order.append("early"))
        simulator.run_until_idle()
        assert order == ["early", "late"]

    def test_ties_broken_by_insertion_order(self):
        simulator = DiscreteEventSimulator()
        order = []
        simulator.schedule(1.0, lambda s: order.append("first"))
        simulator.schedule(1.0, lambda s: order.append("second"))
        simulator.run_until_idle()
        assert order == ["first", "second"]

    def test_clock_advances(self):
        simulator = DiscreteEventSimulator()
        simulator.schedule(3.5, lambda s: None)
        simulator.run_until_idle()
        assert simulator.now == 3.5

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            DiscreteEventSimulator().schedule(-1.0, lambda s: None)

    def test_run_until(self):
        simulator = DiscreteEventSimulator()
        fired = []
        simulator.schedule(1.0, lambda s: fired.append(1))
        simulator.schedule(10.0, lambda s: fired.append(2))
        simulator.run(until=5.0)
        assert fired == [1]
        assert simulator.pending_events == 1

    def test_cancelled_events_skipped(self):
        simulator = DiscreteEventSimulator()
        fired = []
        event = simulator.schedule(1.0, lambda s: fired.append(1))
        event.cancel()
        simulator.run_until_idle()
        assert fired == []

    def test_events_can_schedule_events(self):
        simulator = DiscreteEventSimulator()
        fired = []

        def first(sim):
            fired.append("first")
            sim.schedule(1.0, lambda s: fired.append("chained"))

        simulator.schedule(1.0, first)
        simulator.run_until_idle()
        assert fired == ["first", "chained"]

    def test_max_events_guard(self):
        simulator = DiscreteEventSimulator()

        def rescheduling(sim):
            sim.schedule(1.0, rescheduling)

        simulator.schedule(1.0, rescheduling)
        dispatched = simulator.run_until_idle(max_events=25)
        assert dispatched == 25

    def test_schedule_at_absolute_time(self):
        simulator = DiscreteEventSimulator()
        times = []
        simulator.schedule_at(4.0, lambda s: times.append(s.now))
        simulator.run_until_idle()
        assert times == [4.0]


class TestChannel:
    def _make_channel(self, **kwargs):
        simulator = DiscreteEventSimulator()
        received = []
        channel = Channel(
            simulator, sender="a", receiver="b", deliver=received.append, **kwargs
        )
        return simulator, channel, received

    def test_delivers_after_delay(self):
        simulator, channel, received = self._make_channel(min_delay=2.0, max_delay=2.0)
        channel.send(Message("a", "b", "HEIGHT", 1))
        simulator.run_until_idle()
        assert len(received) == 1
        assert simulator.now == 2.0
        assert channel.stats.delivered == 1

    def test_loss_probability_drops_messages(self):
        simulator, channel, received = self._make_channel(loss_probability=0.5, seed=1)
        for _ in range(50):
            channel.send(Message("a", "b", "HEIGHT", 0))
        simulator.run_until_idle()
        assert channel.stats.dropped > 0
        assert channel.stats.delivered + channel.stats.dropped == 50

    def test_down_channel_loses_messages(self):
        simulator, channel, received = self._make_channel()
        channel.fail()
        channel.send(Message("a", "b", "HEIGHT", 0))
        simulator.run_until_idle()
        assert received == []
        assert channel.stats.lost_to_failure == 1

    def test_failure_loses_in_flight_messages(self):
        simulator, channel, received = self._make_channel(min_delay=5.0, max_delay=5.0)
        channel.send(Message("a", "b", "HEIGHT", 0))
        channel.fail()
        simulator.run_until_idle()
        assert received == []

    def test_repair_restores_delivery(self):
        simulator, channel, received = self._make_channel()
        channel.fail()
        channel.repair()
        channel.send(Message("a", "b", "HEIGHT", 0))
        simulator.run_until_idle()
        assert len(received) == 1

    def test_invalid_parameters(self):
        simulator = DiscreteEventSimulator()
        with pytest.raises(ValueError):
            Channel(simulator, "a", "b", lambda m: None, min_delay=2.0, max_delay=1.0)
        with pytest.raises(ValueError):
            Channel(simulator, "a", "b", lambda m: None, loss_probability=1.0)


class TestNodeProcess:
    def test_local_sink_detection(self):
        sent = []
        process = LinkReversalNodeProcess(
            node="x",
            destination="d",
            initial_height=HeightValue(0, 0, 1),
            neighbours=frozenset({"d"}),
            initial_neighbour_heights={"d": HeightValue(0, 5, 0)},
            send=lambda nbr, msg: sent.append((nbr, msg)),
        )
        assert process.is_local_sink()

    def test_destination_never_a_sink(self):
        process = LinkReversalNodeProcess(
            node="d",
            destination="d",
            initial_height=HeightValue(0, 0, 0),
            neighbours=frozenset({"x"}),
            initial_neighbour_heights={"x": HeightValue(0, 5, 1)},
            send=lambda nbr, msg: None,
        )
        assert not process.is_local_sink()

    def test_reversal_raises_height_and_broadcasts(self):
        sent = []
        process = LinkReversalNodeProcess(
            node="x",
            destination="d",
            initial_height=HeightValue(0, 0, 1),
            neighbours=frozenset({"d"}),
            initial_neighbour_heights={"d": HeightValue(0, 5, 0)},
            send=lambda nbr, msg: sent.append((nbr, msg)),
        )
        process.maybe_reverse()
        assert process.reversal_count == 1
        assert process.height > HeightValue(0, 5, 0)
        assert sent  # the new height was broadcast

    def test_full_mode_rises_above_maximum(self):
        process = LinkReversalNodeProcess(
            node="x",
            destination="d",
            initial_height=HeightValue(0, 0, 2),
            neighbours=frozenset({"d", "y"}),
            initial_neighbour_heights={
                "d": HeightValue(3, 0, 0),
                "y": HeightValue(7, 0, 1),
            },
            send=lambda nbr, msg: None,
            mode=ReversalMode.FULL,
        )
        process.maybe_reverse()
        assert process.height.a == 8

    def test_link_down_removes_neighbour(self):
        process = LinkReversalNodeProcess(
            node="x",
            destination="d",
            initial_height=HeightValue(0, 0, 1),
            neighbours=frozenset({"d", "y"}),
            initial_neighbour_heights={
                "d": HeightValue(0, 1, 0),
                "y": HeightValue(0, -5, 2),
            },
            send=lambda nbr, msg: None,
        )
        assert not process.is_local_sink()  # y is below x
        process.on_link_down("y")
        assert "y" not in process.neighbours

    def test_stale_message_from_unknown_sender_ignored(self):
        process = LinkReversalNodeProcess(
            node="x",
            destination="d",
            initial_height=HeightValue(0, 0, 1),
            neighbours=frozenset({"d"}),
            initial_neighbour_heights={"d": HeightValue(0, 5, 0)},
            send=lambda nbr, msg: None,
        )
        process.on_message(Message("ghost", "x", "HEIGHT", HeightValue(9, 9, 9)))
        assert "ghost" not in process.neighbour_heights


class TestAsyncNetwork:
    """Experiment E17: asynchronous executions converge and stay acyclic."""

    def test_converges_on_bad_chain(self):
        instance = chain_instance(8, towards_destination=False)
        network = AsyncLinkReversalNetwork(instance, seed=1)
        report = network.run_to_quiescence()
        assert report.destination_oriented
        assert report.acyclic
        assert report.total_reversals > 0

    def test_converges_on_grid(self):
        instance = grid_instance(4, 4, oriented_towards_destination=False)
        network = AsyncLinkReversalNetwork(instance, seed=2)
        report = network.run_to_quiescence()
        assert report.destination_oriented

    def test_converges_with_full_reversal_mode(self):
        instance = chain_instance(8, towards_destination=False)
        network = AsyncLinkReversalNetwork(instance, mode=ReversalMode.FULL, seed=3)
        report = network.run_to_quiescence()
        assert report.destination_oriented

    def test_already_oriented_instance_needs_no_reversals(self):
        instance, _ = random_geometric_instance(15, radius=0.4, seed=6)
        network = AsyncLinkReversalNetwork(instance, seed=6)
        report = network.run_to_quiescence()
        assert report.destination_oriented
        assert report.total_reversals == 0

    def test_link_failure_triggers_recovery(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        network = AsyncLinkReversalNetwork(instance, seed=4)
        network.run_to_quiescence()
        # fail a link on the unique route of the far corner's neighbourhood
        network.fail_link(7, 8)
        report = network.run_to_quiescence()
        assert report.destination_oriented
        assert report.acyclic

    def test_partition_cannot_recover(self):
        """Classic GB behaviour: in a partition the reversal cascade never settles.

        The run is therefore bounded by ``max_events``; the partitioned side
        keeps reversing and the network never becomes destination oriented
        (real deployments layer partition detection on top, as TORA does).
        """
        instance = chain_instance(4, towards_destination=True)
        network = AsyncLinkReversalNetwork(instance, seed=5)
        network.run_to_quiescence()
        network.fail_link(0, 1)  # disconnects everything from the destination
        report = network.run_for(duration=200.0, max_events=5000)
        assert not report.destination_oriented
        assert report.acyclic

    def test_add_link_reconnects(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        network = AsyncLinkReversalNetwork(instance, seed=8)
        network.run_to_quiescence()
        network.fail_link(5, 8)
        network.run_to_quiescence()
        network.add_link(5, 8)
        report = network.run_to_quiescence()
        assert report.destination_oriented

    def test_global_orientation_available_when_links_unchanged(self):
        instance = chain_instance(6, towards_destination=False)
        network = AsyncLinkReversalNetwork(instance, seed=9)
        network.run_to_quiescence()
        orientation = network.global_orientation()
        assert orientation is not None
        assert orientation.is_destination_oriented()

    def test_global_orientation_none_after_topology_change(self):
        instance = grid_instance(3, 3, oriented_towards_destination=True)
        network = AsyncLinkReversalNetwork(instance, seed=10)
        network.run_to_quiescence()
        network.fail_link(7, 8)
        assert network.global_orientation() is None

    def test_fail_unknown_link_rejected(self):
        instance = chain_instance(4, towards_destination=True)
        network = AsyncLinkReversalNetwork(instance, seed=11)
        with pytest.raises(ValueError):
            network.fail_link(0, 3)

    def test_message_statistics_accumulate(self):
        instance = chain_instance(8, towards_destination=False)
        network = AsyncLinkReversalNetwork(instance, seed=12)
        report = network.run_to_quiescence()
        assert report.messages_sent >= report.messages_delivered
        assert report.messages_sent > 0

    def test_random_delays_still_converge(self):
        instance = random_dag_instance(15, edge_probability=0.25, seed=3)
        network = AsyncLinkReversalNetwork(instance, min_delay=0.5, max_delay=5.0, seed=13)
        report = network.run_to_quiescence()
        assert report.destination_oriented
        assert report.acyclic


class TestBeaconing:
    """Anti-entropy beacon rounds recover destination orientation under message loss."""

    def test_lossy_network_recovers_with_beacons(self):
        instance = grid_instance(4, 4, oriented_towards_destination=False)
        network = AsyncLinkReversalNetwork(
            instance, min_delay=0.5, max_delay=2.0, loss_probability=0.3, seed=17
        )
        report = network.run_with_beacons(max_rounds=20)
        assert report.acyclic
        assert report.destination_oriented

    def test_beacons_are_noop_when_already_oriented(self):
        instance = chain_instance(6, towards_destination=True)
        network = AsyncLinkReversalNetwork(instance, seed=3)
        first = network.run_to_quiescence()
        assert first.destination_oriented
        reversals_before = first.total_reversals
        network.broadcast_heights()
        second = network.run_to_quiescence()
        assert second.total_reversals == reversals_before

    def test_run_with_beacons_gives_up_on_partition(self):
        instance = chain_instance(4, towards_destination=True)
        network = AsyncLinkReversalNetwork(instance, seed=4)
        network.run_to_quiescence()
        network.fail_link(0, 1)
        report = network.run_with_beacons(max_rounds=2, max_events_per_round=2000)
        assert not report.destination_oriented


class TestPendingEventAccounting:
    """Regression: cancelled events must not inflate pending_events or the queue."""

    def test_pending_events_excludes_cancelled(self):
        simulator = DiscreteEventSimulator()
        events = [simulator.schedule(1.0, lambda s: None) for _ in range(10)]
        assert simulator.pending_events == 10
        for event in events[:4]:
            event.cancel()
        assert simulator.pending_events == 6

    def test_double_cancel_counted_once(self):
        simulator = DiscreteEventSimulator()
        event = simulator.schedule(1.0, lambda s: None)
        simulator.schedule(2.0, lambda s: None)
        event.cancel()
        event.cancel()
        assert simulator.pending_events == 1

    def test_queue_compacts_under_heavy_cancellation(self):
        simulator = DiscreteEventSimulator()
        events = [simulator.schedule(1.0, lambda s: None) for _ in range(500)]
        for event in events[:400]:
            event.cancel()
        assert simulator.pending_events == 100
        # compaction is amortised: the heap may keep up to one threshold's
        # worth of cancelled stragglers, but never the cancelled majority
        assert len(simulator._queue) <= 2 * simulator.pending_events

    def test_compacted_queue_still_dispatches_in_order(self):
        simulator = DiscreteEventSimulator()
        order = []
        events = [
            simulator.schedule(float(i), lambda s, i=i: order.append(i))
            for i in range(300)
        ]
        for event in events:
            if event.time % 2 == 1:
                event.cancel()
        simulator.run_until_idle()
        assert order == [i for i in range(300) if i % 2 == 0]
        assert simulator.pending_events == 0

    def test_cancelling_a_dispatched_event_is_inert(self):
        simulator = DiscreteEventSimulator()
        event = simulator.schedule(1.0, lambda s: None)
        still_queued = simulator.schedule(2.0, lambda s: None)
        simulator.run(until=1.5)
        event.cancel()  # already dispatched: must not corrupt the accounting
        assert simulator.pending_events == 1
        still_queued.cancel()
        assert simulator.pending_events == 0

    def test_cancelled_events_popped_without_compaction_keep_count_right(self):
        simulator = DiscreteEventSimulator()
        kept = []
        first = simulator.schedule(1.0, lambda s: kept.append("a"))
        simulator.schedule(2.0, lambda s: kept.append("b"))
        first.cancel()
        simulator.run_until_idle()
        assert kept == ["b"]
        assert simulator.pending_events == 0


class TestChannelLossAccounting:
    """Regression: delivered messages must not be re-counted as lost on fail()."""

    def test_delivered_messages_not_lost_on_later_failure(self):
        simulator = DiscreteEventSimulator()
        received = []
        channel = Channel(simulator, "a", "b", received.append)
        for _ in range(5):
            channel.send(Message("a", "b", "HEIGHT", 0))
        simulator.run_until_idle()
        assert len(received) == 5
        channel.fail()
        assert channel.stats.lost_to_failure == 0
        assert channel.stats.delivered == 5

    def test_only_in_flight_messages_lost_on_failure(self):
        simulator = DiscreteEventSimulator()
        received = []
        channel = Channel(simulator, "a", "b", received.append, min_delay=5.0, max_delay=5.0)
        channel.send(Message("a", "b", "HEIGHT", 0))
        simulator.run_until_idle()
        channel.send(Message("a", "b", "HEIGHT", 1))
        channel.send(Message("a", "b", "HEIGHT", 2))
        channel.fail()
        simulator.run_until_idle()
        assert len(received) == 1
        assert channel.stats.lost_to_failure == 2
        assert channel.stats.sent == 3


class TestFifoChannel:
    """The fifo clamp keeps randomly delayed channels first-in-first-out."""

    def test_fifo_preserves_send_order(self):
        simulator = DiscreteEventSimulator()
        received = []
        channel = Channel(
            simulator, "a", "b", received.append,
            min_delay=0.1, max_delay=10.0, seed=5, fifo=True,
        )
        for i in range(50):
            channel.send(Message("a", "b", "HEIGHT", i))
        simulator.run_until_idle()
        assert [m.payload for m in received] == list(range(50))

    def test_unclamped_random_delays_can_reorder(self):
        simulator = DiscreteEventSimulator()
        received = []
        channel = Channel(
            simulator, "a", "b", received.append,
            min_delay=0.1, max_delay=10.0, seed=5, fifo=False,
        )
        for i in range(50):
            channel.send(Message("a", "b", "HEIGHT", i))
        simulator.run_until_idle()
        assert [m.payload for m in received] != list(range(50))


class TestDerivedChannelSeeds:
    """Per-link seeds are blake2-derived from the base seed (PR-2 scheme)."""

    def test_runs_reproducible_for_same_seed(self):
        instance = grid_instance(4, 4, oriented_towards_destination=False)
        reports = [
            AsyncLinkReversalNetwork(
                instance, min_delay=0.5, max_delay=2.0, loss_probability=0.2, seed=11
            ).run_to_quiescence()
            for _ in range(2)
        ]
        assert reports[0] == reports[1]

    def test_different_seeds_give_different_channel_streams(self):
        instance = grid_instance(4, 4, oriented_towards_destination=False)
        a = AsyncLinkReversalNetwork(
            instance, min_delay=0.5, max_delay=2.0, loss_probability=0.2, seed=11
        ).run_to_quiescence()
        b = AsyncLinkReversalNetwork(
            instance, min_delay=0.5, max_delay=2.0, loss_probability=0.2, seed=12
        ).run_to_quiescence()
        assert a != b

    def test_channel_seed_matches_derivation_scheme(self):
        from repro.distributed.network import derive_channel_seed
        from repro.experiments.spec import derive_seed

        assert derive_channel_seed(7, 1, 2) == derive_seed(7, "channel", 1, 2)

    def test_readded_links_get_fresh_generation_seeds(self):
        from repro.distributed.network import derive_link_up_seed

        assert derive_link_up_seed(7, 1, 2, 1) != derive_link_up_seed(7, 1, 2, 2)
