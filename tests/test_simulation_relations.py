"""Unit tests for the simulation relations R' and R (Section 5)."""

from __future__ import annotations

import pytest

from repro.automata.executions import run
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.random_scheduler import RandomScheduler
from repro.schedulers.sequential import SequentialScheduler
from repro.verification.simulation import (
    RelationR,
    RelationRPrime,
    check_full_simulation_chain,
    check_onestep_to_newpr_simulation,
    check_pr_to_onestep_simulation,
)


class TestRelationRPrime:
    def test_holds_for_initial_states(self, diamond):
        relation = RelationRPrime(diamond)
        pr_state = PartialReversal(diamond).initial_state()
        onestep_state = OneStepPartialReversal(diamond).initial_state()
        assert relation.holds(pr_state, onestep_state)

    def test_detects_graph_mismatch(self, diamond):
        relation = RelationRPrime(diamond)
        pr_state = PartialReversal(diamond).initial_state()
        onestep_state = OneStepPartialReversal(diamond).initial_state()
        onestep_state.orientation.reverse_edge("a", "c")
        violations = relation.violations(pr_state, onestep_state)
        assert any("directed graphs differ" in v for v in violations)

    def test_detects_list_mismatch(self, diamond):
        relation = RelationRPrime(diamond)
        pr_state = PartialReversal(diamond).initial_state()
        onestep_state = OneStepPartialReversal(diamond).initial_state()
        onestep_state.lists["a"] = frozenset({"c"})
        violations = relation.violations(pr_state, onestep_state)
        assert any("list[a]" in v for v in violations)


class TestRelationR:
    def test_holds_for_initial_states(self, diamond):
        relation = RelationR(diamond)
        onestep_state = OneStepPartialReversal(diamond).initial_state()
        newpr_state = NewPartialReversal(diamond).initial_state()
        assert relation.holds(onestep_state, newpr_state)

    def test_detects_graph_mismatch(self, diamond):
        relation = RelationR(diamond)
        onestep_state = OneStepPartialReversal(diamond).initial_state()
        newpr_state = NewPartialReversal(diamond).initial_state()
        newpr_state.orientation.reverse_edge("a", "c")
        assert not relation.holds(onestep_state, newpr_state)

    def test_detects_even_parity_list_violation(self, diamond):
        relation = RelationR(diamond)
        onestep_state = OneStepPartialReversal(diamond).initial_state()
        newpr_state = NewPartialReversal(diamond).initial_state()
        # parity of a is even; an in-neighbour (d) in a's list violates condition 2
        onestep_state.lists["a"] = frozenset({"d"})
        violations = relation.violations(onestep_state, newpr_state)
        assert any("even" in v for v in violations)

    def test_detects_odd_parity_list_violation(self, diamond):
        relation = RelationR(diamond)
        onestep_state = OneStepPartialReversal(diamond).initial_state()
        newpr_state = NewPartialReversal(diamond).initial_state()
        newpr_state.counts["a"] = 1  # parity odd
        # an out-neighbour (c) in a's list violates condition 3
        onestep_state.lists["a"] = frozenset({"c"})
        violations = relation.violations(onestep_state, newpr_state)
        assert any("odd" in v for v in violations)


class TestTheorem52:
    """R' maps every reachable PR state to a reachable OneStepPR state."""

    @pytest.mark.parametrize(
        "scheduler_factory",
        [GreedyScheduler, SequentialScheduler, lambda: RandomScheduler(seed=31)],
    )
    def test_r_prime_holds_on_chain(self, bad_chain, scheduler_factory):
        result = run(PartialReversal(bad_chain), scheduler_factory())
        check = check_pr_to_onestep_simulation(result.execution)
        assert check.holds
        assert check.correspondence_points == result.steps_taken + 1

    def test_r_prime_holds_with_concurrent_steps(self, bad_grid):
        result = run(PartialReversal(bad_grid), GreedyScheduler())
        assert check_pr_to_onestep_simulation(result.execution).holds

    def test_r_prime_holds_with_random_subsets(self, bad_grid):
        result = run(
            PartialReversal(bad_grid), RandomScheduler(seed=7, subset_probability=0.9)
        )
        assert check_pr_to_onestep_simulation(result.execution).holds

    def test_corresponding_execution_is_valid(self, bad_chain):
        result = run(PartialReversal(bad_chain), GreedyScheduler())
        check = check_pr_to_onestep_simulation(result.execution)
        # the constructed OneStepPR execution must itself be a legal execution
        check.corresponding_execution.validate()

    def test_final_graphs_agree(self, random_dag):
        result = run(PartialReversal(random_dag), GreedyScheduler())
        check = check_pr_to_onestep_simulation(result.execution)
        assert (
            check.corresponding_execution.final_state.graph_signature()
            == result.final_state.graph_signature()
        )


class TestTheorem54:
    """R maps every reachable OneStepPR state to a reachable NewPR state."""

    @pytest.mark.parametrize(
        "scheduler_factory",
        [SequentialScheduler, lambda: RandomScheduler(seed=41)],
    )
    def test_r_holds_on_chain(self, bad_chain, scheduler_factory):
        result = run(OneStepPartialReversal(bad_chain), scheduler_factory())
        check = check_onestep_to_newpr_simulation(result.execution)
        assert check.holds

    def test_r_holds_on_grid(self, bad_grid):
        result = run(OneStepPartialReversal(bad_grid), SequentialScheduler())
        assert check_onestep_to_newpr_simulation(result.execution).holds

    def test_r_holds_on_random_dag(self, random_dag):
        result = run(OneStepPartialReversal(random_dag), RandomScheduler(seed=2))
        assert check_onestep_to_newpr_simulation(result.execution).holds

    def test_corresponding_newpr_execution_is_valid(self, bad_chain):
        result = run(OneStepPartialReversal(bad_chain), SequentialScheduler())
        check = check_onestep_to_newpr_simulation(result.execution)
        check.corresponding_execution.validate()

    def test_dummy_steps_inserted_when_list_equals_nbrs(self):
        """The two-step correspondence of Lemma 5.3 (Case 1.2/2.2) is exercised."""
        from repro.core.graph import LinkReversalInstance

        instance = LinkReversalInstance.from_directed_edges(
            nodes=["d", "x", "y"], destination="d", edges=[("d", "x"), ("y", "x")]
        )
        onestep = OneStepPartialReversal(instance)
        result = run(onestep, SequentialScheduler())
        check = check_onestep_to_newpr_simulation(result.execution)
        assert check.holds
        # NewPR needs at least one extra (dummy) step compared to OneStepPR
        assert check.corresponding_execution.length > result.steps_taken

    def test_final_graphs_agree(self, bad_grid):
        result = run(OneStepPartialReversal(bad_grid), SequentialScheduler())
        check = check_onestep_to_newpr_simulation(result.execution)
        assert (
            check.corresponding_execution.final_state.graph_signature()
            == result.final_state.graph_signature()
        )


class TestTheorem55:
    """The full chain: PR inherits acyclicity from NewPR."""

    @pytest.mark.parametrize(
        "scheduler_factory",
        [GreedyScheduler, SequentialScheduler, lambda: RandomScheduler(seed=53)],
    )
    def test_full_chain_holds(self, bad_grid, scheduler_factory):
        result = run(PartialReversal(bad_grid), scheduler_factory())
        chain = check_full_simulation_chain(result.execution)
        assert chain.holds
        assert chain.r_prime.holds
        assert chain.r.holds

    def test_full_chain_on_random_dag(self, random_dag):
        result = run(PartialReversal(random_dag), GreedyScheduler())
        assert check_full_simulation_chain(result.execution).holds

    def test_chain_preserves_graph_equality_end_to_end(self, bad_chain):
        result = run(PartialReversal(bad_chain), GreedyScheduler())
        chain = check_full_simulation_chain(result.execution)
        newpr_exec = chain.r.corresponding_execution
        assert newpr_exec.final_state.graph_signature() == result.final_state.graph_signature()

    def test_result_reports_are_printable(self, bad_chain):
        result = run(PartialReversal(bad_chain), GreedyScheduler())
        chain = check_full_simulation_chain(result.execution)
        assert "R'" in str(chain.r_prime)
        assert "R " in str(chain.r) or "R (" in str(chain.r)
