"""Unit tests for the command-line interface."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import ALGORITHMS, SCHEDULERS, TOPOLOGIES, build_parser, build_topology, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "pr"
        assert args.topology == "chain"
        assert args.scheduler == "greedy"

    def test_all_algorithms_accepted(self):
        for name in ALGORITHMS:
            args = build_parser().parse_args(["run", "--algorithm", name])
            assert args.algorithm == name

    def test_all_schedulers_accepted(self):
        for name in SCHEDULERS:
            args = build_parser().parse_args(["run", "--scheduler", name])
            assert args.scheduler == name


class TestBuildTopology:
    @pytest.mark.parametrize("name", TOPOLOGIES)
    def test_every_family_builds_a_valid_instance(self, name):
        instance = build_topology(name, 12, seed=1)
        assert instance.node_count >= 2
        assert instance.is_initially_acyclic()

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            build_topology("moebius", 10, seed=0)


class TestCommands:
    def test_run_command(self, capsys):
        exit_code = main(["run", "--topology", "chain", "--nodes", "10"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "node steps" in output
        assert "dest oriented : True" in output

    def test_run_command_every_algorithm(self, capsys):
        for name in ALGORITHMS:
            assert main(["run", "--algorithm", name, "--nodes", "8"]) == 0
        assert "converged     : True" in capsys.readouterr().out

    def test_run_writes_dot_file(self, tmp_path, capsys):
        dot_path = tmp_path / "final.dot"
        exit_code = main(["run", "--nodes", "6", "--dot", str(dot_path)])
        assert exit_code == 0
        assert dot_path.exists()
        assert "digraph" in dot_path.read_text()

    def test_compare_command(self, capsys):
        exit_code = main(["compare", "--topology", "grid", "--nodes", "9"])
        output = capsys.readouterr().out
        assert exit_code == 0
        for name in ("PR", "NewPR", "FR"):
            assert name in output

    def test_verify_command(self, capsys):
        exit_code = main(["verify", "--max-nodes", "3"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "violations: 0" in output

    def test_worst_case_command(self, capsys):
        exit_code = main(["worst-case", "--max-bad", "6"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "FR quadratic fit" in output

    def test_game_command(self, capsys):
        exit_code = main(["game", "--topology", "chain", "--nodes", "5"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "global optimum" in output

    def test_game_refuses_too_many_players(self, capsys):
        exit_code = main(["game", "--topology", "chain", "--nodes", "20", "--max-players", "8"])
        assert exit_code == 2

    def test_simulate_command(self, capsys):
        exit_code = main(["simulate", "--topology", "grid", "--nodes", "9"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "oriented=True" in output

    def test_simulate_with_failures(self, capsys):
        exit_code = main(
            ["simulate", "--topology", "grid", "--nodes", "16", "--failures", "2"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "summary:" in output

    def test_seed_is_threaded_through(self, capsys):
        main(["--seed", "7", "run", "--topology", "random-dag", "--nodes", "15"])
        first = capsys.readouterr().out
        main(["--seed", "7", "run", "--topology", "random-dag", "--nodes", "15"])
        second = capsys.readouterr().out
        assert first == second

    def test_run_json_output(self, capsys):
        exit_code = main(["run", "--topology", "grid", "--nodes", "9", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["algorithm"] == "PR"
        assert payload["destination_oriented"] is True
        assert payload["nodes"] == 9

    def test_compare_json_output(self, capsys):
        exit_code = main(["compare", "--topology", "chain", "--nodes", "8", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert set(payload["results"]) == set(ALGORITHMS)
        # the worst-case chain: FR does strictly more work than (one-step) PR
        assert payload["results"]["fr"]["node_steps"] > payload["results"]["pr"]["node_steps"]

    def test_compare_seeds_are_independent_per_algorithm(self, capsys):
        # under the seeded random scheduler every algorithm must get its own
        # derived seed; with a shared seed the schedules would be correlated.
        # The observable contract is determinism + per-algorithm derivation,
        # which we check through the derive_seed values being distinct.
        from repro.experiments.spec import derive_seed

        seeds = {name: derive_seed(7, "compare", name) for name in ALGORITHMS}
        assert len(set(seeds.values())) == len(seeds)
        # and the command itself is reproducible under the random scheduler
        main(["--seed", "7", "compare", "--topology", "random-dag", "--nodes", "12",
              "--scheduler", "random", "--json"])
        first = capsys.readouterr().out
        main(["--seed", "7", "compare", "--topology", "random-dag", "--nodes", "12",
              "--scheduler", "random", "--json"])
        assert first == capsys.readouterr().out


class TestSweepAndReport:
    def _sweep(self, store, extra=()):
        return main([
            "sweep", "--families", "chain,random-dag", "--algorithms", "pr,fr",
            "--sizes", "4,6,8,10", "--replicates", "1", "--store", str(store),
            "--quiet", *extra,
        ])

    def test_sweep_then_report(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert self._sweep(store, ["--json"]) == 0
        sweep_payload = json.loads(capsys.readouterr().out)
        assert sweep_payload["executed"] == 16
        assert sweep_payload["ok"] == 16

        assert main(["report", "--store", str(store)]) == 0
        output = capsys.readouterr().out
        assert "ordering holds: True" in output
        assert "chain/fr" in output

    def test_sweep_resume_skips(self, tmp_path, capsys):
        store = tmp_path / "store"
        self._sweep(store)
        capsys.readouterr()
        assert self._sweep(store, ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["skipped"] == 16
        assert payload["executed"] == 0

    def test_sweep_with_workers(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert self._sweep(store, ["--workers", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] == 16
        assert payload["workers"] == 2

    def test_report_json(self, tmp_path, capsys):
        store = tmp_path / "store"
        self._sweep(store)
        capsys.readouterr()
        assert main(["report", "--store", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pr_vs_fr"]["ordering_holds"] is True
        assert payload["invariants"]["violations"] == 0

    def test_sweep_zero_run_cross_product_fails(self, tmp_path, capsys):
        # mobility × non-geometric families expands to nothing: error, not
        # a silently "successful" empty campaign
        exit_code = main([
            "sweep", "--families", "chain", "--failure-model", "mobility",
            "--failure-count", "3", "--store", str(tmp_path / "s"), "--quiet",
        ])
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "zero runs" in err
        assert "dropping chain" in err

    def test_report_empty_store_fails(self, tmp_path, capsys):
        assert main(["report", "--store", str(tmp_path / "empty")]) == 2
        assert "no stored runs" in capsys.readouterr().err

    def test_report_consolidate_flag(self, tmp_path, capsys):
        store = tmp_path / "store"
        self._sweep(store)
        capsys.readouterr()
        (store / "index.sqlite").unlink()
        assert main(["report", "--store", str(store), "--consolidate", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sum(payload["status_counts"].values()) == 16
