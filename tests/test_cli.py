"""Unit tests for the command-line interface."""

from __future__ import annotations

import os

import pytest

from repro.cli import ALGORITHMS, SCHEDULERS, TOPOLOGIES, build_parser, build_topology, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "pr"
        assert args.topology == "chain"
        assert args.scheduler == "greedy"

    def test_all_algorithms_accepted(self):
        for name in ALGORITHMS:
            args = build_parser().parse_args(["run", "--algorithm", name])
            assert args.algorithm == name

    def test_all_schedulers_accepted(self):
        for name in SCHEDULERS:
            args = build_parser().parse_args(["run", "--scheduler", name])
            assert args.scheduler == name


class TestBuildTopology:
    @pytest.mark.parametrize("name", TOPOLOGIES)
    def test_every_family_builds_a_valid_instance(self, name):
        instance = build_topology(name, 12, seed=1)
        assert instance.node_count >= 2
        assert instance.is_initially_acyclic()

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            build_topology("moebius", 10, seed=0)


class TestCommands:
    def test_run_command(self, capsys):
        exit_code = main(["run", "--topology", "chain", "--nodes", "10"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "node steps" in output
        assert "dest oriented : True" in output

    def test_run_command_every_algorithm(self, capsys):
        for name in ALGORITHMS:
            assert main(["run", "--algorithm", name, "--nodes", "8"]) == 0
        assert "converged     : True" in capsys.readouterr().out

    def test_run_writes_dot_file(self, tmp_path, capsys):
        dot_path = tmp_path / "final.dot"
        exit_code = main(["run", "--nodes", "6", "--dot", str(dot_path)])
        assert exit_code == 0
        assert dot_path.exists()
        assert "digraph" in dot_path.read_text()

    def test_compare_command(self, capsys):
        exit_code = main(["compare", "--topology", "grid", "--nodes", "9"])
        output = capsys.readouterr().out
        assert exit_code == 0
        for name in ("PR", "NewPR", "FR"):
            assert name in output

    def test_verify_command(self, capsys):
        exit_code = main(["verify", "--max-nodes", "3"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "violations: 0" in output

    def test_worst_case_command(self, capsys):
        exit_code = main(["worst-case", "--max-bad", "6"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "FR quadratic fit" in output

    def test_game_command(self, capsys):
        exit_code = main(["game", "--topology", "chain", "--nodes", "5"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "global optimum" in output

    def test_game_refuses_too_many_players(self, capsys):
        exit_code = main(["game", "--topology", "chain", "--nodes", "20", "--max-players", "8"])
        assert exit_code == 2

    def test_simulate_command(self, capsys):
        exit_code = main(["simulate", "--topology", "grid", "--nodes", "9"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "oriented=True" in output

    def test_simulate_with_failures(self, capsys):
        exit_code = main(
            ["simulate", "--topology", "grid", "--nodes", "16", "--failures", "2"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "summary:" in output

    def test_seed_is_threaded_through(self, capsys):
        main(["--seed", "7", "run", "--topology", "random-dag", "--nodes", "15"])
        first = capsys.readouterr().out
        main(["--seed", "7", "run", "--topology", "random-dag", "--nodes", "15"])
        second = capsys.readouterr().out
        assert first == second
