"""Unit tests for the command-line interface."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import ALGORITHMS, SCHEDULERS, TOPOLOGIES, build_parser, build_topology, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "pr"
        assert args.topology == "chain"
        assert args.scheduler == "greedy"

    def test_all_algorithms_accepted(self):
        for name in ALGORITHMS:
            args = build_parser().parse_args(["run", "--algorithm", name])
            assert args.algorithm == name

    def test_all_schedulers_accepted(self):
        for name in SCHEDULERS:
            args = build_parser().parse_args(["run", "--scheduler", name])
            assert args.scheduler == name


class TestBuildTopology:
    @pytest.mark.parametrize("name", TOPOLOGIES)
    def test_every_family_builds_a_valid_instance(self, name):
        instance = build_topology(name, 12, seed=1)
        assert instance.node_count >= 2
        assert instance.is_initially_acyclic()

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            build_topology("moebius", 10, seed=0)


class TestCommands:
    def test_run_command(self, capsys):
        exit_code = main(["run", "--topology", "chain", "--nodes", "10"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "node steps" in output
        assert "dest oriented : True" in output

    def test_run_command_every_algorithm(self, capsys):
        for name in ALGORITHMS:
            assert main(["run", "--algorithm", name, "--nodes", "8"]) == 0
        assert "converged     : True" in capsys.readouterr().out

    def test_run_writes_dot_file(self, tmp_path, capsys):
        dot_path = tmp_path / "final.dot"
        exit_code = main(["run", "--nodes", "6", "--dot", str(dot_path)])
        assert exit_code == 0
        assert dot_path.exists()
        assert "digraph" in dot_path.read_text()

    def test_compare_command(self, capsys):
        exit_code = main(["compare", "--topology", "grid", "--nodes", "9"])
        output = capsys.readouterr().out
        assert exit_code == 0
        for name in ("PR", "NewPR", "FR"):
            assert name in output

    def test_verify_command(self, capsys):
        exit_code = main(["verify", "--max-nodes", "3"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "violations: 0" in output

    def test_worst_case_command(self, capsys):
        exit_code = main(["worst-case", "--max-bad", "6"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "FR quadratic fit" in output

    def test_game_command(self, capsys):
        exit_code = main(["game", "--topology", "chain", "--nodes", "5"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "global optimum" in output

    def test_game_refuses_too_many_players(self, capsys):
        exit_code = main(["game", "--topology", "chain", "--nodes", "20", "--max-players", "8"])
        assert exit_code == 2

    def test_simulate_command(self, capsys):
        exit_code = main(["simulate", "--topology", "grid", "--nodes", "9"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "oriented=True" in output

    def test_simulate_with_failures(self, capsys):
        exit_code = main(
            ["simulate", "--topology", "grid", "--nodes", "16", "--failures", "2"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "summary:" in output

    def test_seed_is_threaded_through(self, capsys):
        main(["--seed", "7", "run", "--topology", "random-dag", "--nodes", "15"])
        first = capsys.readouterr().out
        main(["--seed", "7", "run", "--topology", "random-dag", "--nodes", "15"])
        second = capsys.readouterr().out
        assert first == second

    def test_run_json_output(self, capsys):
        exit_code = main(["run", "--topology", "grid", "--nodes", "9", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["algorithm"] == "PR"
        assert payload["destination_oriented"] is True
        assert payload["nodes"] == 9

    def test_compare_json_output(self, capsys):
        exit_code = main(["compare", "--topology", "chain", "--nodes", "8", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert set(payload["results"]) == set(ALGORITHMS)
        # the worst-case chain: FR does strictly more work than (one-step) PR
        assert payload["results"]["fr"]["node_steps"] > payload["results"]["pr"]["node_steps"]

    def test_compare_seeds_are_independent_per_algorithm(self, capsys):
        # under the seeded random scheduler every algorithm must get its own
        # derived seed; with a shared seed the schedules would be correlated.
        # The observable contract is determinism + per-algorithm derivation,
        # which we check through the derive_seed values being distinct.
        from repro.experiments.spec import derive_seed

        seeds = {name: derive_seed(7, "compare", name) for name in ALGORITHMS}
        assert len(set(seeds.values())) == len(seeds)
        # and the command itself is reproducible under the random scheduler
        main(["--seed", "7", "compare", "--topology", "random-dag", "--nodes", "12",
              "--scheduler", "random", "--json"])
        first = capsys.readouterr().out
        main(["--seed", "7", "compare", "--topology", "random-dag", "--nodes", "12",
              "--scheduler", "random", "--json"])
        assert first == capsys.readouterr().out


class TestCheck:
    def test_check_command(self, capsys):
        exit_code = main(["check", "--algorithm", "fr", "--topology", "grid", "--nodes", "9"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "(exhaustive)" in output
        assert "violations    : 0" in output

    def test_check_json_output(self, capsys):
        exit_code = main(["check", "--algorithm", "fr", "--topology", "grid",
                          "--nodes", "9", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["status"] == "ok"
        assert payload["states_explored"] > 1
        assert payload["violations"] == 0
        assert payload["acyclic_final"] is True
        assert payload["counterexamples"] == []
        assert payload["invariants"] == ["acyclic", "progress"]

    def test_check_acyclic_final_unset_when_not_checked(self, capsys):
        # a record must not claim acyclicity was verified when the check
        # never ran (the aggregate layer counts acyclic_final as an outcome)
        exit_code = main(["check", "--algorithm", "fr", "--topology", "grid",
                          "--nodes", "9", "--invariants", "progress", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["acyclic_final"] is None
        assert payload["invariants"] == ["progress"]

    def test_check_paper_invariants(self, capsys):
        exit_code = main(["check", "--algorithm", "onestep-pr", "--topology", "grid",
                          "--nodes", "9", "--invariants", "acyclic,progress,paper", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert "Invariant 3.1" in payload["predicates"]
        assert payload["violations"] == 0

    def test_check_workers_match_single_process(self, capsys):
        args = ["check", "--algorithm", "fr", "--topology", "grid", "--nodes", "9", "--json"]
        assert main(args) == 0
        single = json.loads(capsys.readouterr().out)
        assert main(args + ["--workers", "2"]) == 0
        sharded = json.loads(capsys.readouterr().out)
        for key in ("states_explored", "transitions_explored", "quiescent_states", "max_depth"):
            assert sharded[key] == single[key], key
        assert sharded["workers"] == 2

    def test_check_store_and_resume(self, tmp_path, capsys):
        store = tmp_path / "store"
        args = ["check", "--algorithm", "fr", "--topology", "grid", "--nodes", "9",
                "--store", str(store), "--json"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["status"] == "ok"
        # second run resumes from the stored verdict without re-exploring
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["skipped"] is True
        assert second["run_id"] == first["run_id"]
        assert second["states_explored"] == first["states_explored"]
        # --no-resume re-verifies
        assert main(args + ["--no-resume"]) == 0
        third = json.loads(capsys.readouterr().out)
        assert "skipped" not in third
        assert third["states_explored"] == first["states_explored"]

    def test_check_resume_after_interrupt_reuses_partial_store(self, tmp_path, capsys):
        # an interrupted campaign leaves some runs stored; re-running the
        # same set of checks skips those and executes only the missing ones
        store = tmp_path / "store"
        base = ["check", "--topology", "chain", "--store", str(store), "--json"]
        assert main(base + ["--nodes", "5"]) == 0
        capsys.readouterr()
        # "interrupt": the --nodes 6 check never ran.  Re-running the sweep:
        assert main(base + ["--nodes", "5"]) == 0
        assert json.loads(capsys.readouterr().out)["skipped"] is True
        assert main(base + ["--nodes", "6"]) == 0
        assert "skipped" not in json.loads(capsys.readouterr().out)
        from repro.experiments.store import ResultStore

        assert ResultStore(str(store)).count() == 2

    def test_check_symmetry_on_star(self, capsys):
        args = ["check", "--algorithm", "fr", "--topology", "star", "--nodes", "7", "--json"]
        assert main(args) == 0
        plain = json.loads(capsys.readouterr().out)
        assert main(args + ["--symmetry"]) == 0
        reduced = json.loads(capsys.readouterr().out)
        assert reduced["symmetry_reduced"] is True
        assert reduced["states_explored"] < plain["states_explored"]
        assert reduced["status"] == "ok"

    def test_check_spill(self, tmp_path, capsys):
        exit_code = main(["check", "--algorithm", "fr", "--topology", "grid", "--nodes", "9",
                          "--spill", "--spill-threshold", "5",
                          "--spill-dir", str(tmp_path / "spill"), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["spilled"] is True

    def test_check_truncated_status(self, capsys):
        exit_code = main(["check", "--algorithm", "fr", "--topology", "grid", "--nodes", "9",
                          "--max-states", "3", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["status"] == "truncated"
        assert payload["truncated"] is True

    def test_check_unknown_invariants_rejected(self, capsys):
        exit_code = main(["check", "--invariants", "acyclic,frobnicate"])
        assert exit_code == 2
        assert "unknown invariant" in capsys.readouterr().err

    def test_check_sharding_refused_without_kernel(self, capsys):
        exit_code = main(["check", "--algorithm", "bll", "--nodes", "5", "--workers", "2"])
        assert exit_code == 2
        assert "compiled signature kernel" in capsys.readouterr().err

    def test_check_spill_refused_without_kernel(self, capsys):
        exit_code = main(["check", "--algorithm", "bll", "--nodes", "5", "--spill"])
        assert exit_code == 2
        assert "compiled signature kernel" in capsys.readouterr().err

    def test_check_paper_warning_for_fr(self, capsys):
        exit_code = main(["check", "--algorithm", "fr", "--nodes", "5",
                          "--invariants", "paper", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "no paper invariant bundle" in captured.err


class TestSweepAndReport:
    def _sweep(self, store, extra=()):
        return main([
            "sweep", "--families", "chain,random-dag", "--algorithms", "pr,fr",
            "--sizes", "4,6,8,10", "--replicates", "1", "--store", str(store),
            "--quiet", *extra,
        ])

    def test_sweep_then_report(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert self._sweep(store, ["--json"]) == 0
        sweep_payload = json.loads(capsys.readouterr().out)
        assert sweep_payload["executed"] == 16
        assert sweep_payload["ok"] == 16

        assert main(["report", "--store", str(store)]) == 0
        output = capsys.readouterr().out
        assert "ordering holds: True" in output
        assert "chain/fr" in output

    def test_sweep_resume_skips(self, tmp_path, capsys):
        store = tmp_path / "store"
        self._sweep(store)
        capsys.readouterr()
        assert self._sweep(store, ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["skipped"] == 16
        assert payload["executed"] == 0

    def test_sweep_with_workers(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert self._sweep(store, ["--workers", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] == 16
        assert payload["workers"] == 2

    def test_report_json(self, tmp_path, capsys):
        store = tmp_path / "store"
        self._sweep(store)
        capsys.readouterr()
        assert main(["report", "--store", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pr_vs_fr"]["ordering_holds"] is True
        assert payload["invariants"]["violations"] == 0

    def test_sweep_zero_run_cross_product_fails(self, tmp_path, capsys):
        # mobility × non-geometric families expands to nothing: error, not
        # a silently "successful" empty campaign
        exit_code = main([
            "sweep", "--families", "chain", "--failure-model", "mobility",
            "--failure-count", "3", "--store", str(tmp_path / "s"), "--quiet",
        ])
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "zero runs" in err
        assert "dropping chain" in err

    def test_report_empty_store_fails(self, tmp_path, capsys):
        assert main(["report", "--store", str(tmp_path / "empty")]) == 2
        assert "no stored runs" in capsys.readouterr().err

    def test_report_consolidate_flag(self, tmp_path, capsys):
        store = tmp_path / "store"
        self._sweep(store)
        capsys.readouterr()
        (store / "index.sqlite").unlink()
        assert main(["report", "--store", str(store), "--consolidate", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sum(payload["status_counts"].values()) == 16
