"""Unit tests for the persistent campaign result store."""

from __future__ import annotations

import json

import pytest

from repro.experiments.store import ResultStore


def _record(run_id: str, **overrides) -> dict:
    record = {
        "run_id": run_id,
        "campaign": "test",
        "family": "chain",
        "algorithm": "pr",
        "scheduler": "greedy",
        "size": 6,
        "replicate": 0,
        "failure_model": "none",
        "failure_count": 0,
        "status": "ok",
        "node_steps": 5,
        "edge_reversals": 7,
        "dummy_steps": 0,
        "rounds": 3,
        "converged": True,
        "destination_oriented": True,
        "acyclic_final": True,
        "wall_time_s": 0.01,
    }
    record.update(overrides)
    return record


class TestAppendAndQuery:
    def test_append_writes_jsonl_and_indexes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        shard = store.append([_record("a"), _record("b", family="grid")])
        assert shard.exists()
        assert len(shard.read_text().strip().splitlines()) == 2
        assert store.count() == 2
        assert store.existing_run_ids() == {"a", "b"}

    def test_records_filtering(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append([
            _record("a"),
            _record("b", family="grid"),
            _record("c", family="grid", status="error"),
        ])
        assert [r["run_id"] for r in store.records(family="grid")] == ["b", "c"]
        assert [r["run_id"] for r in store.records(family="grid", status="ok")] == ["b"]
        assert store.records(converged=True) and store.records(converged=False) == []

    def test_filter_on_unknown_field_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError):
            store.records(flavour="vanilla")

    def test_duplicate_run_id_replaces(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append([_record("a", node_steps=1)])
        store.append([_record("a", node_steps=99)])
        assert store.count() == 1
        assert store.records()[0]["node_steps"] == 99

    def test_full_record_preserved_through_index(self, tmp_path):
        store = ResultStore(tmp_path)
        record = _record("a", custom_metric=123.5, error=None)
        store.append([record])
        assert store.records()[0] == json.loads(json.dumps(record))


class TestShards:
    def test_new_shard_numbers_increase(self, tmp_path):
        store = ResultStore(tmp_path)
        first = store.append([_record("a")])
        second = store.append([_record("b")])
        assert first.name == "shard-00001.jsonl"
        assert second.name == "shard-00002.jsonl"

    def test_explicit_shard_appends(self, tmp_path):
        store = ResultStore(tmp_path)
        shard = store.new_shard()
        store.append([_record("a")], shard)
        store.append([_record("b")], shard)
        assert len(shard.read_text().strip().splitlines()) == 2
        assert len(list((store.shard_dir).glob("*.jsonl"))) == 1


class TestConsolidate:
    def test_index_rebuilt_from_shards(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append([_record("a"), _record("b")])
        store.close()
        store.index_path.unlink()

        reopened = ResultStore(tmp_path)
        # existing_run_ids transparently consolidates when the index is gone
        assert reopened.existing_run_ids() == {"a", "b"}
        assert reopened.count() == 2

    def test_consolidate_after_manual_shard_copy(self, tmp_path):
        source = ResultStore(tmp_path / "src")
        source.append([_record("a"), _record("b")])
        target = ResultStore(tmp_path / "dst")
        target.append([_record("c")])
        # simulate merging stores by copying shard files
        shard = source.shard_dir / "shard-00001.jsonl"
        (target.shard_dir / "shard-00099.jsonl").write_text(shard.read_text())
        assert target.consolidate() == 3
        assert target.existing_run_ids() == {"a", "b", "c"}

    def test_empty_store(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.consolidate() == 0
        assert store.existing_run_ids() == set()
        assert store.records() == []


class TestCampaignProvenance:
    def test_campaign_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load_campaign() is None
        store.record_campaign({"name": "x", "sizes": [4, 8]})
        assert store.load_campaign() == {"name": "x", "sizes": [4, 8]}

    def test_sidecars_written_atomically(self, tmp_path):
        store = ResultStore(tmp_path)
        store.record_campaign({"name": "x"})
        store.record_report({"ok": 1})
        assert store.load_report() == {"ok": 1}
        # the write-then-rename leaves no temp files behind
        leftovers = [p.name for p in store.root.iterdir()
                     if p.name.startswith(".") or p.name.endswith(".tmp")]
        assert leftovers == []


class TestIntegrity:
    def _shard(self, store: ResultStore):
        return store.shard_dir / "shard-00001.jsonl"

    def test_new_lines_are_checksummed(self, tmp_path):
        from repro.io.serialization import split_checksummed_line

        store = ResultStore(tmp_path)
        store.append([_record("a")])
        line = self._shard(store).read_text().strip()
        payload, crc_ok = split_checksummed_line(line)
        assert crc_ok is True
        assert json.loads(payload)["run_id"] == "a"

    def test_legacy_plain_json_lines_still_readable(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append([_record("a")])
        with self._shard(store).open("a") as handle:
            handle.write(json.dumps(_record("legacy")) + "\n")
        assert {r["run_id"] for r in store.iter_shard_records()} == {"a", "legacy"}
        store.consolidate()
        assert store.existing_run_ids() == {"a", "legacy"}
        report = store.fsck()
        assert report["legacy_lines"] == 1
        assert report["checksummed_lines"] == 1
        assert report["bad_lines"] == []

    def test_torn_tail_skipped_and_resumable(self, tmp_path):
        # regression: a crash mid-append used to poison every later read of
        # the shard; now the torn line is skipped and the campaign resumes
        store = ResultStore(tmp_path)
        store.append([_record("a"), _record("b")])
        with self._shard(store).open("a") as handle:
            handle.write('{"run_id": "torn", "status"')  # no newline: torn
        assert {r["run_id"] for r in store.iter_shard_records()} == {"a", "b"}
        assert store.consolidate() == 2
        assert store.existing_run_ids() == {"a", "b"}

    def test_corrupt_checksum_line_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append([_record("a"), _record("b")])
        shard = self._shard(store)
        lines = shard.read_text().splitlines()
        # flip one byte inside the first record's JSON: the CRC must catch it
        lines[0] = lines[0].replace('"ok"', '"ko"', 1)
        shard.write_text("\n".join(lines) + "\n")
        assert [r["run_id"] for r in store.iter_shard_records()] == ["b"]

    def test_fsck_quarantines_and_rebuilds(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append([_record("a"), _record("b"), _record("c")])
        shard = self._shard(store)
        lines = shard.read_text().splitlines()
        lines[1] = lines[1][:-4] + "dead"  # corrupt b's CRC suffix
        shard.write_text("\n".join(lines) + '\n{"torn"')

        report = store.fsck()
        assert report["records"] == 2
        assert len(report["bad_lines"]) == 2
        assert len(report["truncated_tails"]) == 1
        assert report["index_records"] == 2
        quarantined = (store.quarantine_dir / "shard-00001.jsonl.bad").read_text()
        assert "dead" in quarantined and '{"torn"' in quarantined
        # the shard itself is clean now: a second fsck finds nothing
        second = store.fsck()
        assert second["bad_lines"] == []
        assert store.existing_run_ids() == {"a", "c"}

    def test_fsck_no_repair_reports_only(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append([_record("a")])
        shard = self._shard(store)
        shard.write_text(shard.read_text() + "garbage\n")
        before = shard.read_text()
        report = store.fsck(repair=False)
        assert len(report["bad_lines"]) == 1
        assert report["index_records"] is None
        assert shard.read_text() == before
        assert not store.quarantine_dir.exists()

    def test_telemetry_torn_tail_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.record_telemetry([
            {"kind": "event", "name": "x", "t": 0.0, "attrs": {}},
        ])
        with store.telemetry_path.open("a") as handle:
            handle.write('{"kind": "eve')
        events = list(store.iter_telemetry())
        assert [e["name"] for e in events] == ["x"]
