"""Differential tests: kernel simulation engine vs the legacy object oracle.

The scenario runner's fast path executes entire campaigns on compiled int
kernels.  Its contract is *field-for-field equality* with the legacy object
path — final orientation signature, work counters, round counts, convergence
step counts, churn bookkeeping — across every kernel algorithm × every
registry scheduler × every failure model, for seeded (hence reproducible)
scenarios.  These tests pin that contract, plus the engine plumbing around
it (selection, stores, CLI).
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.executor import run_campaign
from repro.experiments.runner import (
    ENGINE_KERNEL,
    ENGINE_LEGACY,
    algorithm_has_kernel,
    execute_scenario,
    resolve_engine,
)
from repro.experiments.spec import ScenarioSpec, derive_seed
from repro.experiments.spec import CampaignSpec
from repro.experiments.store import ResultStore

KERNEL_ALGORITHMS = ("pr", "onestep-pr", "new-pr", "fr")
ALL_SCHEDULERS = ("greedy", "sequential", "random", "adversarial", "lazy", "round-robin")

#: Everything except the wall clock and the engine stamp must be identical.
VOLATILE = ("wall_time_s", "engine")


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        family="random-dag", size=12, algorithm="pr", scheduler="greedy",
        topology_seed=derive_seed("diff-topo"), scheduler_seed=derive_seed("diff-sched"),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _stable(record):
    return {k: v for k, v in record.items() if k not in VOLATILE}


def _assert_engines_agree(spec: ScenarioSpec) -> dict:
    fast = execute_scenario(spec.to_dict(), engine=ENGINE_KERNEL)
    legacy = execute_scenario(spec.to_dict(), engine=ENGINE_LEGACY)
    assert fast["engine"] == ENGINE_KERNEL
    assert legacy["engine"] == ENGINE_LEGACY
    assert _stable(fast) == _stable(legacy)
    return fast


class TestFieldForFieldEquality:
    @pytest.mark.parametrize("algorithm", KERNEL_ALGORITHMS)
    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    def test_plain_convergence(self, algorithm, scheduler):
        record = _assert_engines_agree(_spec(algorithm=algorithm, scheduler=scheduler))
        assert record["status"] == "ok"
        assert record["converged"] is True
        assert record["destination_oriented"] is True

    @pytest.mark.parametrize("algorithm", KERNEL_ALGORITHMS)
    @pytest.mark.parametrize("scheduler", ("greedy", "random", "adversarial"))
    def test_link_failure_churn(self, algorithm, scheduler):
        record = _assert_engines_agree(_spec(
            family="grid", size=16, algorithm=algorithm, scheduler=scheduler,
            failure_model="link-failures", failure_count=3,
        ))
        assert record["status"] == "ok"
        assert record["failures_applied"] >= 1

    @pytest.mark.parametrize("algorithm", KERNEL_ALGORITHMS)
    @pytest.mark.parametrize("scheduler", ("greedy", "random"))
    def test_mobility_churn(self, algorithm, scheduler):
        record = _assert_engines_agree(_spec(
            family="geometric", size=12, algorithm=algorithm, scheduler=scheduler,
            failure_model="mobility", failure_count=5,
        ))
        assert record["status"] == "ok"

    def test_truncated_run_matches(self):
        record = _assert_engines_agree(_spec(
            family="chain", size=12, algorithm="fr", failure_model="link-failures",
            failure_count=2, max_steps=2,
        ))
        assert record["converged"] is False

    def test_kernel_engine_is_deterministic(self):
        spec = _spec(scheduler="random").to_dict()
        first = execute_scenario(dict(spec), engine=ENGINE_KERNEL)
        second = execute_scenario(dict(spec), engine=ENGINE_KERNEL)
        assert _stable(first) == _stable(second)

    def test_kernel_timeout_recorded(self):
        record = execute_scenario(
            _spec(family="chain", size=60), timeout_s=0.0, engine=ENGINE_KERNEL
        )
        assert record["status"] == "timeout"
        assert record["engine"] == ENGINE_KERNEL


class TestEngineSelection:
    def test_auto_prefers_kernel(self):
        assert resolve_engine("auto", _spec()) == ENGINE_KERNEL

    def test_auto_falls_back_for_bll(self):
        assert resolve_engine("auto", _spec(algorithm="bll")) == ENGINE_LEGACY
        record = execute_scenario(_spec(algorithm="bll", size=8).to_dict())
        assert record["status"] == "ok"
        assert record["engine"] == ENGINE_LEGACY

    def test_forced_kernel_on_bll_is_an_error_record(self):
        record = execute_scenario(_spec(algorithm="bll").to_dict(), engine=ENGINE_KERNEL)
        assert record["status"] == "error"
        assert "kernel" in record["error"]
        assert record["engine"] is None

    def test_unknown_engine_is_an_error_record(self):
        record = execute_scenario(_spec().to_dict(), engine="warp-drive")
        assert record["status"] == "error"
        assert "unknown engine" in record["error"]

    def test_algorithm_has_kernel_registry(self):
        for name in KERNEL_ALGORITHMS:
            assert algorithm_has_kernel(name)
        assert not algorithm_has_kernel("bll")
        assert not algorithm_has_kernel("no-such-algorithm")


class TestCampaignEnginePlumbing:
    def _campaign(self, **overrides) -> CampaignSpec:
        base = dict(
            name="diff", families=("chain", "random-dag"), algorithms=("pr", "fr"),
            schedulers=("greedy", "random"), sizes=(5, 9), replicates=1,
        )
        base.update(overrides)
        return CampaignSpec(**base)

    def test_engines_and_cache_stats_reported(self, tmp_path):
        with ResultStore(tmp_path) as store:
            report = run_campaign(self._campaign(), store, workers=1)
            payload = report.to_dict()
            assert payload["engines"] == {"kernel": 16}
            assert payload["kernel_cache"]["kernel_compiles"] >= 1
            assert payload["kernel_cache"]["kernel_hits"] >= 1
            assert store.engine_counts() == {"kernel": 16}
            assert len(store.records(engine="kernel")) == 16

    def test_legacy_engine_forced_campaign_matches_kernel_campaign(self, tmp_path):
        kernel_store = ResultStore(tmp_path / "kernel")
        legacy_store = ResultStore(tmp_path / "legacy")
        campaign = self._campaign()
        run_campaign(campaign, kernel_store, workers=1, engine=ENGINE_KERNEL)
        report = run_campaign(campaign, legacy_store, workers=1, engine=ENGINE_LEGACY)
        assert report.engines == {"legacy": 16}
        kernel_records = {r["run_id"]: _stable(r) for r in kernel_store.records()}
        legacy_records = {r["run_id"]: _stable(r) for r in legacy_store.records()}
        assert kernel_records == legacy_records

    def test_inline_crash_sentinel_does_not_kill_the_parent(self, tmp_path):
        # workers<=1 executes in-process: the crash sentinel must become an
        # error record, not an os._exit of the calling process
        from repro.experiments.spec import CRASH_SENTINEL

        with ResultStore(tmp_path) as store:
            report = run_campaign(
                self._campaign(algorithms=("pr", CRASH_SENTINEL), schedulers=("greedy",),
                               families=("chain",), sizes=(5,)),
                store, workers=1,
            )
            assert report.ok == 1
            assert report.errors == 1
            assert store.records(algorithm=CRASH_SENTINEL)[0]["status"] == "error"

    def test_mixed_campaign_counts_both_engines(self, tmp_path):
        with ResultStore(tmp_path) as store:
            report = run_campaign(
                self._campaign(algorithms=("pr", "bll"), schedulers=("greedy",)),
                store, workers=1,
            )
            assert report.engines == {"kernel": 4, "legacy": 4}
            assert store.engine_counts() == {"kernel": 4, "legacy": 4}

    def test_pooled_engine_plumbing_matches_inline(self, tmp_path):
        inline_store = ResultStore(tmp_path / "inline")
        pooled_store = ResultStore(tmp_path / "pooled")
        campaign = self._campaign()
        run_campaign(campaign, inline_store, workers=1)
        report = run_campaign(campaign, pooled_store, workers=2, chunk_size=3)
        assert report.engines == {"kernel": 16}
        assert sum(report.kernel_cache.values()) > 0
        inline_records = {r["run_id"]: _stable(r) for r in inline_store.records()}
        pooled_records = {r["run_id"]: _stable(r) for r in pooled_store.records()}
        assert inline_records == pooled_records


class TestMaskSimulationChainDifferential:
    @pytest.mark.parametrize("scheduler_seed", [3, 17])
    @pytest.mark.parametrize("subset_probability", [0.0, 0.5])
    def test_mask_chain_matches_object_chain(self, scheduler_seed, subset_probability):
        from repro.automata.executions import run
        from repro.core.pr import PartialReversal
        from repro.kernels import SignatureSimulator, compile_expander
        from repro.kernels.schedulers import MaskRandomScheduler
        from repro.schedulers.random_scheduler import RandomScheduler
        from repro.topology.generators import grid_instance
        from repro.verification.simulation import (
            MaskSimulationChain,
            check_full_simulation_chain,
        )

        instance = grid_instance(4, 4, oriented_towards_destination=False)
        simulator = SignatureSimulator(compile_expander(PartialReversal(instance)))
        trace = []
        outcome = simulator.run_phase(
            MaskRandomScheduler(seed=scheduler_seed, subset_probability=subset_probability),
            trace=trace,
        )
        fast = MaskSimulationChain(instance).check(trace)

        result = run(
            PartialReversal(instance),
            RandomScheduler(seed=scheduler_seed, subset_probability=subset_probability),
        )
        oracle = check_full_simulation_chain(result.execution)
        assert outcome.steps == result.steps_taken
        assert fast.holds == oracle.holds
        assert fast.r_prime_holds == oracle.r_prime.holds
        assert fast.r_holds == oracle.r.holds
        assert fast.r_prime_points == oracle.r_prime.correspondence_points
        assert fast.r_points == oracle.r.correspondence_points
        assert fast.onestep_steps == oracle.r_prime.corresponding_execution.length
        assert fast.newpr_steps == oracle.r.corresponding_execution.length

    def test_mask_chain_flags_a_corrupted_trace(self):
        from repro.kernels import SignatureSimulator, compile_expander
        from repro.kernels.schedulers import MaskGreedyScheduler
        from repro.core.pr import PartialReversal
        from repro.topology.generators import worst_case_chain_instance
        from repro.verification.simulation import MaskSimulationChain

        instance = worst_case_chain_instance(6)
        simulator = SignatureSimulator(compile_expander(PartialReversal(instance)))
        trace = []
        simulator.run_phase(MaskGreedyScheduler(), trace=trace)
        # duplicate the first action: its actors are no longer sinks there
        corrupted = [trace[0], trace[0]] + trace[1:]
        report = MaskSimulationChain(instance).check(corrupted)
        assert not report.r_prime_holds
        assert report.failures


class TestCliEngine:
    def test_run_engine_flag_outputs_match(self, capsys):
        from repro.cli import main

        base = ["run", "--topology", "grid", "--nodes", "9", "--scheduler", "random",
                "--json"]
        assert main(["--seed", "5"] + base + ["--engine", "kernel"]) == 0
        fast = json.loads(capsys.readouterr().out)
        assert main(["--seed", "5"] + base + ["--engine", "legacy"]) == 0
        legacy = json.loads(capsys.readouterr().out)
        assert fast.pop("engine") == "kernel"
        assert legacy.pop("engine") == "legacy"
        assert fast == legacy

    def test_run_forced_kernel_on_bll_fails(self, capsys):
        from repro.cli import main

        assert main(["run", "--algorithm", "bll", "--engine", "kernel"]) == 2
        assert "no kernel fast path" in capsys.readouterr().err

    def test_sweep_json_reports_engines_and_cache(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "sweep", "--families", "chain", "--algorithms", "pr,fr",
            "--sizes", "5,7", "--store", str(tmp_path / "s"), "--quiet", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engines"] == {"kernel": 4}
        assert "kernel_compiles" in payload["kernel_cache"]

    def test_sweep_engine_legacy_flag(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "sweep", "--families", "chain", "--algorithms", "pr",
            "--sizes", "5", "--engine", "legacy",
            "--store", str(tmp_path / "s"), "--quiet", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engines"] == {"legacy": 1}

    def test_report_includes_engine_counts(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "sweep", "--families", "chain", "--algorithms", "pr",
            "--sizes", "5", "--store", str(tmp_path / "s"), "--quiet",
        ]) == 0
        capsys.readouterr()
        assert main(["report", "--store", str(tmp_path / "s"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine_counts"] == {"kernel": 1}
