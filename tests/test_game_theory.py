"""Unit tests for the game-theoretic PR vs FR comparison (experiment E11)."""

from __future__ import annotations

import pytest

from repro.analysis.game_theory import (
    MixedStrategyReversal,
    Strategy,
    StrategyProfile,
    analyse_game,
    enumerate_profiles,
    full_reversal_profile,
    is_nash_equilibrium,
    partial_reversal_profile,
    play,
    social_cost,
)
from repro.core.full_reversal import FullReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.analysis.work import count_reversals
from repro.schedulers.greedy import GreedyScheduler
from repro.topology.generators import chain_instance, worst_case_chain_instance


@pytest.fixture
def small_chain():
    """A 5-node worst-case chain: small enough to enumerate all 2^4 profiles."""
    return chain_instance(5, towards_destination=False)


class TestProfiles:
    def test_full_profile_assigns_full_everywhere(self, small_chain):
        profile = full_reversal_profile(small_chain)
        assert all(profile.strategy_of(u) is Strategy.FULL for u in small_chain.non_destination_nodes)

    def test_partial_profile_assigns_partial_everywhere(self, small_chain):
        profile = partial_reversal_profile(small_chain)
        assert all(
            profile.strategy_of(u) is Strategy.PARTIAL for u in small_chain.non_destination_nodes
        )

    def test_with_strategy_creates_deviation(self, small_chain):
        profile = full_reversal_profile(small_chain)
        deviated = profile.with_strategy(2, Strategy.PARTIAL)
        assert deviated.strategy_of(2) is Strategy.PARTIAL
        assert profile.strategy_of(2) is Strategy.FULL  # original unchanged

    def test_enumerate_profiles_count(self, small_chain):
        profiles = list(enumerate_profiles(small_chain))
        assert len(profiles) == 2 ** len(small_chain.non_destination_nodes)

    def test_profiles_hashable_and_unique(self, small_chain):
        profiles = set(enumerate_profiles(small_chain))
        assert len(profiles) == 2 ** len(small_chain.non_destination_nodes)


class TestMixedAutomaton:
    def test_all_partial_matches_pr_work(self, small_chain):
        outcome = play(small_chain, partial_reversal_profile(small_chain))
        pr_work = count_reversals(OneStepPartialReversal(small_chain), GreedyScheduler())
        assert outcome.social_cost == pr_work.node_steps

    def test_all_full_matches_fr_work(self, small_chain):
        outcome = play(small_chain, full_reversal_profile(small_chain))
        fr_work = count_reversals(FullReversal(small_chain), GreedyScheduler())
        assert outcome.social_cost == fr_work.node_steps

    def test_missing_strategy_rejected(self, small_chain):
        with pytest.raises(ValueError):
            MixedStrategyReversal(small_chain, StrategyProfile({1: Strategy.FULL}))

    def test_outcome_converges(self, small_chain):
        for profile in enumerate_profiles(small_chain):
            assert play(small_chain, profile).converged

    def test_node_costs_cover_all_nodes(self, small_chain):
        outcome = play(small_chain, full_reversal_profile(small_chain))
        assert set(outcome.node_costs) == set(small_chain.non_destination_nodes)


class TestHeadlineClaims:
    """The shape of the Charron-Bost / Welch / Widder result on small instances."""

    def test_fr_profile_is_nash_equilibrium(self, small_chain):
        assert is_nash_equilibrium(small_chain, full_reversal_profile(small_chain))

    def test_pr_profile_cost_is_global_optimum_here(self, small_chain):
        analysis = analyse_game(small_chain)
        pr_cost = analysis.cost_of(partial_reversal_profile(small_chain))
        assert pr_cost == analysis.optimum_cost

    def test_fr_cost_at_least_pr_cost(self, small_chain):
        fr_cost = social_cost(small_chain, full_reversal_profile(small_chain))
        pr_cost = social_cost(small_chain, partial_reversal_profile(small_chain))
        assert fr_cost >= pr_cost

    def test_fr_has_max_social_cost_among_equilibria(self, small_chain):
        analysis = analyse_game(small_chain)
        fr_cost = analysis.cost_of(full_reversal_profile(small_chain))
        assert analysis.equilibria  # FR at least is one
        assert fr_cost == max(analysis.equilibrium_costs())

    def test_pr_optimal_when_equilibrium(self):
        """Whenever the all-PR profile is a Nash equilibrium it attains the optimum."""
        for n_bad in (2, 3, 4):
            instance = worst_case_chain_instance(n_bad)
            analysis = analyse_game(instance)
            pr_profile = partial_reversal_profile(instance)
            if pr_profile in analysis.equilibria:
                assert analysis.cost_of(pr_profile) == analysis.optimum_cost

    def test_equilibrium_costs_sorted(self, small_chain):
        analysis = analyse_game(small_chain)
        costs = analysis.equilibrium_costs()
        assert list(costs) == sorted(costs)
