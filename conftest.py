"""Pytest bootstrap: make ``src/`` importable when the package is not installed.

The canonical way to use the library is ``pip install -e .``; this hook only
exists so that ``pytest`` run from a fresh checkout (e.g. in offline CI
containers where editable installs are awkward) still finds ``repro``.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
