"""Next-hop routing tables derived from a link-reversal orientation.

Once the graph is destination oriented, routing is trivial: any outgoing link
leads (acyclically) towards the destination, so a node may forward a packet to
any of its current out-neighbours.  :class:`RoutingTable` materialises that
choice, preferring the out-neighbour with the shortest remaining directed
distance, and offers the route-quality metrics the routing experiments report
(hop counts and stretch relative to the undirected shortest path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.graph import LinkReversalInstance, Orientation

Node = Hashable

#: Verdicts returned by :meth:`RoutingTable.route_with_verdict`.
ROUTE_DELIVERED = "delivered"
ROUTE_NO_ROUTE = "no-route"
ROUTE_LOOP = "loop"
ROUTE_TRUNCATED = "truncated"


def _canonical_node_key(node: Node) -> Tuple[str, str]:
    """A total order over nodes independent of the instance node-list order.

    Tie-breaking next hops by the node's *position* in ``instance.nodes``
    makes the table depend on construction order: two instances over the
    same graph with permuted node lists would pick different hops.  Keying
    by ``(type name, repr)`` instead is stable across orderings and safe
    for heterogeneous node labels (ints, strings, tuples).
    """
    return (node.__class__.__name__, repr(node))


def _id_bfs_distances(
    instance: LinkReversalInstance, adjacency: List[List[int]]
) -> Dict[Node, int]:
    """BFS hop distances from the destination over per-node-id adjacency lists."""
    nodes = instance.nodes
    start = instance.node_index(instance.destination)
    dist = [-1] * len(nodes)
    dist[start] = 0
    frontier = [start]
    while frontier:
        next_frontier: List[int] = []
        for i in frontier:
            d = dist[i] + 1
            for j in adjacency[i]:
                if dist[j] < 0:
                    dist[j] = d
                    next_frontier.append(j)
        frontier = next_frontier
    return {nodes[i]: d for i, d in enumerate(dist) if d >= 0}


def _directed_distances_to_destination(
    instance: LinkReversalInstance, directed_edges: Sequence[Tuple[Node, Node]]
) -> Dict[Node, int]:
    """BFS distance (in directed hops) from every node to the destination."""
    node_index = instance.node_index
    predecessors: List[List[int]] = [[] for _ in instance.nodes]
    for tail, head in directed_edges:
        predecessors[node_index(head)].append(node_index(tail))
    return _id_bfs_distances(instance, predecessors)


def _undirected_distances_to_destination(instance: LinkReversalInstance) -> Dict[Node, int]:
    """BFS hop distance from every node to the destination, ignoring directions."""
    node_index = instance.node_index
    adjacency: List[List[int]] = [[] for _ in instance.nodes]
    for i, u in enumerate(instance.nodes):
        adjacency[i] = [node_index(v) for v in instance.incident_neighbours(u)]
    return _id_bfs_distances(instance, adjacency)


def undirected_distances(instance: LinkReversalInstance) -> Dict[Node, int]:
    """Undirected BFS hop distance to the destination for every reachable node.

    Nodes in a component not containing the destination are absent from the
    map (not mapped to 0 or -1) — the data plane uses this to mark their
    per-packet stretch undefined.
    """
    return _undirected_distances_to_destination(instance)


@dataclass
class RoutingTable:
    """Next hops towards the destination derived from a directed edge set."""

    instance: LinkReversalInstance
    next_hop: Dict[Node, Optional[Node]]
    directed_distance: Dict[Node, int]
    undirected_distance: Dict[Node, int]

    # ------------------------------------------------------------------
    @classmethod
    def from_orientation(cls, orientation: Orientation) -> "RoutingTable":
        """Build the table from an :class:`~repro.core.graph.Orientation`."""
        return cls.from_directed_edges(orientation.instance, orientation.directed_edges())

    @classmethod
    def from_directed_edges(
        cls, instance: LinkReversalInstance, directed_edges: Sequence[Tuple[Node, Node]]
    ) -> "RoutingTable":
        """Build the table from an explicit directed edge list."""
        directed_distance = _directed_distances_to_destination(instance, directed_edges)
        undirected_distance = _undirected_distances_to_destination(instance)

        out_neighbours: Dict[Node, List[Node]] = {u: [] for u in instance.nodes}
        for tail, head in directed_edges:
            out_neighbours[tail].append(head)

        next_hop: Dict[Node, Optional[Node]] = {}
        for u in instance.nodes:
            if u == instance.destination:
                next_hop[u] = None
                continue
            candidates = [v for v in out_neighbours[u] if v in directed_distance]
            if not candidates:
                next_hop[u] = None
                continue
            next_hop[u] = min(
                candidates,
                key=lambda v: (directed_distance[v], _canonical_node_key(v)),
            )
        return cls(instance, next_hop, directed_distance, undirected_distance)

    # ------------------------------------------------------------------
    def has_route(self, node: Node) -> bool:
        """Whether ``node`` currently has a usable route to the destination."""
        return node == self.instance.destination or self.next_hop.get(node) is not None

    def routable_fraction(self) -> float:
        """Fraction of nodes with a route (1.0 means destination oriented)."""
        nodes = self.instance.nodes
        routable = sum(1 for u in nodes if self.has_route(u))
        return routable / len(nodes)

    def route_with_verdict(
        self, source: Node, max_hops: Optional[int] = None
    ) -> Tuple[str, Tuple[Node, ...]]:
        """Walk the next-hop table and say *why* the walk ended.

        Returns ``(verdict, path)`` where ``verdict`` is one of

        * :data:`ROUTE_DELIVERED` — the walk reached the destination; ``path``
          is the full route including both endpoints;
        * :data:`ROUTE_NO_ROUTE` — a node on the walk has no next hop (a sink
          other than the destination, or a partitioned component); ``path``
          is the prefix walked so far;
        * :data:`ROUTE_LOOP` — the walk revisited a node.  Tables snapshotted
          mid-reversal-cascade are not destination oriented and can contain
          transient cycles; the walk terminates at the *first* revisit rather
          than burning the whole ``max_hops`` budget;
        * :data:`ROUTE_TRUNCATED` — ``max_hops`` hops were taken without
          reaching the destination (only possible with an explicit
          ``max_hops`` smaller than the number of nodes, since any simple
          path is shorter than that).

        The data plane's drop accounting relies on the loop/no-route
        distinction, so this method never conflates the two.
        """
        if source == self.instance.destination:
            return ROUTE_DELIVERED, (source,)
        if max_hops is None:
            max_hops = len(self.instance.nodes)
        path = [source]
        visited = {source}
        current = source
        for _ in range(max_hops):
            nxt = self.next_hop.get(current)
            if nxt is None:
                return ROUTE_NO_ROUTE, tuple(path)
            if nxt in visited:
                path.append(nxt)
                return ROUTE_LOOP, tuple(path)
            path.append(nxt)
            if nxt == self.instance.destination:
                return ROUTE_DELIVERED, tuple(path)
            visited.add(nxt)
            current = nxt
        return ROUTE_TRUNCATED, tuple(path)

    def route(self, source: Node, max_hops: Optional[int] = None) -> Tuple[Node, ...]:
        """The full next-hop route from ``source`` to the destination.

        ``()`` when the walk does not reach the destination for *any* reason;
        use :meth:`route_with_verdict` to distinguish loops from missing
        routes.
        """
        verdict, path = self.route_with_verdict(source, max_hops)
        return path if verdict == ROUTE_DELIVERED else ()

    def stretch(self, source: Node) -> Optional[float]:
        """Route length divided by the undirected shortest-path length.

        ``None`` if the node has no route, or is unreachable from the
        destination even ignoring edge directions (partitioned component —
        ``undirected_distance`` has no entry, so stretch is undefined).  The
        destination itself has stretch 1.0: its route and shortest path are
        both zero hops.  A missing BFS entry (``None``) and a legitimate
        distance of 0 are distinct cases and must not be conflated by a
        truthiness check.
        """
        verdict, path = self.route_with_verdict(source)
        if verdict != ROUTE_DELIVERED:
            return None
        shortest = self.undirected_distance.get(source)
        if shortest is None:
            # Unreachable even undirected: stretch is undefined, not infinite.
            return None
        if shortest == 0:
            # Only the destination is at undirected distance 0; its
            # zero-hop route is trivially a shortest path.
            return 1.0
        return (len(path) - 1) / shortest

    def average_stretch(self) -> Optional[float]:
        """Mean stretch over all non-destination nodes with a defined stretch.

        Nodes whose stretch is ``None`` — no current route, or unreachable
        from the destination even undirected (partitioned component) — are
        **excluded** from the mean rather than counted as zero or infinity,
        so the average reflects only nodes the table can actually serve.
        Returns ``None`` when no node has a defined stretch.
        """
        values = [
            s
            for u in self.instance.nodes
            if u != self.instance.destination
            for s in (self.stretch(u),)
            if s is not None
        ]
        if not values:
            return None
        return sum(values) / len(values)


def extract_route(orientation: Orientation, source: Node) -> Tuple[Node, ...]:
    """Shortest directed route from ``source`` to the destination in an orientation."""
    return orientation.shortest_path_to_destination(source)


def route_stretch(orientation: Orientation, source: Node) -> Optional[float]:
    """Stretch of the shortest directed route against the undirected shortest path."""
    table = RoutingTable.from_orientation(orientation)
    return table.stretch(source)
