"""TORA — the Temporally-Ordered Routing Algorithm, built on partial reversal.

TORA (Park & Corson) is the best-known deployment of the partial-reversal idea
the paper studies: every node keeps a five-component *height*

``(tau, oid, r, delta, id)``

made of a **reference level** ``(tau, oid, r)`` — creation time of the level,
originating node, and a reflection bit — plus an **offset** ``delta`` and the
node ``id`` as the final tie breaker.  Heights are ordered lexicographically
and each link points from the higher to the lower endpoint, exactly like the
Gafni–Bertsekas heights in :mod:`repro.core.heights`; the destination is
pinned at the globally minimal height ``ZERO``.

The three protocol functions are:

* **route creation** — nodes start with a ``NULL`` height; a node that needs a
  route issues a query (QRY), and update (UPD) packets propagate heights
  outward from the destination, assigning each node a height one offset above
  its lowest routed neighbour (a BFS wavefront in this synchronous model);
* **route maintenance** — when a node loses its last downstream link it
  applies the classic five-case rule (generate a new reference level,
  propagate the highest neighbouring reference level, reflect it, detect a
  partition, or generate after a failed reflection).  Cases 2 and 3 are the
  "partial reversal" at the heart of the paper: only the links to the
  neighbours that have not already reversed get flipped;
* **partition detection / route erasure** — when a reflected reference level
  comes back to its originator, every route through that component is erased
  (CLR), instead of reversing links forever as plain Gafni–Bertsekas would.

This implementation operates at the same abstraction level as the paper's
automata: a global state and atomic per-node events (link failures are
delivered instantaneously to both endpoints, maintenance steps are applied
one node at a time).  The asynchronous message-passing refinement of plain
partial reversal lives in :mod:`repro.distributed`; TORA's added value here is
the reference-level machinery and partition detection, which the route
maintenance experiments exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.graph import LinkReversalInstance

Node = Hashable


@dataclass(frozen=True, order=True)
class ReferenceLevel:
    """The ``(tau, oid, r)`` prefix of a TORA height."""

    tau: int
    oid_rank: int
    r: int

    @classmethod
    def zero(cls) -> "ReferenceLevel":
        """The all-zero reference level used by routed nodes in steady state."""
        return cls(0, 0, 0)

    def reflected(self) -> "ReferenceLevel":
        """The same level with the reflection bit set (maintenance case 3)."""
        return ReferenceLevel(self.tau, self.oid_rank, 1)


@dataclass(frozen=True, order=True)
class ToraHeight:
    """A full TORA height ``(tau, oid, r, delta, id)``; ordered lexicographically."""

    level: ReferenceLevel
    delta: int
    rank: int

    @classmethod
    def zero(cls, rank: int) -> "ToraHeight":
        """The destination's height."""
        return cls(ReferenceLevel.zero(), 0, rank)


class ToraRouter:
    """A TORA routing process for a single destination.

    Parameters
    ----------
    instance:
        The topology; the instance's destination is TORA's destination.
    auto_create:
        When ``True`` (default) routes are created for every node immediately
        (the common "proactive for one destination" deployment).  When
        ``False`` nodes start with ``NULL`` heights and routes are built on
        demand via :meth:`create_route`.
    """

    def __init__(self, instance: LinkReversalInstance, auto_create: bool = True):
        instance.validate(require_dag=True)
        self.instance = instance
        self.destination = instance.destination
        self._rank = {u: i for i, u in enumerate(instance.nodes)}
        self._clock = 0
        #: current undirected link set (mutable: links can fail / reappear)
        self.links: Set[FrozenSet[Node]] = set(instance.undirected_edges)
        #: the same live links as global edge indices — the hot-path view
        self._live_eids: Set[int] = set(range(instance.edge_count))
        #: per-node height; ``None`` represents the NULL (un-routed) height
        self.heights: Dict[Node, Optional[ToraHeight]] = {
            u: None for u in instance.nodes
        }
        self.heights[self.destination] = ToraHeight.zero(self._rank[self.destination])
        #: nodes whose routes were erased by partition detection
        self.erased: Set[Node] = set()
        #: counters for the experiments
        self.maintenance_steps = 0
        self.reference_levels_created = 0
        self.partitions_detected = 0

        if auto_create:
            self.create_route()

    # ------------------------------------------------------------------
    # structure helpers
    # ------------------------------------------------------------------
    def _neighbours(self, u: Node) -> List[Node]:
        instance = self.instance
        live = self._live_eids
        return [
            v
            for e, v in zip(instance.incident_edge_ids(u), instance.incident_neighbours(u))
            if e in live
        ]

    def height_of(self, u: Node) -> Optional[ToraHeight]:
        """The current height of ``u`` (``None`` means no route / NULL height)."""
        return self.heights[u]

    def downstream_links(self, u: Node) -> List[Node]:
        """Neighbours of ``u`` with a strictly lower (non-NULL) height."""
        mine = self.heights[u]
        if mine is None:
            return []
        return [
            v
            for v in self._neighbours(u)
            if self.heights[v] is not None and self.heights[v] < mine
        ]

    def upstream_links(self, u: Node) -> List[Node]:
        """Neighbours of ``u`` with a strictly higher or NULL height."""
        mine = self.heights[u]
        if mine is None:
            return list(self._neighbours(u))
        return [
            v
            for v in self._neighbours(u)
            if self.heights[v] is None or self.heights[v] > mine
        ]

    def has_route(self, u: Node) -> bool:
        """Whether ``u`` currently has a directed path of downstream links to the destination."""
        if u == self.destination:
            return True
        seen = {u}
        frontier = [u]
        while frontier:
            current = frontier.pop()
            for nxt in self.downstream_links(current):
                if nxt == self.destination:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def route(self, u: Node) -> Tuple[Node, ...]:
        """A downstream route from ``u`` to the destination, or ``()``.

        Follows the lowest-height downstream neighbour greedily; because
        heights strictly decrease along the walk it terminates, and it reaches
        the destination whenever :meth:`has_route` is true and the component
        is in steady state.
        """
        if u == self.destination:
            return (u,)
        path = [u]
        current = u
        for _ in range(self.instance.node_count):
            downstream = self.downstream_links(current)
            if not downstream:
                return ()
            current = min(downstream, key=lambda v: self.heights[v])
            path.append(current)
            if current == self.destination:
                return tuple(path)
        return ()

    def routed_fraction(self) -> float:
        """Fraction of nodes that currently have a route to the destination."""
        routed = sum(1 for u in self.instance.nodes if self.has_route(u))
        return routed / self.instance.node_count

    def is_acyclic(self) -> bool:
        """The downstream relation is acyclic (heights are totally ordered)."""
        non_null = [h for h in self.heights.values() if h is not None]
        return len(set(non_null)) == len(non_null)

    # ------------------------------------------------------------------
    # route creation (QRY / UPD wavefront, synchronous abstraction)
    # ------------------------------------------------------------------
    def create_route(self, for_nodes: Optional[Sequence[Node]] = None) -> int:
        """Assign heights via a BFS wavefront from the destination.

        Models the QRY/UPD exchange of TORA's route-creation phase: every node
        reachable (through the current link set) from the destination receives
        a height whose ``delta`` is one more than its parent's.  Returns the
        number of nodes that acquired a new height.

        ``for_nodes`` names the nodes that issued the QRY (the on-demand case).
        The UPD wave assigns heights to every un-routed node it passes through
        — exactly as in the real protocol — so the parameter only matters for
        the return value's interpretation: it is the total number of nodes
        that acquired a height, which covers the requested nodes whenever they
        are connected to the destination.
        """
        del for_nodes  # the wave assigns every un-routed node it reaches
        assigned = 0
        frontier = [self.destination]
        seen = {self.destination}
        while frontier:
            next_frontier: List[Node] = []
            for u in frontier:
                parent_height = self.heights[u]
                if parent_height is None:
                    # the UPD wave only propagates through routed nodes
                    continue
                for v in self._neighbours(u):
                    if v in seen:
                        continue
                    seen.add(v)
                    if self.heights[v] is None:
                        # UPD: adopt the sender's reference level, one offset higher
                        self.heights[v] = ToraHeight(
                            level=parent_height.level,
                            delta=parent_height.delta + 1,
                            rank=self._rank[v],
                        )
                        self.erased.discard(v)
                        assigned += 1
                    next_frontier.append(v)
            frontier = next_frontier
        return assigned

    # ------------------------------------------------------------------
    # route maintenance (the five cases)
    # ------------------------------------------------------------------
    def fail_link(self, u: Node, v: Node) -> None:
        """Remove the link ``{u, v}`` and run maintenance until quiescence."""
        try:
            e = self.instance.edge_index(u, v)
        except KeyError:
            raise ValueError(f"{u!r}-{v!r} is not a current link") from None
        if e not in self._live_eids:
            raise ValueError(f"{u!r}-{v!r} is not a current link")
        self._clock += 1
        self._live_eids.discard(e)
        self.links.discard(frozenset((u, v)))
        self._run_maintenance(initial_failure=True)

    def restore_link(self, u: Node, v: Node) -> None:
        """Re-add a link of the original topology and let NULL nodes rejoin."""
        if not self.instance.has_edge(u, v):
            raise ValueError(f"{u!r}-{v!r} is not an edge of the underlying topology")
        self._live_eids.add(self.instance.edge_index(u, v))
        self.links.add(frozenset((u, v)))
        # nodes whose routes were erased can rebuild them through the new link
        self.create_route()

    def _nodes_needing_maintenance(self) -> List[Node]:
        result = []
        for u in self.instance.nodes:
            if u == self.destination or self.heights[u] is None:
                continue
            if not self._neighbours(u):
                continue
            if not self.downstream_links(u):
                result.append(u)
        return result

    def _run_maintenance(self, initial_failure: bool) -> None:
        """Apply the five-case rule to every route-less node until none remain."""
        first_round = initial_failure
        guard = 0
        limit = 20 * self.instance.node_count ** 2 + 100
        while True:
            pending = self._nodes_needing_maintenance()
            if not pending:
                return
            for u in pending:
                self._maintain(u, link_failure=first_round)
                self.maintenance_steps += 1
            first_round = False
            guard += len(pending)
            if guard > limit:  # pragma: no cover - defensive
                raise RuntimeError("TORA maintenance did not converge; this indicates a bug")

    def _maintain(self, u: Node, link_failure: bool) -> None:
        """One maintenance step of node ``u`` (which has no downstream links)."""
        neighbours = self._neighbours(u)
        neighbour_heights = [
            self.heights[v] for v in neighbours if self.heights[v] is not None
        ]
        if not neighbour_heights:
            # isolated from every routed neighbour: erase the route
            self._erase_component(u)
            return

        levels = {h.level for h in neighbour_heights}
        if link_failure or len(levels) > 1:
            if link_failure:
                # Case 1 — generate a new reference level
                self.reference_levels_created += 1
                new_level = ReferenceLevel(self._clock, self._rank[u], 0)
                self.heights[u] = ToraHeight(new_level, 0, self._rank[u])
                return
            # Case 2 — propagate the highest neighbouring reference level
            highest = max(levels)
            deltas = [h.delta for h in neighbour_heights if h.level == highest]
            self.heights[u] = ToraHeight(highest, min(deltas) - 1, self._rank[u])
            return

        (common_level,) = levels
        if common_level.r == 0:
            # Case 3 — reflect the reference level
            self.heights[u] = ToraHeight(common_level.reflected(), 0, self._rank[u])
            return
        if common_level.oid_rank == self._rank[u]:
            # Case 4 — the reflected level came back to its originator: partition
            self.partitions_detected += 1
            self._erase_component(u)
            return
        # Case 5 — a reflected level from another originator: generate a new level
        self._clock += 1
        self.reference_levels_created += 1
        new_level = ReferenceLevel(self._clock, self._rank[u], 0)
        self.heights[u] = ToraHeight(new_level, 0, self._rank[u])

    def _erase_component(self, origin: Node) -> None:
        """CLR: set the heights of the origin's destination-less component to NULL."""
        component = {origin}
        frontier = [origin]
        while frontier:
            current = frontier.pop()
            for v in self._neighbours(current):
                if v in component or v == self.destination:
                    continue
                if self.has_route(v):
                    continue
                component.add(v)
                frontier.append(v)
        for node in component:
            self.heights[node] = None
            self.erased.add(node)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Counters the route-maintenance experiments report."""
        return {
            "maintenance_steps": self.maintenance_steps,
            "reference_levels_created": self.reference_levels_created,
            "partitions_detected": self.partitions_detected,
            "routed_fraction": self.routed_fraction(),
            "erased_nodes": len(self.erased),
        }
