"""Route maintenance under link failures and mobility (the TORA scenario).

Link reversal's selling point is *reaction to topology change*: when a link
failure leaves some node without an outgoing link, a local reversal cascade
restores destination orientation without any global recomputation.  This
module measures exactly that, in two flavours:

* :class:`RouteMaintenanceSimulation` drives an asynchronous
  :class:`~repro.distributed.network.AsyncLinkReversalNetwork`, injects a
  sequence of link failures (explicit, random, or derived from a mobility
  model), lets the protocol re-converge after each, and records per-failure
  statistics (reversals, messages, time to restore routes);
* the synchronous helper :func:`repair_with_automaton` applies a failure to a
  plain :class:`~repro.core.graph.LinkReversalInstance` and re-runs one of the
  global automata (PR/FR/NewPR) from the surviving orientation, which is the
  abstraction level of the paper itself.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

from repro.automata.executions import run
from repro.core.graph import LinkReversalInstance, Orientation
from repro.distributed.network import AsyncLinkReversalNetwork, NetworkReport
from repro.distributed.protocol import ReversalMode
from repro.routing.dag_routing import RoutingTable
from repro.schedulers.greedy import GreedyScheduler

Node = Hashable
Link = FrozenSet[Node]


@dataclass(frozen=True)
class FailureEvent:
    """One injected link failure."""

    time: float
    link: Tuple[Node, Node]


@dataclass
class MaintenanceResult:
    """Statistics for one failure (or one batch of simultaneous failures)."""

    failed_links: Tuple[Tuple[Node, Node], ...]
    reversals: int
    messages: int
    elapsed_time: float
    destination_oriented: bool
    routable_fraction: float
    partitioned: bool

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        links = ", ".join(f"{u}-{v}" for u, v in self.failed_links)
        return (
            f"fail[{links}]: reversals={self.reversals} msgs={self.messages} "
            f"t={self.elapsed_time:.1f} oriented={self.destination_oriented} "
            f"routable={self.routable_fraction:.2f}"
        )


class RouteMaintenanceSimulation:
    """Inject failures into an asynchronous network and measure recovery."""

    def __init__(
        self,
        instance: LinkReversalInstance,
        mode: ReversalMode = ReversalMode.PARTIAL,
        min_delay: float = 1.0,
        max_delay: float = 2.0,
        loss_probability: float = 0.0,
        seed: int = 0,
    ):
        self.instance = instance
        self.network = AsyncLinkReversalNetwork(
            instance,
            mode=mode,
            min_delay=min_delay,
            max_delay=max_delay,
            loss_probability=loss_probability,
            seed=seed,
        )
        self._rng = random.Random(seed)
        self.results: List[MaintenanceResult] = []
        # let the initial protocol exchange settle before failures arrive
        self.network.run_to_quiescence()

    # ------------------------------------------------------------------
    def _is_partitioned(self) -> bool:
        """Whether some node is disconnected from the destination (undirected)."""
        links = self.network.current_links()
        adjacency: Dict[Node, List[Node]] = {u: [] for u in self.instance.nodes}
        for link in links:
            u, v = tuple(link)
            adjacency[u].append(v)
            adjacency[v].append(u)
        destination = self.instance.destination
        seen = {destination}
        frontier = [destination]
        while frontier:
            u = frontier.pop()
            for v in adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return len(seen) != len(self.instance.nodes)

    def _routable_fraction(self) -> float:
        edges = self.network.global_directed_edges()
        table = RoutingTable.from_directed_edges(self.instance, edges)
        return table.routable_fraction()

    # ------------------------------------------------------------------
    def fail_links(self, links: Sequence[Tuple[Node, Node]]) -> MaintenanceResult:
        """Fail the given links simultaneously, re-converge, and record statistics.

        If the failures partition the network, the reversal cascade in the
        disconnected component never settles (the classic Gafni–Bertsekas
        non-termination under partition), so the run is bounded by an event
        budget instead of waiting for quiescence.
        """
        before = self.network.report()
        start_time = self.network.simulator.now
        applied: List[Tuple[Node, Node]] = []
        for u, v in links:
            if frozenset((u, v)) in self.network.current_links():
                self.network.fail_link(u, v)
                applied.append((u, v))
        if self._is_partitioned():
            budget = 200 * self.instance.node_count
            after = self.network.run_to_quiescence(max_events=budget)
        else:
            after = self.network.run_to_quiescence()
        result = MaintenanceResult(
            failed_links=tuple(applied),
            reversals=after.total_reversals - before.total_reversals,
            messages=after.messages_sent - before.messages_sent,
            elapsed_time=self.network.simulator.now - start_time,
            destination_oriented=after.destination_oriented,
            routable_fraction=self._routable_fraction(),
            partitioned=self._is_partitioned(),
        )
        self.results.append(result)
        return result

    def fail_random_links(self, count: int) -> List[MaintenanceResult]:
        """Fail ``count`` random (non-partitioning if possible) links, one at a time."""
        results = []
        for _ in range(count):
            candidates = sorted(
                (tuple(sorted(link, key=repr)) for link in self.network.current_links()),
                key=repr,
            )
            if not candidates:
                break
            link = candidates[self._rng.randrange(len(candidates))]
            results.append(self.fail_links([link]))
        return results

    def apply_topology_changes(self, changes) -> List[MaintenanceResult]:
        """Apply a sequence of mobility-derived :class:`TopologyChange` objects.

        Added links are installed first (they can only help connectivity),
        then the removed links of the step are failed as one batch.
        """
        results = []
        for change in changes:
            for link in sorted(change.added_links, key=repr):
                u, v = tuple(link)
                if self.instance.has_edge(u, v):
                    # only links of the original instance are modelled
                    self.network.add_link(u, v)
            removed = [
                tuple(sorted(link, key=repr))
                for link in change.removed_links
                if link in self.network.current_links()
            ]
            if removed:
                results.append(self.fail_links(removed))
            else:
                self.network.run_to_quiescence()
        return results

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Aggregate statistics over all recorded failures."""
        if not self.results:
            return {
                "failures": 0,
                "mean_reversals": 0.0,
                "mean_messages": 0.0,
                "mean_time": 0.0,
                "recovered_fraction": 1.0,
            }
        non_partitioned = [r for r in self.results if not r.partitioned]
        recovered = [r for r in non_partitioned if r.destination_oriented]
        return {
            "failures": len(self.results),
            "mean_reversals": sum(r.reversals for r in self.results) / len(self.results),
            "mean_messages": sum(r.messages for r in self.results) / len(self.results),
            "mean_time": sum(r.elapsed_time for r in self.results) / len(self.results),
            "recovered_fraction": (
                len(recovered) / len(non_partitioned) if non_partitioned else 1.0
            ),
        }


def repair_with_automaton(
    instance: LinkReversalInstance,
    orientation: Orientation,
    failed_link: Tuple[Node, Node],
    algorithm_factory,
    max_steps: Optional[int] = None,
):
    """Synchronous route repair at the paper's abstraction level.

    The failed link is removed from the instance, the surviving orientation is
    used as the initial state of a fresh automaton (built by
    ``algorithm_factory``), and the automaton is run to quiescence under the
    greedy schedule.  Returns ``(new_instance, result)`` where ``result`` is
    the :class:`~repro.automata.executions.ExecutionResult`.
    """
    u, v = failed_link
    if not instance.has_edge(u, v):
        raise ValueError(f"{u!r}-{v!r} is not an edge of the instance")
    surviving_edges = [
        (tail, head)
        for tail, head in orientation.directed_edges()
        if frozenset((tail, head)) != frozenset((u, v))
    ]
    new_instance = LinkReversalInstance(
        nodes=instance.nodes,
        destination=instance.destination,
        initial_edges=tuple(surviving_edges),
    )
    automaton = algorithm_factory(new_instance)
    result = run(automaton, GreedyScheduler(), max_steps=max_steps)
    return new_instance, result
