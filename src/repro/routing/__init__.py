"""Destination-oriented routing on top of link reversal (the TORA use case).

Link reversal exists to keep a network's links oriented so that every node has
a path to a destination; packets are then forwarded along any outgoing link.
This subpackage provides that application layer:

* :mod:`repro.routing.dag_routing` — next-hop tables and route extraction from
  an orientation, plus route-quality metrics (stretch against the undirected
  shortest path);
* :mod:`repro.routing.maintenance` — route maintenance under link failures and
  mobility: failures are injected into an asynchronous link-reversal network,
  and the time/messages/reversals needed to restore destination orientation
  are measured (experiment E15);
* :mod:`repro.routing.tora` — the full TORA protocol (reference-level heights,
  the five-case route-maintenance rule, partition detection and route
  erasure), the best-known deployment of partial reversal.
"""

from repro.routing.dag_routing import RoutingTable, route_stretch, extract_route
from repro.routing.maintenance import (
    FailureEvent,
    MaintenanceResult,
    RouteMaintenanceSimulation,
)
from repro.routing.tora import ReferenceLevel, ToraHeight, ToraRouter

__all__ = [
    "FailureEvent",
    "MaintenanceResult",
    "ReferenceLevel",
    "RouteMaintenanceSimulation",
    "RoutingTable",
    "ToraHeight",
    "ToraRouter",
    "extract_route",
    "route_stretch",
]
