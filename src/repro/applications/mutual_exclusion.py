"""Token-based mutual exclusion on a token-oriented DAG.

The mutual-exclusion application of link reversal (surveyed by Welch & Walter,
and realised for MANETs by Walter, Welch and Vaidya) keeps the graph oriented
towards the current *token holder*.  Nodes that want the critical section send
a request along their outgoing links; the request reaches the holder because
every node has a directed path to it; when the token is handed over, the new
holder takes on a height lower than every other node and the remaining nodes
perform ordinary link-reversal steps until the graph is oriented towards the
new holder again.

:class:`TokenMutex` implements this with the height representation (each node
has a totally ordered height, an edge points from the higher to the lower
endpoint).  The total order makes **acyclicity structural** — it can never be
violated, matching the role Theorem 4.3 plays for the state-based algorithms —
and the two properties the experiments check are:

* **safety** — exactly one node holds the token at any time (maintained by
  construction and asserted via :meth:`token_holder`);
* **liveness** — every request is eventually granted: the graph is re-oriented
  towards the holder after every transfer, so the next request always has a
  forwarding path.

The per-grant cost (request path length, reversal steps needed to re-orient)
is what experiment E16 reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Hashable, List, Optional, Tuple

from repro.core.graph import LinkReversalInstance, Orientation

Node = Hashable

#: A node height: totally ordered triple (a, b, rank).
Height = Tuple[int, int, int]


@dataclass
class MutexReport:
    """Statistics for one completed critical-section grant."""

    requester: Node
    previous_holder: Node
    request_path_hops: int
    reversal_steps: int

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"token {self.previous_holder} -> {self.requester}: "
            f"{self.request_path_hops} hops, {self.reversal_steps} reversal steps"
        )


class TokenMutex:
    """Mutual exclusion via a token-oriented, height-ordered DAG.

    Parameters
    ----------
    instance:
        The topology.  The instance's destination is the initial token holder.
    """

    def __init__(self, instance: LinkReversalInstance):
        instance.validate(require_dag=True, require_connected=True)
        self.instance = instance
        self.holder: Node = instance.destination
        self._rank = {u: i for i, u in enumerate(instance.nodes)}
        self._heights: Dict[Node, Height] = self._initial_heights(instance.destination)
        self._requests: Deque[Node] = deque()
        self.grants: List[MutexReport] = []
        self.total_reversal_steps = 0

    # ------------------------------------------------------------------
    # heights and the derived orientation
    # ------------------------------------------------------------------
    def _initial_heights(self, holder: Node) -> Dict[Node, Height]:
        """Heights equal to the BFS hop distance from the holder (holder lowest)."""
        distances: Dict[Node, int] = {holder: 0}
        frontier = [holder]
        while frontier:
            next_frontier: List[Node] = []
            for u in frontier:
                for v in self.instance.nbrs(u):
                    if v not in distances:
                        distances[v] = distances[u] + 1
                        next_frontier.append(v)
            frontier = next_frontier
        return {u: (distances[u], 0, self._rank[u]) for u in self.instance.nodes}

    def height_of(self, node: Node) -> Height:
        """The current height of a node."""
        return self._heights[node]

    def directed_edges(self) -> Tuple[Tuple[Node, Node], ...]:
        """The orientation induced by the heights (higher endpoint -> lower endpoint)."""
        edges = []
        for u, v in self.instance.initial_edges:
            if self._heights[u] > self._heights[v]:
                edges.append((u, v))
            else:
                edges.append((v, u))
        return tuple(edges)

    def orientation(self) -> Orientation:
        """The current orientation as an :class:`~repro.core.graph.Orientation`."""
        return Orientation.from_directed_edges(self.instance, self.directed_edges())

    def is_acyclic(self) -> bool:
        """Always true: heights are totally ordered (the rank breaks all ties)."""
        return len(set(self._heights.values())) == len(self._heights)

    def is_token_oriented(self) -> bool:
        """Whether every node currently has a directed path to the token holder."""
        predecessors: Dict[Node, List[Node]] = {u: [] for u in self.instance.nodes}
        for tail, head in self.directed_edges():
            predecessors[head].append(tail)
        reached = {self.holder}
        frontier = [self.holder]
        while frontier:
            u = frontier.pop()
            for v in predecessors[u]:
                if v not in reached:
                    reached.add(v)
                    frontier.append(v)
        return len(reached) == len(self.instance.nodes)

    def token_holder(self) -> Node:
        """The unique node currently holding the token."""
        return self.holder

    def pending_requests(self) -> Tuple[Node, ...]:
        """Requests not yet granted, in FIFO order."""
        return tuple(self._requests)

    # ------------------------------------------------------------------
    # the protocol
    # ------------------------------------------------------------------
    def request(self, node: Node) -> None:
        """Enqueue a critical-section request for ``node``."""
        if node not in self.instance.nodes:
            raise ValueError(f"unknown node {node!r}")
        self._requests.append(node)

    def _request_path_length(self, source: Node) -> int:
        """Directed hop count of the request's forwarding path to the holder."""
        if source == self.holder:
            return 0
        successors: Dict[Node, List[Node]] = {u: [] for u in self.instance.nodes}
        for tail, head in self.directed_edges():
            successors[tail].append(head)
        distances = {source: 0}
        frontier = [source]
        while frontier:
            next_frontier: List[Node] = []
            for u in frontier:
                for v in successors[u]:
                    if v not in distances:
                        distances[v] = distances[u] + 1
                        if v == self.holder:
                            return distances[v]
                        next_frontier.append(v)
            frontier = next_frontier
        raise RuntimeError(
            f"no forwarding path from {source!r} to holder {self.holder!r}: "
            "token-orientation invariant violated"
        )

    def _min_height(self) -> Height:
        return min(self._heights.values())

    def _sinks_other_than_holder(self) -> List[Node]:
        """Non-holder nodes whose incident edges all point at them."""
        result = []
        for u in self.instance.nodes:
            if u == self.holder or not self.instance.nbrs(u):
                continue
            if all(self._heights[v] > self._heights[u] for v in self.instance.nbrs(u)):
                result.append(u)
        return result

    def _partial_reversal_lift(self, u: Node) -> None:
        """The Gafni–Bertsekas partial-reversal height update for a sink ``u``."""
        nbr_heights = [self._heights[v] for v in self.instance.nbrs(u)]
        min_a = min(h[0] for h in nbr_heights)
        new_a = min_a + 1
        same_level = [h[1] for h in nbr_heights if h[0] == new_a]
        old = self._heights[u]
        new_b = (min(same_level) - 1) if same_level else old[1]
        self._heights[u] = (new_a, new_b, self._rank[u])

    def grant_next(self) -> Optional[MutexReport]:
        """Grant the oldest pending request; returns ``None`` if none are pending."""
        if not self._requests:
            return None
        requester = self._requests.popleft()
        previous_holder = self.holder
        hops = self._request_path_length(requester)
        if requester == previous_holder:
            report = MutexReport(requester, previous_holder, request_path_hops=0, reversal_steps=0)
            self.grants.append(report)
            return report

        # hand the token over: the new holder drops below every other height,
        # which reverses all of its incident edges towards it in one move.
        min_a, min_b, _ = self._min_height()
        self.holder = requester
        self._heights[requester] = (min_a - 1, min_b, self._rank[requester])

        # remaining nodes perform ordinary (partial) link reversal until the
        # graph is oriented towards the new holder: repeatedly lift non-holder sinks.
        reversal_steps = 0
        guard = 0
        max_lifts = 4 * len(self.instance.nodes) ** 2 * (self.instance.edge_count + 1)
        while True:
            sinks = self._sinks_other_than_holder()
            if not sinks:
                break
            for u in sinks:
                self._partial_reversal_lift(u)
                reversal_steps += 1
            guard += len(sinks)
            if guard > max_lifts:  # pragma: no cover - defensive
                raise RuntimeError("re-orientation did not converge; this indicates a bug")

        self.total_reversal_steps += reversal_steps
        report = MutexReport(
            requester=requester,
            previous_holder=previous_holder,
            request_path_hops=hops,
            reversal_steps=reversal_steps,
        )
        self.grants.append(report)
        return report

    def grant_all(self) -> List[MutexReport]:
        """Grant every pending request in FIFO order."""
        reports = []
        while self._requests:
            report = self.grant_next()
            if report is None:  # pragma: no cover - defensive
                break
            reports.append(report)
        return reports
