"""Leader election on top of link reversal.

The idea (due to the link-reversal leader-election line of work surveyed by
Welch & Walter) is that "being the leader" and "being the destination of a
destination-oriented DAG" are the same thing: if every node has a directed
path to the leader, every node implicitly knows a route to it, and the DAG
doubles as a dissemination structure.

:class:`LeaderElectionService` maintains that invariant over a sequence of
leader failures:

1. initially the designated leader is the instance's destination and the DAG
   is made destination oriented by running Partial Reversal;
2. when the current leader fails (``fail_leader``), the node with the highest
   identifier among the surviving nodes is elected (a deterministic rule all
   nodes can evaluate locally once failure information propagates);
3. the surviving graph is re-oriented towards the new leader by running
   Partial Reversal on the instance restricted to the surviving nodes, reusing
   the surviving edge directions as the initial orientation.

The service records, per election, how many reversal steps the re-orientation
needed — the cost measure reported by experiment E16.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.automata.executions import run
from repro.core.graph import LinkReversalInstance, Orientation
from repro.core.pr import PartialReversal
from repro.schedulers.greedy import GreedyScheduler

Node = Hashable


@dataclass
class LeaderElectionReport:
    """Statistics for one election round."""

    failed_leader: Node
    new_leader: Node
    surviving_nodes: int
    node_steps: int
    rounds: int
    destination_oriented: bool

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"leader {self.failed_leader} -> {self.new_leader}: "
            f"{self.node_steps} steps, {self.rounds} rounds, "
            f"{'oriented' if self.destination_oriented else 'NOT oriented'}"
        )


class LeaderElectionService:
    """Maintains a leader-oriented DAG across leader failures.

    Parameters
    ----------
    instance:
        The initial topology; its destination is the initial leader.
    algorithm_factory:
        Which link-reversal automaton re-orients the DAG (defaults to PR).
    """

    def __init__(self, instance: LinkReversalInstance, algorithm_factory=PartialReversal):
        instance.validate(require_dag=True, require_connected=True)
        self.algorithm_factory = algorithm_factory
        self.alive_nodes: Tuple[Node, ...] = instance.nodes
        self.leader: Node = instance.destination
        self.instance = instance
        self.history: List[LeaderElectionReport] = []
        # establish initial leader orientation
        self._orientation, steps, rounds = self._reorient(instance)

    # ------------------------------------------------------------------
    @property
    def orientation(self) -> Orientation:
        """The current leader-oriented orientation."""
        return self._orientation

    def current_leader(self) -> Node:
        """The node all routes currently point to."""
        return self.leader

    def is_leader_oriented(self) -> bool:
        """Whether every surviving node has a directed path to the leader."""
        return self._orientation.is_destination_oriented()

    # ------------------------------------------------------------------
    def _reorient(self, instance: LinkReversalInstance, initial_orientation=None):
        """Run the configured algorithm to quiescence; return (orientation, steps, rounds)."""
        automaton = self.algorithm_factory(instance)
        scheduler = GreedyScheduler()
        node_steps = 0

        def observer(step_index, pre_state, action, post_state) -> None:
            nonlocal node_steps
            node_steps += len(action.actors())

        initial_state = None
        if initial_orientation is not None:
            initial_state = automaton.initial_state()
            # start from the surviving directions rather than the instance default
            initial_state = type(initial_state)(instance, initial_orientation)
        result = run(
            automaton,
            scheduler,
            observers=(observer,),
            record_states=False,
            initial_state=initial_state,
        )
        rounds = getattr(scheduler, "rounds", result.steps_taken)
        return result.final_state.orientation, node_steps, rounds

    # ------------------------------------------------------------------
    def elect(self, candidates: Sequence[Node]) -> Node:
        """Deterministic election rule: the largest identifier wins.

        Every node can evaluate this locally once it learns which nodes are
        alive, so no extra agreement protocol is needed in this synchronous
        abstraction.
        """
        if not candidates:
            raise ValueError("cannot elect a leader from an empty candidate set")
        try:
            return max(candidates)
        except TypeError:
            # mixed / unorderable identifier types: fall back to a total order on repr
            return max(candidates, key=repr)

    def fail_leader(self) -> LeaderElectionReport:
        """Remove the current leader, elect a new one and re-orient the DAG."""
        failed = self.leader
        survivors = tuple(u for u in self.alive_nodes if u != failed)
        if not survivors:
            raise RuntimeError("no nodes left to elect a leader from")

        new_leader = self.elect(survivors)

        surviving_edges = [
            (u, v)
            for u, v in self._orientation.directed_edges()
            if u != failed and v != failed
        ]
        new_instance = LinkReversalInstance(
            nodes=survivors,
            destination=new_leader,
            initial_edges=tuple(surviving_edges),
        )
        if not new_instance.is_connected():
            raise RuntimeError(
                "removing the leader partitioned the graph; "
                "leader election requires a 2-connected topology"
            )

        self.instance = new_instance
        self.alive_nodes = survivors
        self.leader = new_leader
        self._orientation, steps, rounds = self._reorient(new_instance)

        report = LeaderElectionReport(
            failed_leader=failed,
            new_leader=new_leader,
            surviving_nodes=len(survivors),
            node_steps=steps,
            rounds=rounds,
            destination_oriented=self._orientation.is_destination_oriented(),
        )
        self.history.append(report)
        return report
