"""Applications built on link reversal: leader election and mutual exclusion.

The paper's abstract and introduction list routing, leader election and mutual
exclusion as the problems link-reversal algorithms are used for (following
Welch & Walter's synthesis lecture).  Routing lives in :mod:`repro.routing`;
this subpackage provides the other two:

* :mod:`repro.applications.leader_election` — a leader-election service: the
  current leader plays the role of the destination; when the leader fails, the
  remaining nodes agree on a new leader and re-orient the DAG towards it by
  running link reversal;
* :mod:`repro.applications.mutual_exclusion` — token-based mutual exclusion on
  a destination-oriented DAG: the token holder is the destination, requests
  are forwarded along outgoing links, and passing the token reverses the edges
  it traverses so the DAG stays token oriented (safety: one token; liveness:
  every request is eventually served).
"""

from repro.applications.leader_election import LeaderElectionService, LeaderElectionReport
from repro.applications.mutual_exclusion import TokenMutex, MutexReport

__all__ = [
    "LeaderElectionReport",
    "LeaderElectionService",
    "MutexReport",
    "TokenMutex",
]
