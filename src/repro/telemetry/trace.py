"""Summarise a ``telemetry.jsonl`` sidecar: top spans, engines, workers.

Pure functions over event dicts (see :mod:`repro.telemetry.spans` for the
schema) — no I/O here.  The ``repro trace`` CLI command and the ``repro
report`` telemetry section both render :func:`summarise_telemetry`;
:func:`check_span_nesting` is the structural validator CI runs over every
sidecar a smoke sweep produces.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


def summarise_telemetry(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate sidecar events into the dict behind ``repro trace``.

    Returns::

        {
          "events": int,                      # total sidecar events
          "spans": {name: {"count", "total_s", "max_s"}},
          "scenarios": {engine: {"count", "statuses": {...},
                                 "wall_s": {"total", "mean", "p50",
                                            "p90", "max"}}},
          "workers": {pid: {"chunks", "runs", "busy_s", "cpu_s"}},
          "counters": {name: int},            # last metrics snapshot
          "gauges": {name: float},
          "histograms": {name: {"count", "total", "min", "max", "mean"}},
          "point_events": {name: int},
        }

    ``workers`` comes from ``chunk`` spans (the executor attaches ``pid``,
    ``cpu_s`` and ``runs``); inline campaigns report a single pid.
    """
    total = 0
    spans: Dict[str, Dict[str, float]] = {}
    scenario_walls: Dict[str, List[float]] = {}
    scenario_statuses: Dict[str, Dict[str, int]] = {}
    workers: Dict[Any, Dict[str, float]] = {}
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, float]] = {}
    point_events: Dict[str, int] = {}

    for event in events:
        total += 1
        kind = event.get("kind")
        if kind == "span":
            name = event.get("name", "?")
            entry = spans.setdefault(name, {"count": 0, "total_s": 0.0, "max_s": 0.0})
            duration = float(event.get("dur_s") or 0.0)
            entry["count"] += 1
            entry["total_s"] += duration
            if duration > entry["max_s"]:
                entry["max_s"] = duration
            if name == "chunk":
                attrs = event.get("attrs") or {}
                pid = attrs.get("pid", "inline")
                worker = workers.setdefault(
                    pid, {"chunks": 0, "runs": 0, "busy_s": 0.0, "cpu_s": 0.0}
                )
                worker["chunks"] += 1
                worker["runs"] += int(attrs.get("runs") or 0)
                worker["busy_s"] += duration
                worker["cpu_s"] += float(attrs.get("cpu_s") or 0.0)
        elif kind == "scenario":
            engine = event.get("engine") or "none"
            scenario_walls.setdefault(engine, []).append(
                float(event.get("wall_s") or 0.0)
            )
            status = event.get("status") or "?"
            statuses = scenario_statuses.setdefault(engine, {})
            statuses[status] = statuses.get(status, 0) + 1
        elif kind == "metrics":
            # later snapshots supersede earlier ones (one per campaign)
            counters = dict(event.get("counters") or {})
            gauges = dict(event.get("gauges") or {})
            histograms = {
                name: summary
                for name, summary in (event.get("histograms") or {}).items()
                if summary.get("count")
            }
        elif kind == "event":
            name = event.get("name", "?")
            point_events[name] = point_events.get(name, 0) + 1

    scenarios: Dict[str, Dict[str, Any]] = {}
    for engine, walls in scenario_walls.items():
        walls.sort()
        scenarios[engine] = {
            "count": len(walls),
            "statuses": dict(sorted(scenario_statuses.get(engine, {}).items())),
            "wall_s": {
                "total": round(sum(walls), 6),
                "mean": round(sum(walls) / len(walls), 6),
                "p50": round(_percentile(walls, 0.50), 6),
                "p90": round(_percentile(walls, 0.90), 6),
                "max": round(walls[-1], 6),
            },
        }

    return {
        "events": total,
        "spans": {
            name: {
                "count": int(entry["count"]),
                "total_s": round(entry["total_s"], 6),
                "max_s": round(entry["max_s"], 6),
            }
            for name, entry in spans.items()
        },
        "scenarios": dict(sorted(scenarios.items())),
        "workers": {
            str(pid): {
                "chunks": int(w["chunks"]),
                "runs": int(w["runs"]),
                "busy_s": round(w["busy_s"], 6),
                "cpu_s": round(w["cpu_s"], 6),
            }
            for pid, w in sorted(workers.items(), key=lambda kv: str(kv[0]))
        },
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
        "point_events": dict(sorted(point_events.items())),
    }


def top_spans(summary: Dict[str, Any], limit: int = 10) -> List[Dict[str, Any]]:
    """Span groups of a :func:`summarise_telemetry` dict, by total duration."""
    rows = [
        {"name": name, **entry}
        for name, entry in summary.get("spans", {}).items()
    ]
    rows.sort(key=lambda row: row["total_s"], reverse=True)
    return rows[:limit]


def check_span_nesting(events: Iterable[Dict[str, Any]]) -> List[str]:
    """Structural problems in a sidecar's span tree (empty when well-formed).

    Checks every ``span`` event: ids unique, ``parent_id`` resolves to a
    recorded span, ``depth`` is exactly the parent's depth + 1, and the
    child's time window lies inside the parent's (small float tolerance).
    Children are emitted before their parents, so the check runs over the
    fully collected event list, not a stream.
    """
    problems: List[str] = []
    spans: Dict[int, Dict[str, Any]] = {}
    for event in events:
        if event.get("kind") != "span":
            continue
        span_id = event.get("span_id")
        if span_id in spans:
            problems.append(f"duplicate span_id {span_id}")
        spans[span_id] = event
    epsilon = 1e-3
    for span_id, event in spans.items():
        parent_id = event.get("parent_id")
        if parent_id is None:
            if event.get("depth") != 0:
                problems.append(f"root span {span_id} has depth {event.get('depth')}")
            continue
        parent = spans.get(parent_id)
        if parent is None:
            problems.append(f"span {span_id} has unknown parent {parent_id}")
            continue
        if event.get("depth") != parent.get("depth", 0) + 1:
            problems.append(
                f"span {span_id} depth {event.get('depth')} under parent depth "
                f"{parent.get('depth')}"
            )
        child_start = float(event.get("t_start") or 0.0)
        child_end = child_start + float(event.get("dur_s") or 0.0)
        parent_start = float(parent.get("t_start") or 0.0)
        parent_end = parent_start + float(parent.get("dur_s") or 0.0)
        if child_start < parent_start - epsilon or child_end > parent_end + epsilon:
            problems.append(
                f"span {span_id} [{child_start:.6f}, {child_end:.6f}] outside "
                f"parent {parent_id} [{parent_start:.6f}, {parent_end:.6f}]"
            )
    return problems
