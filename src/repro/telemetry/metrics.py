"""Process-local, mergeable metrics: counters, gauges and histograms.

A :class:`MetricsRegistry` is a flat, dict-backed namespace of named
instruments.  It generalises the ``kernel_cache_stats()`` before/after-delta
pattern the campaign executor used for cache counters into one mechanism
every subsystem reports into: engines count scenarios per status, the caches
count hits and builds, the model checker observes frontier sizes, and
``FastAsyncNetwork`` tracks peak heap depth.

Design constraints, in priority order:

* **cheap when enabled** — instruments are plain ``__slots__`` objects with
  integer/float fields; ``Counter.inc`` is one attribute add.  Hot loops
  hold an instrument handle (``registry.counter(name)``) rather than paying
  a dict lookup per event;
* **mergeable** — a worker process snapshots its registry and ships the
  plain-dict :meth:`MetricsRegistry.snapshot` back over the pool; the parent
  :meth:`MetricsRegistry.merge`\\ s it.  Counters add, gauges keep the max,
  histograms combine — all associative and commutative, so 1-worker and
  2-worker campaigns merge to identical counter totals;
* **zero-cost when disabled** — :data:`NULL_REGISTRY` accepts every call and
  records nothing, so instrumented code needs no conditionals beyond the
  module-level ``telemetry.ENABLED`` guard.

:data:`ENGINE_METRICS` is the always-on registry behind the engine caches;
the legacy ``kernel_cache_stats()`` dict is a thin view over it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value; merging keeps the maximum observed."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def max(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Streaming summary of observed values: count / total / min / max.

    No buckets — the sidecar records per-scenario wall times exactly, so the
    in-process histogram only needs the moments cheap enough for hot paths.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count,
        }


class MetricsRegistry:
    """A flat namespace of counters, gauges and histograms.

    Instruments are created on first use and live for the registry's
    lifetime.  ``counter/gauge/histogram`` return the instrument itself so
    hot paths can hold the handle; the convenience methods (``inc``,
    ``max_gauge``, ``observe``) do the name lookup per call and are meant
    for cold paths.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument handles -------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # -- convenience (cold paths) -------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def max_gauge(self, name: str, value: float) -> None:
        self.gauge(name).max(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- snapshot / merge ----------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view of every instrument (picklable, JSON-compatible)."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a pooled worker) into this registry.

        Counters add, gauges keep the max, histograms combine their moments —
        all associative, so merge order never changes the result.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).max(value)
        for name, summary in snapshot.get("histograms", {}).items():
            if not summary.get("count"):
                continue
            histogram = self.histogram(name)
            histogram.count += summary["count"]
            histogram.total += summary["total"]
            if summary["min"] < histogram.min:
                histogram.min = summary["min"]
            if summary["max"] > histogram.max:
                histogram.max = summary["max"]

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class _NullInstrument:
    """Accepts every instrument method and does nothing."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def summary(self) -> Dict[str, float]:
        return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """The disabled registry: every call is a no-op, every snapshot empty."""

    __slots__ = ()

    def counter(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def max_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def merge(self, snapshot: Dict[str, Any]) -> None:
        pass


#: Shared no-op registry bound to ``telemetry.REGISTRY`` while disabled.
NULL_REGISTRY = NullMetricsRegistry()

#: Always-on process-local registry behind the engine caches.  The
#: ``kernel_cache_stats()`` compatibility view reads these counters, so they
#: must count regardless of whether campaign telemetry is enabled; campaign
#: snapshots still use the per-campaign registry, keeping worker merges
#: deterministic.
ENGINE_METRICS = MetricsRegistry()
