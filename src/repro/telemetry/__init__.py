"""Telemetry substrate: metrics registry, span tracing, JSONL sidecars.

The package exposes three module-level globals that instrumented code reads
directly — the hot-path contract is one boolean test:

``ENABLED``
    ``False`` by default.  Hot paths guard with
    ``if telemetry.ENABLED: ...``; when off, instrumentation costs a single
    global load + branch and the registry/tracer are no-op singletons.
``REGISTRY``
    The active :class:`~repro.telemetry.metrics.MetricsRegistry`
    (:data:`~repro.telemetry.metrics.NULL_REGISTRY` while disabled).
``TRACER``
    The active :class:`~repro.telemetry.spans.SpanTracer`
    (:data:`~repro.telemetry.spans.NULL_TRACER` while disabled).

Scopes are managed with :func:`activate`/:func:`restore` (token-based, so
nested scopes unwind correctly) or the :func:`session` context manager,
which the campaign executor wraps around one ``run_campaign`` invocation
with the store's sidecar as sink.  Pooled workers call :func:`activate`
with a fresh registry per chunk and ship the snapshot back to the parent
for merging.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.telemetry.metrics import (
    ENGINE_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
)
from repro.telemetry.spans import (
    DEFAULT_BATCH_SIZE,
    NULL_TRACER,
    NullTracer,
    SpanTracer,
)

__all__ = [
    "ENABLED",
    "REGISTRY",
    "TRACER",
    "ENGINE_METRICS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NullTracer",
    "SpanTracer",
    "DEFAULT_BATCH_SIZE",
    "activate",
    "restore",
    "session",
]

ENABLED: bool = False
REGISTRY: MetricsRegistry = NULL_REGISTRY
TRACER: SpanTracer = NULL_TRACER

#: Opaque state token returned by :func:`activate` for :func:`restore`.
_Token = Tuple[bool, MetricsRegistry, SpanTracer]


def activate(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[SpanTracer] = None,
) -> _Token:
    """Install a registry/tracer pair as the active globals.

    Returns a token capturing the previous state; pass it to
    :func:`restore` (in a ``finally``) to unwind.  Omitted arguments fall
    back to fresh no-op-free defaults: a new :class:`MetricsRegistry` and
    the shared :data:`NULL_TRACER` (metrics without tracing is the common
    worker-side configuration).
    """
    global ENABLED, REGISTRY, TRACER
    token: _Token = (ENABLED, REGISTRY, TRACER)
    REGISTRY = registry if registry is not None else MetricsRegistry()
    TRACER = tracer if tracer is not None else NULL_TRACER
    ENABLED = True
    return token


def restore(token: _Token) -> None:
    """Undo a matching :func:`activate`."""
    global ENABLED, REGISTRY, TRACER
    ENABLED, REGISTRY, TRACER = token


@contextmanager
def session(
    sink: Optional[Callable[[List[Dict[str, Any]]], Any]] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
):
    """Enable telemetry for a scope; yields ``(registry, tracer)``.

    The tracer's buffered events are flushed to ``sink`` on exit even when
    the scope raises, and the previous global state is always restored.
    """
    registry = MetricsRegistry()
    tracer = SpanTracer(sink=sink, batch_size=batch_size)
    token = activate(registry=registry, tracer=tracer)
    try:
        yield registry, tracer
    finally:
        try:
            tracer.flush()
        finally:
            restore(token)
