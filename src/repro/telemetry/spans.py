"""Nestable span tracing with a batched JSONL sink.

A :class:`SpanTracer` measures named spans on a monotonic clock and buffers
the resulting event dicts, flushing them to a sink callback in batches —
never per-event I/O on a hot path (the rotorsim exemplar's batched-logging
idiom).  The campaign executor nests spans ``campaign → chunk`` and emits
flat ``scenario`` events per run; the sink is
:meth:`repro.experiments.store.ResultStore.record_telemetry`, which appends
to the ``telemetry.jsonl`` sidecar next to ``report.json``.

Event kinds written to the sidecar (all share ``kind``):

``span``
    ``{"kind", "name", "span_id", "parent_id", "depth", "t_start", "dur_s",
    "attrs"}`` — emitted when the span *closes*, so children precede their
    parent in the file.  ``t_start`` is seconds since the tracer's epoch;
    ``parent_id`` is ``None`` for roots and ``depth`` counts enclosing spans.
``event``
    ``{"kind", "name", "t", "attrs"}`` — a point-in-time marker (chunk
    crashes, quarantine retries, campaign summaries).
``scenario``
    ``{"kind", "t", "run_id", "engine", "status", "family", "algorithm",
    "wall_s"}`` — one flat record per executed run, emitted by the executor.
``metrics``
    ``{"kind", "t", "counters", "gauges", "histograms"}`` — a
    :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot`, emitted once
    per campaign after worker merges.

:data:`NULL_TRACER` is the disabled twin: ``span()`` yields without
touching a clock and every emit is a no-op.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Sequence

#: Buffered events per sink flush (batched, append-only writes).
DEFAULT_BATCH_SIZE = 256


class SpanTracer:
    """Collects span/event records and flushes them to a sink in batches.

    Parameters
    ----------
    sink:
        ``callback(events)`` receiving a list of event dicts; called every
        ``batch_size`` buffered events and on :meth:`flush`.  ``None``
        buffers indefinitely (drain with :meth:`drain` — handy in tests).
    batch_size:
        Events per sink call.
    clock:
        Monotonic clock; injectable for deterministic tests.
    """

    def __init__(
        self,
        sink: Optional[Callable[[List[Dict[str, Any]]], Any]] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self._clock = clock
        self.epoch = clock()
        self._sink = sink
        self._batch_size = max(1, batch_size)
        self._buffer: List[Dict[str, Any]] = []
        self._stack: List[int] = []
        self._next_id = 1
        self.events_emitted = 0

    # -- clock ---------------------------------------------------------------
    def now(self) -> float:
        """Seconds since this tracer's epoch (monotonic)."""
        return self._clock() - self.epoch

    # -- spans ---------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any):
        """Measure a nested span; the record is emitted when the span closes."""
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._stack[-1] if self._stack else None
        self._stack.append(span_id)
        t_start = self.now()
        try:
            yield span_id
        finally:
            self._stack.pop()
            self.emit({
                "kind": "span",
                "name": name,
                "span_id": span_id,
                "parent_id": parent_id,
                "depth": len(self._stack),
                "t_start": round(t_start, 6),
                "dur_s": round(self.now() - t_start, 6),
                "attrs": attrs,
            })

    def emit_span(
        self, name: str, t_start: float, dur_s: float, **attrs: Any
    ) -> int:
        """Record an externally measured span (e.g. a pooled worker's chunk).

        The span nests under whatever span is currently open in *this*
        tracer; ``t_start`` is on this tracer's epoch.
        """
        span_id = self._next_id
        self._next_id += 1
        self.emit({
            "kind": "span",
            "name": name,
            "span_id": span_id,
            "parent_id": self._stack[-1] if self._stack else None,
            "depth": len(self._stack),
            "t_start": round(t_start, 6),
            "dur_s": round(dur_s, 6),
            "attrs": attrs,
        })
        return span_id

    # -- point events ---------------------------------------------------------
    def event(self, name: str, **attrs: Any) -> None:
        self.emit({
            "kind": "event",
            "name": name,
            "t": round(self.now(), 6),
            "attrs": attrs,
        })

    def emit(self, record: Dict[str, Any]) -> None:
        """Buffer one event dict, flushing to the sink when the batch fills."""
        self._buffer.append(record)
        self.events_emitted += 1
        if self._sink is not None and len(self._buffer) >= self._batch_size:
            self.flush()

    def emit_many(self, records: Sequence[Dict[str, Any]]) -> None:
        for record in records:
            self.emit(record)

    # -- buffer management -----------------------------------------------------
    def flush(self) -> None:
        """Hand every buffered event to the sink (no-op without a sink)."""
        if self._sink is not None and self._buffer:
            batch, self._buffer = self._buffer, []
            self._sink(batch)

    def drain(self) -> List[Dict[str, Any]]:
        """Detach and return the buffered events (sink-less tracers, tests)."""
        batch, self._buffer = self._buffer, []
        return batch


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(SpanTracer):
    """The disabled tracer: no clock reads, no buffering, no sink."""

    def __init__(self) -> None:
        super().__init__(sink=None, clock=lambda: 0.0)

    def now(self) -> float:
        return 0.0

    def span(self, name: str, **attrs: Any):  # type: ignore[override]
        return _NULL_SPAN

    def emit_span(self, name: str, t_start: float, dur_s: float, **attrs: Any) -> int:
        return 0

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def emit(self, record: Dict[str, Any]) -> None:
        pass

    def emit_many(self, records: Sequence[Dict[str, Any]]) -> None:
        pass

    def flush(self) -> None:
        pass


#: Shared no-op tracer bound to ``telemetry.TRACER`` while disabled.
NULL_TRACER = NullTracer()
