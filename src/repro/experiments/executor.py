"""Sharded campaign executor: chunked dispatch over a process pool.

The executor expands a :class:`~repro.experiments.spec.CampaignSpec` into its
run list, drops every run already present in the
:class:`~repro.experiments.store.ResultStore` (campaign **resume**), splits
the remainder into chunks of plain spec dicts and dispatches the chunks
across a ``multiprocessing`` worker pool.  Workers rebuild all heavyweight
objects (instances, automata, schedulers) locally from the dicts, so nothing
but plain data is ever pickled.

Failure containment is layered (the self-healing ladder, top rung first):

* a bad *run* (exception, timeout) is caught inside the worker and comes back
  as a record with ``status`` ``"error"`` / ``"timeout"``;
* a *hung* worker is caught by the heartbeat watchdog (``watchdog_s``):
  workers stamp a shared array per chunk and per scenario, and a chunk whose
  stamp goes stale is hard-killed and re-dispatched;
* a dead *worker process* (segfault, OOM-kill, watchdog kill) breaks the
  pool; the pool is **reformed** (up to ``max_pool_reforms`` times) and the
  surviving chunks re-dispatched with per-chunk retry budgets
  (``max_retries``) under exponential backoff with deterministic jitter;
* a chunk that keeps failing falls to **quarantine**: one single-use pool
  each, and only a chunk that kills its private pool is written out as
  ``status="crashed"`` records, so the campaign still completes;
* when no pool can be created at all, the executor **degrades to serial**
  in-process execution of the leftover chunks — slower, but the campaign
  finishes;
* an interrupted *campaign* (Ctrl-C, machine loss) is resumable: records are
  appended to the store as each chunk completes, so a re-run skips everything
  already recorded.

All of it is deterministic-testable: a seeded
:class:`~repro.faults.plan.FaultPlan` (``fault_plan=``) makes pooled workers
crash, hang, run slow or corrupt their results at plan-chosen chunk indices,
and the ladder above is what recovers (see :mod:`repro.faults`).

``workers <= 1`` bypasses multiprocessing entirely and executes inline —
deterministic, easy to debug, and what the tests mostly use.  Faults are
never injected inline: the plan only arms in pooled workers.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import random
import signal
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from collections import OrderedDict

from repro import telemetry as _telemetry
from repro._mp import fork_preferring_context
from repro.faults import injector as _injector
from repro.faults.plan import FAULT_PLAN_ENV, FaultPlan
from repro.telemetry.metrics import MetricsRegistry
from repro.experiments.runner import (
    ENGINE_AUTO,
    ENGINE_BATCH,
    kernel_cache_stats,
    run_scenarios,
)
from repro.experiments.batch_engine import batch_key
from repro.experiments.spec import CRASH_SENTINEL, CampaignSpec
from repro.experiments.store import ResultStore

logger = logging.getLogger(__name__)


@dataclass
class CampaignReport:
    """Outcome of one :func:`run_campaign` invocation."""

    total: int
    skipped: int
    executed: int
    ok: int = 0
    errors: int = 0
    timeouts: int = 0
    crashed: int = 0
    workers: int = 1
    wall_time_s: float = 0.0
    #: Span-measured wall time of the execution window alone — chunk dispatch
    #: through last absorb, excluding spec expansion and the resume scan.
    execution_wall_s: float = 0.0
    #: Summed worker CPU time across every executed chunk.
    cpu_time_s: float = 0.0
    #: Summed worker busy-wall over ``execution_wall_s × workers`` — how much
    #: of the pool's capacity the campaign actually used.
    worker_utilisation: float = 0.0
    shard: Optional[str] = None
    #: Executed runs per engine (``kernel`` / ``legacy`` / ``none`` for runs
    #: that failed before an engine was selected).
    engines: Dict[str, int] = field(default_factory=dict)
    #: Summed kernel-cache counters across every worker that ran a chunk.
    kernel_cache: Dict[str, int] = field(default_factory=dict)
    #: Chunk re-dispatches after a worker death / hang / corrupt result.
    retries: int = 0
    #: Hung workers hard-killed by the heartbeat watchdog.
    watchdog_kills: int = 0
    #: Shared worker pools rebuilt after ``BrokenProcessPool``.
    pool_reforms: int = 0
    #: Chunk results rejected because their records' run ids were mangled.
    corrupt_chunks: int = 0
    #: Faults the active :class:`~repro.faults.plan.FaultPlan` injected
    #: (counted on the dispatch side — a crashed worker can't report).
    faults_injected: int = 0
    #: Planned injections per fault kind (subset of ``faults_injected``).
    fault_kinds: Dict[str, int] = field(default_factory=dict)
    #: Chunks that fell to the last rung: serial in-process execution.
    degraded_serial: int = 0

    @property
    def runs_per_second(self) -> float:
        """Executed-run throughput of this invocation.

        Computed over the span-measured execution window
        (``execution_wall_s``), not the whole-invocation bracketing: a
        resumed campaign that mostly scans already-stored run ids must not
        report a misleadingly low (or, with ``executed == 0``, undefined)
        throughput.  Falls back to ``wall_time_s`` for reports loaded from
        stores written before the execution window existed.
        """
        wall = self.execution_wall_s or self.wall_time_s
        if self.executed <= 0 or wall <= 0:
            return 0.0
        return self.executed / wall

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (printed by ``repro sweep --json``)."""
        return {
            "total": self.total,
            "skipped": self.skipped,
            "executed": self.executed,
            "ok": self.ok,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "crashed": self.crashed,
            "workers": self.workers,
            "wall_time_s": round(self.wall_time_s, 4),
            "execution_wall_s": round(self.execution_wall_s, 4),
            "cpu_time_s": round(self.cpu_time_s, 4),
            "worker_utilisation": round(self.worker_utilisation, 3),
            "runs_per_second": round(self.runs_per_second, 2),
            "shard": self.shard,
            "engines": dict(sorted(self.engines.items())),
            "kernel_cache": dict(sorted(self.kernel_cache.items())),
            "retries": self.retries,
            "watchdog_kills": self.watchdog_kills,
            "pool_reforms": self.pool_reforms,
            "corrupt_chunks": self.corrupt_chunks,
            "faults_injected": self.faults_injected,
            "fault_kinds": dict(sorted(self.fault_kinds.items())),
            "degraded_serial": self.degraded_serial,
        }


def _run_chunk_with_stats(
    chunk: List[Dict[str, Any]],
    timeout_s: Optional[float],
    engine: str,
    collect: bool = False,
    beat: Optional[Callable[[], None]] = None,
) -> Dict[str, Any]:
    """Run one chunk and report the kernel-cache counter *delta* alongside.

    The cache is process-global and chunks from other campaigns may have
    warmed it, so only the delta is attributable to this chunk.  Chunk wall
    and CPU time are always measured (four clock reads); ``collect``
    additionally activates a fresh per-chunk
    :class:`~repro.telemetry.metrics.MetricsRegistry` — pooled workers can't
    write into the parent campaign's registry, so they ship a snapshot back
    in the result for the parent to merge.
    """
    before = kernel_cache_stats()
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    token = None
    local: Optional[MetricsRegistry] = None
    if collect:
        local = MetricsRegistry()
        token = _telemetry.activate(registry=local)
    try:
        records = run_scenarios(chunk, timeout_s=timeout_s, engine=engine, beat=beat)
    finally:
        if token is not None:
            _telemetry.restore(token)
    after = kernel_cache_stats()
    result = {
        "records": records,
        "kernel_cache": {name: after[name] - before[name] for name in after},
        "worker": {
            "pid": os.getpid(),
            "wall_s": round(time.perf_counter() - wall_start, 6),
            "cpu_s": round(time.process_time() - cpu_start, 6),
        },
    }
    if local is not None:
        result["metrics"] = local.snapshot()
    return result


def _execute_chunk(
    chunk: List[Dict[str, Any]],
    timeout_s: Optional[float],
    engine: str = ENGINE_AUTO,
    collect: bool = False,
    index: Optional[int] = None,
    attempt: int = 0,
) -> Dict[str, Any]:
    """*Worker* entry point: run one chunk of scenario dicts.

    ``index``/``attempt`` identify this dispatch to the fault plane: the
    heartbeat array is stamped under ``index``, and an armed
    :class:`~repro.faults.plan.FaultPlan` rolls ``(index, attempt)`` to
    decide whether this very dispatch crashes, hangs, slows down or corrupts
    its records.  The parent evaluates the identical roll for accounting.

    The crash sentinel hard-exits here by design — it must only ever run in
    a pooled worker process; the inline (``workers <= 1``) path calls
    :func:`_run_chunk_with_stats` directly so a sentinel spec is executed
    in-process and recorded as an error instead of killing the campaign.
    """
    _injector.beat(index)
    plan = _injector.active_plan()
    fault = None
    if plan is not None and index is not None:
        fault = plan.fault_for(index, attempt)
        _injector.inject_before_chunk(fault, plan)
    for spec in chunk:
        if spec.get("algorithm") == CRASH_SENTINEL:
            os._exit(43)
    result = _run_chunk_with_stats(
        chunk, timeout_s, engine, collect=collect,
        beat=(lambda: _injector.beat(index)) if index is not None else None,
    )
    if fault == "corrupt":
        _injector.corrupt_records(result["records"])
    return result


def _crashed_records(chunk: Sequence[Dict[str, Any]], detail: str) -> List[Dict[str, Any]]:
    """Placeholder records for runs whose worker died before reporting."""
    records = []
    for spec in chunk:
        record = dict(spec)
        record.update(
            status="crashed", error=detail, engine=None,
            node_steps=0, edge_reversals=0, dummy_steps=0, rounds=0, steps_taken=0,
            converged=False, destination_oriented=False, acyclic_final=False,
            failures_applied=0, partition_skips=0, reorientations=0, crashed_nodes=0,
            wall_time_s=0.0, nodes=None, edges=None, bad_nodes=None,
            messages_sent=None, messages_delivered=None, messages_lost=None,
            simulated_time=None, events_dispatched=None,
            slots=0, packets_injected=0, packets_delivered=0,
            packets_dropped=0, packets_in_flight=0, drop_tail=0, drop_ttl=0,
            drop_no_route=0, drop_link_down=0, transient_loops=0,
            peak_queue_depth=0, mean_latency_slots=None,
            max_latency_slots=None, mean_hops=None, mean_stretch=None,
        )
        records.append(record)
    return records


def _chunked(items: List[Dict[str, Any]], chunk_size: int) -> List[List[Dict[str, Any]]]:
    return [items[i:i + chunk_size] for i in range(0, len(items), chunk_size)]


def _default_chunk_size(pending: int, workers: int) -> int:
    # aim for ~8 chunks per worker so stragglers balance, but keep chunks
    # big enough that per-chunk dispatch overhead stays negligible; derived
    # from the pending count rather than capped at a constant, so huge
    # campaigns don't degenerate into thousands of tiny dispatches
    if pending <= 0:
        return 1
    return max(1, -(-pending // (max(1, workers) * 8)))


def _default_batch_chunk_size(pending: int, workers: int) -> int:
    # batched chunks want the opposite trade-off: the wider a lockstep call,
    # the more lanes share kernels and deduplicated outcomes, so inline runs
    # take whole batch-key groups and pooled runs aim for only ~2 chunks per
    # worker — enough to keep every worker fed without fragmenting batches
    if pending <= 0:
        return 1
    if workers <= 1:
        return pending
    return max(1, -(-pending // (workers * 2)))


def _batch_aligned_chunks(
    pending: List[Dict[str, Any]], chunk_size: int
) -> List[List[Dict[str, Any]]]:
    """Chunks that never straddle a batch-key boundary.

    Pending runs are grouped by :func:`~repro.experiments.batch_engine.batch_key`
    (stable first-appearance order, so resumed campaigns chunk the same way)
    and each group is split on its own — a chunk shipped to a worker is
    therefore one lockstep batch, never a mixture that the worker would have
    to re-split into tiny groups.
    """
    groups: "OrderedDict[Any, List[Dict[str, Any]]]" = OrderedDict()
    for spec in pending:
        groups.setdefault(batch_key(spec), []).append(spec)
    chunks: List[List[Dict[str, Any]]] = []
    for group in groups.values():
        chunks.extend(_chunked(group, chunk_size))
    return chunks


def _pool_context():
    return fork_preferring_context()


def run_campaign(
    campaign: CampaignSpec,
    store: ResultStore,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    timeout_s: Optional[float] = None,
    resume: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
    engine: str = ENGINE_AUTO,
    telemetry: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    watchdog_s: Optional[float] = None,
    max_retries: int = 3,
    backoff_s: float = 0.05,
    max_pool_reforms: int = 2,
) -> CampaignReport:
    """Execute (the missing part of) a campaign and persist every record.

    Parameters
    ----------
    campaign:
        The cross-product spec to sweep.
    store:
        Result store; already-stored runs are skipped when ``resume`` is set.
    workers:
        Pool size; ``<= 1`` executes inline without multiprocessing.
    chunk_size:
        Runs per dispatched chunk (default: derived from the pending count
        and worker count; ``engine="batch"`` prefers far wider chunks).
    timeout_s:
        Cooperative per-run wall-clock budget; over-budget runs are recorded
        with ``status="timeout"`` (shared per chunk under ``engine="batch"``).
    progress:
        Optional ``callback(done, pending_total)`` invoked after every chunk.
    engine:
        Execution engine for every run (see
        :func:`repro.experiments.runner.execute_scenario`): ``"auto"``
        (default — compiled kernels whenever the spec supports them),
        ``"kernel"``, ``"legacy"``, ``"async"`` or ``"batch"``.  The batch
        engine additionally changes chunking: chunks are aligned to batch
        keys so each one executes as a single lockstep call.
    telemetry:
        When set (the default), the campaign runs under an enabled
        :mod:`repro.telemetry` session: per-chunk spans, per-run scenario
        events and a merged metrics snapshot are appended to the store's
        ``telemetry.jsonl`` sidecar.  ``False`` keeps the whole substrate on
        its zero-cost no-op path and writes no sidecar.
    fault_plan:
        Optional seeded :class:`~repro.faults.plan.FaultPlan` injected into
        pooled workers (chaos testing).  Ignored — with a warning — when
        ``workers <= 1``, because faults only ever arm in pooled workers.
    watchdog_s:
        Heartbeat staleness deadline.  A pooled chunk whose worker has not
        stamped a heartbeat for this long is presumed hung: the worker is
        hard-killed and the chunk re-dispatched.  Must exceed the worst
        single-*scenario* runtime (heartbeats are stamped per scenario).
        ``None`` (default) disables the watchdog.
    max_retries:
        Re-dispatches a chunk may consume (worker death, watchdog kill or
        corrupt result) before its runs are recorded as ``crashed``.
    backoff_s:
        Base delay of the exponential backoff (with deterministic jitter)
        between pool generations after a failure.
    max_pool_reforms:
        Shared-pool rebuilds allowed after ``BrokenProcessPool`` before the
        executor falls back to per-chunk quarantine pools.
    """
    start = time.perf_counter()
    if fault_plan is not None:
        fault_plan.validate()
        if workers <= 1:
            logger.warning(
                "fault plan ignored: inline execution (workers <= 1) never "
                "injects faults"
            )
    specs = [spec.to_dict() for spec in campaign.expand()]
    store.record_campaign(campaign.to_dict())

    existing = store.existing_run_ids() if resume else set()
    pending = [spec for spec in specs if spec["run_id"] not in existing]
    report = CampaignReport(
        total=len(specs),
        skipped=len(specs) - len(pending),
        executed=len(pending),
        workers=max(1, workers),
    )
    if not pending:
        report.wall_time_s = time.perf_counter() - start
        store.record_report(report.to_dict())
        return report

    shard = store.new_shard()
    report.shard = str(shard)
    if engine == ENGINE_BATCH:
        if chunk_size is None:
            chunk_size = _default_batch_chunk_size(len(pending), workers)
        chunks = _batch_aligned_chunks(pending, chunk_size)
    else:
        if chunk_size is None:
            chunk_size = _default_chunk_size(len(pending), workers)
        chunks = _chunked(pending, chunk_size)

    logger.info(
        "campaign %s: %d pending of %d runs in %d chunks across %d workers "
        "(engine=%s)", campaign.name, len(pending), len(specs), len(chunks),
        report.workers, engine,
    )

    session = _telemetry.session(sink=store.record_telemetry) if telemetry else None
    registry = tracer = None
    if session is not None:
        registry, tracer = session.__enter__()
    done = 0
    busy = {"wall_s": 0.0, "cpu_s": 0.0}

    def _absorb(records: List[Dict[str, Any]]) -> None:
        nonlocal done
        store.append(records, shard)
        done += len(records)
        for record in records:
            status = record.get("status")
            if status == "ok":
                report.ok += 1
            elif status == "timeout":
                report.timeouts += 1
            elif status == "crashed":
                report.crashed += 1
            else:
                report.errors += 1
            engine_used = record.get("engine") or "none"
            report.engines[engine_used] = report.engines.get(engine_used, 0) + 1
        if tracer is not None:
            now = round(tracer.now(), 6)
            for record in records:
                tracer.emit({
                    "kind": "scenario",
                    "t": now,
                    "run_id": record.get("run_id"),
                    "engine": record.get("engine"),
                    "status": record.get("status"),
                    "family": record.get("family"),
                    "algorithm": record.get("algorithm"),
                    "wall_s": record.get("wall_time_s") or 0.0,
                })
        if progress is not None:
            progress(done, len(pending))

    def _absorb_chunk_result(result: Dict[str, Any], index: Optional[int] = None) -> None:
        for name, value in result.get("kernel_cache", {}).items():
            report.kernel_cache[name] = report.kernel_cache.get(name, 0) + value
        worker = result.get("worker") or {}
        busy["wall_s"] += worker.get("wall_s", 0.0)
        busy["cpu_s"] += worker.get("cpu_s", 0.0)
        if registry is not None and "metrics" in result:
            registry.merge(result["metrics"])
        if tracer is not None and worker:
            wall_s = worker.get("wall_s", 0.0)
            tracer.emit_span(
                "chunk",
                t_start=max(0.0, tracer.now() - wall_s),
                dur_s=wall_s,
                index=index,
                runs=len(result["records"]),
                pid=worker.get("pid"),
                cpu_s=worker.get("cpu_s", 0.0),
            )
        _absorb(result["records"])

    exec_start = time.perf_counter()
    try:
        campaign_span = nullcontext() if tracer is None else tracer.span(
            "campaign", campaign=campaign.name, pending=len(pending),
            workers=report.workers, engine=engine,
        )
        with campaign_span:
            if workers <= 1:
                for index, chunk in enumerate(chunks):
                    _absorb_chunk_result(
                        _run_chunk_with_stats(chunk, timeout_s, engine), index
                    )
            else:
                _run_pooled(
                    chunks, workers, timeout_s, engine,
                    _absorb, _absorb_chunk_result, collect=telemetry,
                    fault_plan=fault_plan, watchdog_s=watchdog_s,
                    max_retries=max_retries, backoff_s=backoff_s,
                    max_pool_reforms=max_pool_reforms, report=report,
                )
        report.execution_wall_s = time.perf_counter() - exec_start
        report.cpu_time_s = busy["cpu_s"]
        if report.execution_wall_s > 0:
            report.worker_utilisation = busy["wall_s"] / (
                report.execution_wall_s * report.workers
            )
        if registry is not None:
            for name, value in (
                ("faults.injected", report.faults_injected),
                ("executor.retries", report.retries),
                ("executor.watchdog_kills", report.watchdog_kills),
                ("executor.pool_reforms", report.pool_reforms),
                ("executor.corrupt_chunks", report.corrupt_chunks),
                ("executor.degraded_serial", report.degraded_serial),
            ):
                if value:
                    registry.inc(name, value)
        if tracer is not None:
            snapshot = registry.snapshot()
            tracer.emit({"kind": "metrics", "t": round(tracer.now(), 6), **snapshot})
            tracer.event(
                "campaign_summary",
                executed=report.executed, ok=report.ok, errors=report.errors,
                timeouts=report.timeouts, crashed=report.crashed,
                execution_wall_s=round(report.execution_wall_s, 6),
                cpu_time_s=round(report.cpu_time_s, 6),
                worker_utilisation=round(report.worker_utilisation, 3),
            )
    finally:
        if session is not None:
            session.__exit__(None, None, None)

    report.wall_time_s = time.perf_counter() - start
    logger.info(
        "campaign %s: executed %d (%d ok, %d errors, %d timeouts, %d crashed) "
        "in %.3fs", campaign.name, report.executed, report.ok, report.errors,
        report.timeouts, report.crashed, report.wall_time_s,
    )
    store.record_report(report.to_dict())
    return report


def _run_pooled(
    chunks: List[List[Dict[str, Any]]],
    workers: int,
    timeout_s: Optional[float],
    engine: str,
    absorb: Callable[[List[Dict[str, Any]]], None],
    absorb_chunk_result: Callable[[Dict[str, Any], Optional[int]], None],
    collect: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    watchdog_s: Optional[float] = None,
    max_retries: int = 3,
    backoff_s: float = 0.05,
    max_pool_reforms: int = 2,
    report: Optional[CampaignReport] = None,
) -> None:
    """Dispatch chunks over a process pool, self-healing around failures.

    Fast path: one shared pool for every chunk.  When a worker process dies
    (or the watchdog kills a hung one) the pool is broken and *every* pending
    future fails, which says nothing about which chunk was at fault — so the
    pool is reformed and the surviving chunks re-dispatched, with attempts
    counted only against chunks that had actually *started* (stamped a
    heartbeat) in the broken generation.  Chunks that exhaust their retry
    budget, and everything left when the reform budget runs out, fall to
    quarantine mode: each runs in its own single-use pool, and only a chunk
    that kills its private pool is recorded as crashed.  If no pool can be
    created at all, the leftovers run serially in-process.
    """
    context = _pool_context()
    remaining = {index: chunk for index, chunk in enumerate(chunks)}
    expected_ids = {
        index: {spec.get("run_id") for spec in chunk}
        for index, chunk in remaining.items()
    }
    attempts = {index: 0 for index in remaining}
    tracer = _telemetry.TRACER if _telemetry.ENABLED else None
    report = report if report is not None else CampaignReport(
        total=0, skipped=0, executed=0
    )

    # Shared heartbeat/pid arrays, always allocated: the watchdog reads them,
    # and the generation logic uses the stamps to tell started-but-unfinished
    # chunks from never-started ones after a pool break.  lock=False — each
    # slot has a single writer (the worker owning that chunk) and a reader
    # that tolerates a torn double (worst case: one late watchdog poll).
    heartbeats = context.Array("d", len(chunks), lock=False)
    pids = context.Array("l", len(chunks), lock=False)

    armed = fault_plan is not None and fault_plan.any_faults()

    def _note_planned_fault(index: int, attempt: int) -> None:
        # a crashing/hanging worker can never report its own injection, so
        # the parent mirrors the (deterministic) roll at dispatch time
        if not armed:
            return
        fault = fault_plan.fault_for(index, attempt)
        if fault is None:
            return
        report.faults_injected += 1
        report.fault_kinds[fault] = report.fault_kinds.get(fault, 0) + 1
        if tracer is not None:
            tracer.event("fault_planned", index=index, attempt=attempt, kind=fault)

    def _fail_or_retry(index: int, detail: str, event: str) -> None:
        # one strike against `index`; past the budget its runs are recorded
        # as crashed placeholders, otherwise it re-enters the next generation
        chunk = remaining[index]
        attempts[index] += 1
        if attempts[index] > max_retries:
            remaining.pop(index)
            logger.error(
                "chunk %d (%d runs) failed %d times (%s); recording crashed "
                "placeholders", index, len(chunk), attempts[index], detail,
            )
            if tracer is not None:
                tracer.event(
                    "chunk_crashed", index=index, runs=len(chunk), error=detail,
                )
            absorb(_crashed_records(chunk, detail))
        else:
            report.retries += 1
            logger.warning(
                "chunk %d (%d runs) will be re-dispatched (attempt %d/%d): %s",
                index, len(chunk), attempts[index] + 1, max_retries + 1, detail,
            )
            if tracer is not None:
                tracer.event(
                    event, index=index, runs=len(chunk),
                    attempt=attempts[index], error=detail,
                )

    def _run_serially(index: int, chunk: List[Dict[str, Any]]) -> None:
        # last rung: no pool at all — execute in-process (faults never arm
        # here; a crash sentinel becomes an error record, not a dead parent)
        report.degraded_serial += 1
        if tracer is not None:
            tracer.event("degraded_serial", index=index, runs=len(chunk))
        try:
            result = _run_chunk_with_stats(chunk, timeout_s, engine, collect=collect)
        except Exception as exc:  # noqa: BLE001 — keep the campaign alive
            logger.error(
                "chunk %d (%d runs) failed even in serial fallback",
                index, len(chunk), exc_info=exc,
            )
            absorb(_crashed_records(chunk, f"{type(exc).__name__}: {exc}"))
            return
        absorb_chunk_result(result, index)

    def _handle_success(index: int, result: Dict[str, Any]) -> bool:
        # reject results whose run ids don't match the dispatched specs —
        # the signature of a corrupting worker; True = chunk settled
        got_ids = {record.get("run_id") for record in result["records"]}
        if got_ids != expected_ids[index]:
            report.corrupt_chunks += 1
            _fail_or_retry(index, "worker returned corrupted records", "chunk_corrupt")
            return index not in remaining
        absorb_chunk_result(result, index)
        remaining.pop(index)
        return True

    if armed:
        os.environ[FAULT_PLAN_ENV] = fault_plan.to_json()
    try:
        _run_pool_generations(
            remaining, workers, timeout_s, engine, collect, context,
            heartbeats, pids, attempts, watchdog_s, backoff_s,
            max_pool_reforms, report, tracer, absorb,
            _note_planned_fault, _fail_or_retry, _handle_success, _run_serially,
        )
    finally:
        if armed:
            os.environ.pop(FAULT_PLAN_ENV, None)


def _run_pool_generations(
    remaining: Dict[int, List[Dict[str, Any]]],
    workers: int,
    timeout_s: Optional[float],
    engine: str,
    collect: bool,
    context,
    heartbeats,
    pids,
    attempts: Dict[int, int],
    watchdog_s: Optional[float],
    backoff_s: float,
    max_pool_reforms: int,
    report: CampaignReport,
    tracer,
    absorb: Callable[[List[Dict[str, Any]]], None],
    note_planned_fault: Callable[[int, int], None],
    fail_or_retry: Callable[[int, str, str], None],
    handle_success: Callable[[int, Dict[str, Any]], bool],
    run_serially: Callable[[int, List[Dict[str, Any]]], None],
) -> None:
    """The generation loop behind :func:`_run_pooled` (shared-pool rungs)."""
    poll_s = None
    if watchdog_s is not None:
        poll_s = min(0.25, max(0.05, watchdog_s / 4.0))
    pool_reforms_used = 0
    generation = 0
    degraded = False

    while remaining:
        generation += 1
        try:
            pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=context,
                initializer=_injector.arm_pool_worker,
                initargs=(heartbeats, pids),
            )
        except OSError as exc:
            logger.error(
                "cannot create a worker pool (%s); degrading %d chunks to "
                "serial in-process execution", exc, len(remaining),
            )
            degraded = True
            break
        gen_start = time.monotonic()
        pool_broke = False
        killed: Set[int] = set()
        with pool:
            futures = {}
            for index in sorted(remaining):
                try:
                    future = pool.submit(
                        _execute_chunk, remaining[index], timeout_s, engine,
                        collect, index, attempts[index],
                    )
                except BrokenProcessPool:
                    # an already-dispatched chunk killed its worker before
                    # the dispatch loop even finished; stop submitting —
                    # undispatched chunks never started, so they keep their
                    # full budget for the next generation
                    pool_broke = True
                    break
                note_planned_fault(index, attempts[index])
                futures[future] = index
            not_done = set(futures)
            while not_done:
                finished, not_done = wait(
                    not_done, timeout=poll_s, return_when=FIRST_COMPLETED
                )
                if watchdog_s is not None and not_done:
                    now = time.monotonic()
                    for future in not_done:
                        index = futures[future]
                        stamp = heartbeats[index]
                        pid = int(pids[index])
                        # only stamps from *this* generation are live: a
                        # stale stamp + recycled pid must never be killed
                        if (
                            index not in killed
                            and stamp >= gen_start
                            and now - stamp > watchdog_s
                            and pid > 0
                        ):
                            logger.warning(
                                "watchdog: chunk %d silent for %.2fs "
                                "(> %.2fs); killing worker %d",
                                index, now - stamp, watchdog_s, pid,
                            )
                            report.watchdog_kills += 1
                            killed.add(index)
                            if tracer is not None:
                                tracer.event(
                                    "watchdog_kill", index=index, pid=pid,
                                    silent_s=round(now - stamp, 3),
                                )
                            try:
                                os.kill(pid, signal.SIGKILL)
                            except ProcessLookupError:
                                pass  # already gone; the pool will notice
                for future in finished:
                    index = futures[future]
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        pool_broke = True
                        continue  # stays in `remaining` for the next rung
                    except Exception as exc:  # noqa: BLE001 — keep going
                        fail_or_retry(
                            index, f"{type(exc).__name__}: {exc}", "chunk_failed"
                        )
                        continue
                    handle_success(index, result)
                if pool_broke:
                    break
        if not remaining:
            return
        if pool_broke:
            pool_reforms_used += 1
            report.pool_reforms += 1
            # strike only the chunks that actually started in the broken
            # generation — the guilty crash/hang plus in-flight casualties;
            # never-started chunks keep their full budget
            started = sorted(
                index for index in remaining
                if heartbeats[index] >= gen_start or index in killed
            )
            if tracer is not None:
                tracer.event(
                    "pool_broken", generation=generation,
                    surviving_chunks=len(remaining), started_chunks=len(started),
                )
            for index in started:
                if index in remaining:
                    fail_or_retry(index, "worker process died mid-chunk", "chunk_interrupted")
            if pool_reforms_used > max_pool_reforms:
                logger.warning(
                    "pool reform budget exhausted (%d); retrying %d surviving "
                    "chunks in quarantine", max_pool_reforms, len(remaining),
                )
                break
        if remaining:
            # exponential backoff with deterministic jitter before reforming
            delay = min(2.0, backoff_s * (2 ** (generation - 1)))
            delay *= 1.0 + 0.5 * random.Random(generation).random()
            time.sleep(delay)

    # quarantine: isolate each surviving chunk in a throwaway pool
    for index in sorted(remaining):
        if degraded:
            break
        chunk = remaining.pop(index)
        note_planned_fault(index, attempts[index])
        if tracer is not None:
            tracer.event("quarantine_retry", index=index, runs=len(chunk))
        try:
            quarantine = ProcessPoolExecutor(
                max_workers=1, mp_context=context,
                initializer=_injector.arm_pool_worker,
                initargs=(heartbeats, pids),
            )
        except OSError as exc:
            logger.error(
                "cannot create a quarantine pool (%s); degrading to serial "
                "in-process execution", exc,
            )
            degraded = True
            remaining[index] = chunk
            break
        try:
            with quarantine:
                future = quarantine.submit(
                    _execute_chunk, chunk, timeout_s, engine, collect,
                    index, attempts[index],
                )
                result = _await_quarantined(
                    future, index, heartbeats, pids, watchdog_s, poll_s,
                    report, tracer,
                )
        except Exception as exc:  # noqa: BLE001 — BrokenProcessPool included
            logger.error(
                "chunk %d (%d runs) killed its quarantine pool; recording "
                "crashed placeholders", index, len(chunk), exc_info=exc,
            )
            if tracer is not None:
                tracer.event(
                    "chunk_crashed", index=index, runs=len(chunk),
                    error=f"{type(exc).__name__}: {exc}",
                )
            absorb(_crashed_records(
                chunk, f"worker process died: {type(exc).__name__}: {exc}"
            ))
            continue
        remaining[index] = chunk
        if handle_success(index, result):
            continue
        # corrupt result in quarantine past the retry budget was already
        # settled by handle_success/fail_or_retry; if the chunk survived
        # with budget left, spend the rest of it serially — the quarantine
        # rung is the end of pooled dispatch
        if index in remaining:
            run_serially(index, remaining.pop(index))

    # serial degradation: the very last rung
    if degraded:
        for index in sorted(remaining):
            run_serially(index, remaining.pop(index))


def _await_quarantined(
    future,
    index: int,
    heartbeats,
    pids,
    watchdog_s: Optional[float],
    poll_s: Optional[float],
    report: CampaignReport,
    tracer,
):
    """Wait on a quarantine future, watchdogging the hung-worker case."""
    if watchdog_s is None:
        return future.result()
    q_start = time.monotonic()
    already_killed = False
    while True:
        finished, _ = wait([future], timeout=poll_s)
        if finished:
            return future.result()
        now = time.monotonic()
        stamp = heartbeats[index]
        reference = stamp if stamp >= q_start else q_start
        pid = int(pids[index]) if stamp >= q_start else 0
        # a worker that has not stamped yet is still starting up, not hung —
        # its pid slot may hold a dead predecessor, which must not be killed
        if not already_killed and now - reference > watchdog_s and pid > 0:
            already_killed = True
            report.watchdog_kills += 1
            logger.warning(
                "watchdog: quarantined chunk %d silent for %.2fs; "
                "killing worker %d", index, now - reference, pid,
            )
            if tracer is not None:
                tracer.event(
                    "watchdog_kill", index=index, pid=pid,
                    silent_s=round(now - reference, 3),
                )
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            # the kill breaks the private pool; the next wait() returns the
            # future as failed and future.result() raises BrokenProcessPool
