"""Sharded campaign executor: chunked dispatch over a process pool.

The executor expands a :class:`~repro.experiments.spec.CampaignSpec` into its
run list, drops every run already present in the
:class:`~repro.experiments.store.ResultStore` (campaign **resume**), splits
the remainder into chunks of plain spec dicts and dispatches the chunks
across a ``multiprocessing`` worker pool.  Workers rebuild all heavyweight
objects (instances, automata, schedulers) locally from the dicts, so nothing
but plain data is ever pickled.

Failure containment is layered:

* a bad *run* (exception, timeout) is caught inside the worker and comes back
  as a record with ``status`` ``"error"`` / ``"timeout"``;
* a dead *worker process* (segfault, OOM-kill) breaks the pool; the
  surviving chunks are retried in quarantine (one single-use pool each) and
  only the chunk that kills its private pool is written out as
  ``status="crashed"`` records, so the campaign still completes;
* an interrupted *campaign* (Ctrl-C, machine loss) is resumable: records are
  appended to the store as each chunk completes, so a re-run skips everything
  already recorded.

``workers <= 1`` bypasses multiprocessing entirely and executes inline —
deterministic, easy to debug, and what the tests mostly use.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from collections import OrderedDict

from repro import telemetry as _telemetry
from repro._mp import fork_preferring_context
from repro.telemetry.metrics import MetricsRegistry
from repro.experiments.runner import (
    ENGINE_AUTO,
    ENGINE_BATCH,
    kernel_cache_stats,
    run_scenarios,
)
from repro.experiments.batch_engine import batch_key
from repro.experiments.spec import CRASH_SENTINEL, CampaignSpec
from repro.experiments.store import ResultStore

logger = logging.getLogger(__name__)


@dataclass
class CampaignReport:
    """Outcome of one :func:`run_campaign` invocation."""

    total: int
    skipped: int
    executed: int
    ok: int = 0
    errors: int = 0
    timeouts: int = 0
    crashed: int = 0
    workers: int = 1
    wall_time_s: float = 0.0
    #: Span-measured wall time of the execution window alone — chunk dispatch
    #: through last absorb, excluding spec expansion and the resume scan.
    execution_wall_s: float = 0.0
    #: Summed worker CPU time across every executed chunk.
    cpu_time_s: float = 0.0
    #: Summed worker busy-wall over ``execution_wall_s × workers`` — how much
    #: of the pool's capacity the campaign actually used.
    worker_utilisation: float = 0.0
    shard: Optional[str] = None
    #: Executed runs per engine (``kernel`` / ``legacy`` / ``none`` for runs
    #: that failed before an engine was selected).
    engines: Dict[str, int] = field(default_factory=dict)
    #: Summed kernel-cache counters across every worker that ran a chunk.
    kernel_cache: Dict[str, int] = field(default_factory=dict)

    @property
    def runs_per_second(self) -> float:
        """Executed-run throughput of this invocation.

        Computed over the span-measured execution window
        (``execution_wall_s``), not the whole-invocation bracketing: a
        resumed campaign that mostly scans already-stored run ids must not
        report a misleadingly low (or, with ``executed == 0``, undefined)
        throughput.  Falls back to ``wall_time_s`` for reports loaded from
        stores written before the execution window existed.
        """
        wall = self.execution_wall_s or self.wall_time_s
        if self.executed <= 0 or wall <= 0:
            return 0.0
        return self.executed / wall

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (printed by ``repro sweep --json``)."""
        return {
            "total": self.total,
            "skipped": self.skipped,
            "executed": self.executed,
            "ok": self.ok,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "crashed": self.crashed,
            "workers": self.workers,
            "wall_time_s": round(self.wall_time_s, 4),
            "execution_wall_s": round(self.execution_wall_s, 4),
            "cpu_time_s": round(self.cpu_time_s, 4),
            "worker_utilisation": round(self.worker_utilisation, 3),
            "runs_per_second": round(self.runs_per_second, 2),
            "shard": self.shard,
            "engines": dict(sorted(self.engines.items())),
            "kernel_cache": dict(sorted(self.kernel_cache.items())),
        }


def _run_chunk_with_stats(
    chunk: List[Dict[str, Any]],
    timeout_s: Optional[float],
    engine: str,
    collect: bool = False,
) -> Dict[str, Any]:
    """Run one chunk and report the kernel-cache counter *delta* alongside.

    The cache is process-global and chunks from other campaigns may have
    warmed it, so only the delta is attributable to this chunk.  Chunk wall
    and CPU time are always measured (four clock reads); ``collect``
    additionally activates a fresh per-chunk
    :class:`~repro.telemetry.metrics.MetricsRegistry` — pooled workers can't
    write into the parent campaign's registry, so they ship a snapshot back
    in the result for the parent to merge.
    """
    before = kernel_cache_stats()
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    token = None
    local: Optional[MetricsRegistry] = None
    if collect:
        local = MetricsRegistry()
        token = _telemetry.activate(registry=local)
    try:
        records = run_scenarios(chunk, timeout_s=timeout_s, engine=engine)
    finally:
        if token is not None:
            _telemetry.restore(token)
    after = kernel_cache_stats()
    result = {
        "records": records,
        "kernel_cache": {name: after[name] - before[name] for name in after},
        "worker": {
            "pid": os.getpid(),
            "wall_s": round(time.perf_counter() - wall_start, 6),
            "cpu_s": round(time.process_time() - cpu_start, 6),
        },
    }
    if local is not None:
        result["metrics"] = local.snapshot()
    return result


def _execute_chunk(
    chunk: List[Dict[str, Any]],
    timeout_s: Optional[float],
    engine: str = ENGINE_AUTO,
    collect: bool = False,
) -> Dict[str, Any]:
    """*Worker* entry point: run one chunk of scenario dicts.

    The crash sentinel hard-exits here by design — it must only ever run in
    a pooled worker process; the inline (``workers <= 1``) path calls
    :func:`_run_chunk_with_stats` directly so a sentinel spec is executed
    in-process and recorded as an error instead of killing the campaign.
    """
    for spec in chunk:
        if spec.get("algorithm") == CRASH_SENTINEL:
            os._exit(43)
    return _run_chunk_with_stats(chunk, timeout_s, engine, collect=collect)


def _crashed_records(chunk: Sequence[Dict[str, Any]], detail: str) -> List[Dict[str, Any]]:
    """Placeholder records for runs whose worker died before reporting."""
    records = []
    for spec in chunk:
        record = dict(spec)
        record.update(
            status="crashed", error=detail, engine=None,
            node_steps=0, edge_reversals=0, dummy_steps=0, rounds=0, steps_taken=0,
            converged=False, destination_oriented=False, acyclic_final=False,
            failures_applied=0, partition_skips=0, reorientations=0,
            wall_time_s=0.0, nodes=None, edges=None, bad_nodes=None,
            messages_sent=None, messages_delivered=None, messages_lost=None,
            simulated_time=None, events_dispatched=None,
            slots=0, packets_injected=0, packets_delivered=0,
            packets_dropped=0, packets_in_flight=0, drop_tail=0, drop_ttl=0,
            drop_no_route=0, drop_link_down=0, transient_loops=0,
            peak_queue_depth=0, mean_latency_slots=None,
            max_latency_slots=None, mean_hops=None, mean_stretch=None,
        )
        records.append(record)
    return records


def _chunked(items: List[Dict[str, Any]], chunk_size: int) -> List[List[Dict[str, Any]]]:
    return [items[i:i + chunk_size] for i in range(0, len(items), chunk_size)]


def _default_chunk_size(pending: int, workers: int) -> int:
    # aim for ~8 chunks per worker so stragglers balance, but keep chunks
    # big enough that per-chunk dispatch overhead stays negligible; derived
    # from the pending count rather than capped at a constant, so huge
    # campaigns don't degenerate into thousands of tiny dispatches
    if pending <= 0:
        return 1
    return max(1, -(-pending // (max(1, workers) * 8)))


def _default_batch_chunk_size(pending: int, workers: int) -> int:
    # batched chunks want the opposite trade-off: the wider a lockstep call,
    # the more lanes share kernels and deduplicated outcomes, so inline runs
    # take whole batch-key groups and pooled runs aim for only ~2 chunks per
    # worker — enough to keep every worker fed without fragmenting batches
    if pending <= 0:
        return 1
    if workers <= 1:
        return pending
    return max(1, -(-pending // (workers * 2)))


def _batch_aligned_chunks(
    pending: List[Dict[str, Any]], chunk_size: int
) -> List[List[Dict[str, Any]]]:
    """Chunks that never straddle a batch-key boundary.

    Pending runs are grouped by :func:`~repro.experiments.batch_engine.batch_key`
    (stable first-appearance order, so resumed campaigns chunk the same way)
    and each group is split on its own — a chunk shipped to a worker is
    therefore one lockstep batch, never a mixture that the worker would have
    to re-split into tiny groups.
    """
    groups: "OrderedDict[Any, List[Dict[str, Any]]]" = OrderedDict()
    for spec in pending:
        groups.setdefault(batch_key(spec), []).append(spec)
    chunks: List[List[Dict[str, Any]]] = []
    for group in groups.values():
        chunks.extend(_chunked(group, chunk_size))
    return chunks


def _pool_context():
    return fork_preferring_context()


def run_campaign(
    campaign: CampaignSpec,
    store: ResultStore,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    timeout_s: Optional[float] = None,
    resume: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
    engine: str = ENGINE_AUTO,
    telemetry: bool = True,
) -> CampaignReport:
    """Execute (the missing part of) a campaign and persist every record.

    Parameters
    ----------
    campaign:
        The cross-product spec to sweep.
    store:
        Result store; already-stored runs are skipped when ``resume`` is set.
    workers:
        Pool size; ``<= 1`` executes inline without multiprocessing.
    chunk_size:
        Runs per dispatched chunk (default: derived from the pending count
        and worker count; ``engine="batch"`` prefers far wider chunks).
    timeout_s:
        Cooperative per-run wall-clock budget; over-budget runs are recorded
        with ``status="timeout"`` (shared per chunk under ``engine="batch"``).
    progress:
        Optional ``callback(done, pending_total)`` invoked after every chunk.
    engine:
        Execution engine for every run (see
        :func:`repro.experiments.runner.execute_scenario`): ``"auto"``
        (default — compiled kernels whenever the spec supports them),
        ``"kernel"``, ``"legacy"``, ``"async"`` or ``"batch"``.  The batch
        engine additionally changes chunking: chunks are aligned to batch
        keys so each one executes as a single lockstep call.
    telemetry:
        When set (the default), the campaign runs under an enabled
        :mod:`repro.telemetry` session: per-chunk spans, per-run scenario
        events and a merged metrics snapshot are appended to the store's
        ``telemetry.jsonl`` sidecar.  ``False`` keeps the whole substrate on
        its zero-cost no-op path and writes no sidecar.
    """
    start = time.perf_counter()
    specs = [spec.to_dict() for spec in campaign.expand()]
    store.record_campaign(campaign.to_dict())

    existing = store.existing_run_ids() if resume else set()
    pending = [spec for spec in specs if spec["run_id"] not in existing]
    report = CampaignReport(
        total=len(specs),
        skipped=len(specs) - len(pending),
        executed=len(pending),
        workers=max(1, workers),
    )
    if not pending:
        report.wall_time_s = time.perf_counter() - start
        store.record_report(report.to_dict())
        return report

    shard = store.new_shard()
    report.shard = str(shard)
    if engine == ENGINE_BATCH:
        if chunk_size is None:
            chunk_size = _default_batch_chunk_size(len(pending), workers)
        chunks = _batch_aligned_chunks(pending, chunk_size)
    else:
        if chunk_size is None:
            chunk_size = _default_chunk_size(len(pending), workers)
        chunks = _chunked(pending, chunk_size)

    logger.info(
        "campaign %s: %d pending of %d runs in %d chunks across %d workers "
        "(engine=%s)", campaign.name, len(pending), len(specs), len(chunks),
        report.workers, engine,
    )

    session = _telemetry.session(sink=store.record_telemetry) if telemetry else None
    registry = tracer = None
    if session is not None:
        registry, tracer = session.__enter__()
    done = 0
    busy = {"wall_s": 0.0, "cpu_s": 0.0}

    def _absorb(records: List[Dict[str, Any]]) -> None:
        nonlocal done
        store.append(records, shard)
        done += len(records)
        for record in records:
            status = record.get("status")
            if status == "ok":
                report.ok += 1
            elif status == "timeout":
                report.timeouts += 1
            elif status == "crashed":
                report.crashed += 1
            else:
                report.errors += 1
            engine_used = record.get("engine") or "none"
            report.engines[engine_used] = report.engines.get(engine_used, 0) + 1
        if tracer is not None:
            now = round(tracer.now(), 6)
            for record in records:
                tracer.emit({
                    "kind": "scenario",
                    "t": now,
                    "run_id": record.get("run_id"),
                    "engine": record.get("engine"),
                    "status": record.get("status"),
                    "family": record.get("family"),
                    "algorithm": record.get("algorithm"),
                    "wall_s": record.get("wall_time_s") or 0.0,
                })
        if progress is not None:
            progress(done, len(pending))

    def _absorb_chunk_result(result: Dict[str, Any], index: Optional[int] = None) -> None:
        for name, value in result.get("kernel_cache", {}).items():
            report.kernel_cache[name] = report.kernel_cache.get(name, 0) + value
        worker = result.get("worker") or {}
        busy["wall_s"] += worker.get("wall_s", 0.0)
        busy["cpu_s"] += worker.get("cpu_s", 0.0)
        if registry is not None and "metrics" in result:
            registry.merge(result["metrics"])
        if tracer is not None and worker:
            wall_s = worker.get("wall_s", 0.0)
            tracer.emit_span(
                "chunk",
                t_start=max(0.0, tracer.now() - wall_s),
                dur_s=wall_s,
                index=index,
                runs=len(result["records"]),
                pid=worker.get("pid"),
                cpu_s=worker.get("cpu_s", 0.0),
            )
        _absorb(result["records"])

    exec_start = time.perf_counter()
    try:
        campaign_span = nullcontext() if tracer is None else tracer.span(
            "campaign", campaign=campaign.name, pending=len(pending),
            workers=report.workers, engine=engine,
        )
        with campaign_span:
            if workers <= 1:
                for index, chunk in enumerate(chunks):
                    _absorb_chunk_result(
                        _run_chunk_with_stats(chunk, timeout_s, engine), index
                    )
            else:
                _run_pooled(
                    chunks, workers, timeout_s, engine,
                    _absorb, _absorb_chunk_result, collect=telemetry,
                )
        report.execution_wall_s = time.perf_counter() - exec_start
        report.cpu_time_s = busy["cpu_s"]
        if report.execution_wall_s > 0:
            report.worker_utilisation = busy["wall_s"] / (
                report.execution_wall_s * report.workers
            )
        if tracer is not None:
            snapshot = registry.snapshot()
            tracer.emit({"kind": "metrics", "t": round(tracer.now(), 6), **snapshot})
            tracer.event(
                "campaign_summary",
                executed=report.executed, ok=report.ok, errors=report.errors,
                timeouts=report.timeouts, crashed=report.crashed,
                execution_wall_s=round(report.execution_wall_s, 6),
                cpu_time_s=round(report.cpu_time_s, 6),
                worker_utilisation=round(report.worker_utilisation, 3),
            )
    finally:
        if session is not None:
            session.__exit__(None, None, None)

    report.wall_time_s = time.perf_counter() - start
    logger.info(
        "campaign %s: executed %d (%d ok, %d errors, %d timeouts, %d crashed) "
        "in %.3fs", campaign.name, report.executed, report.ok, report.errors,
        report.timeouts, report.crashed, report.wall_time_s,
    )
    store.record_report(report.to_dict())
    return report


def _run_pooled(
    chunks: List[List[Dict[str, Any]]],
    workers: int,
    timeout_s: Optional[float],
    engine: str,
    absorb: Callable[[List[Dict[str, Any]]], None],
    absorb_chunk_result: Callable[[Dict[str, Any], Optional[int]], None],
    collect: bool = False,
) -> None:
    """Dispatch chunks over a process pool, surviving worker crashes.

    Fast path: one shared pool for every chunk.  When a worker process dies
    the pool is broken and *every* pending future fails, which says nothing
    about which chunk was at fault — so the surviving chunks fall back to
    quarantine mode: each runs in its own single-use pool, and only a chunk
    that kills its private pool is recorded as crashed.
    """
    context = _pool_context()
    remaining = {index: chunk for index, chunk in enumerate(chunks)}
    tracer = _telemetry.TRACER if _telemetry.ENABLED else None

    pool_broke = False
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        futures = {
            pool.submit(_execute_chunk, chunk, timeout_s, engine, collect): index
            for index, chunk in remaining.items()
        }
        not_done = set(futures)
        while not_done:
            finished, not_done = wait(not_done, return_when=FIRST_COMPLETED)
            for future in finished:
                index = futures[future]
                try:
                    result = future.result()
                except BrokenProcessPool:
                    pool_broke = True
                    continue  # stays in `remaining` for quarantine
                except Exception as exc:  # noqa: BLE001 — keep the campaign alive
                    chunk = remaining.pop(index)
                    logger.error(
                        "chunk %d (%d runs) failed in its worker",
                        index, len(chunk), exc_info=exc,
                    )
                    if tracer is not None:
                        tracer.event(
                            "chunk_failed", index=index, runs=len(chunk),
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    absorb(_crashed_records(chunk, f"{type(exc).__name__}: {exc}"))
                    continue
                absorb_chunk_result(result, index)
                remaining.pop(index)
            if pool_broke:
                break

    if remaining and not pool_broke:
        raise RuntimeError("process pool stopped with chunks unfinished")

    if pool_broke:
        logger.warning(
            "worker pool broke (a worker process died); retrying %d surviving "
            "chunks in quarantine", len(remaining),
        )
        if tracer is not None:
            tracer.event("pool_broken", surviving_chunks=len(remaining))

    # quarantine: isolate each surviving chunk in a throwaway pool
    for index in sorted(remaining):
        chunk = remaining[index]
        if tracer is not None:
            tracer.event("quarantine_retry", index=index, runs=len(chunk))
        try:
            with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
                result = pool.submit(
                    _execute_chunk, chunk, timeout_s, engine, collect
                ).result()
        except Exception as exc:  # noqa: BLE001 — BrokenProcessPool included
            logger.error(
                "chunk %d (%d runs) killed its quarantine pool; recording "
                "crashed placeholders", index, len(chunk), exc_info=exc,
            )
            if tracer is not None:
                tracer.event(
                    "chunk_crashed", index=index, runs=len(chunk),
                    error=f"{type(exc).__name__}: {exc}",
                )
            absorb(_crashed_records(chunk, f"worker process died: {type(exc).__name__}: {exc}"))
            continue
        absorb_chunk_result(result, index)
