"""The batched execution engine: whole campaign chunks as one lockstep call.

Campaigns sweep *distributions*: hundreds of lanes that differ only in their
seeds share one ``(family, size, algorithm, scheduler, failure model,
max_steps)`` shape — the **batch key**.  :func:`run_scenarios_batched` groups
a chunk of scenario dicts by that key and executes each group as one
:class:`~repro.kernels.batch.BatchSimulator` lockstep run instead of N
per-scenario calls, amortising three costs the per-scenario kernel engine
pays per run:

* **instance/kernel construction** — for the seed-deterministic families
  (:data:`~repro.topology.generators.SEEDLESS_FAMILIES`) every replicate
  lane is the *same* instance, so one build + one kernel compile serves the
  whole batch (the per-scenario path re-derives them per run once its LRU
  cache thrashes);
* **whole-run outcomes** — only the ``random`` scheduler consumes its seed,
  and churn RNG streams derive from the scheduler seed; a lane whose result
  fields are a pure function of its batch shape is computed once and fanned
  out to every equal lane (and memoised across chunks);
* **per-run dispatch plumbing** — one deadline, one record-unpacking pass.

Exactness: every lane's record is **field-for-field identical** to the
``kernel`` engine's record for the same spec (``tests/
test_batch_engine_differential.py`` pins this across algorithms, schedulers
and churn models).  The only intentional semantic difference is the timeout
budget: a batched call shares one wall-clock deadline across its lanes
(per-run deadlines are meaningless in lockstep), and lanes deduplicated onto
one computation share that computation's fate.  Timeout records themselves
(status, partial tallies, error message) match the kernel engine exactly.

The engine registers as ``batch`` with an auto-priority *below* ``kernel``:
``engine="auto"`` keeps resolving single scenarios to the per-scenario
kernel path, and batching is requested explicitly (``repro sweep --engine
batch``), whereupon the executor groups chunks by batch key.
"""

from __future__ import annotations

import logging
import random
import time
from collections import OrderedDict
from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple, Union

from repro import telemetry as _telemetry
from repro.core.full_reversal import FullReversal
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.experiments.churn import carried_over_instance, surviving_instance_from_edges
from repro.experiments.engines import ExecutionEngine, register_engine
from repro.experiments.spec import ALGORITHM_FACTORIES, ScenarioSpec, derive_seed
from repro.kernels import (
    MASK_SCHEDULER_FACTORIES,
    KernelCache,
    RoundTally,
    SignatureSimulator,
    WorkTally,
    compile_expander,
    make_mask_scheduler,
    mask_directed_edges,
    mask_final_state_checks,
)
from repro.kernels.batch import BatchSimulator
from repro.kernels.simulator import cache_capacity_from_env
from repro.topology.generators import SEEDLESS_FAMILIES, build_family

ENGINE_BATCH = "batch"

#: Automata with a compiled signature kernel (mirrors ``compile_expander``).
_KERNEL_AUTOMATA = (
    PartialReversal,
    OneStepPartialReversal,
    NewPartialReversal,
    FullReversal,
)

#: Algorithm names with a kernel, precomputed: ``supports`` runs once per
#: lane of every batched chunk, and an ABC ``issubclass`` there is measurable
#: against the ~10µs/lane budget of a deduplicated lane.
_KERNEL_ALGORITHM_NAMES = frozenset(
    name
    for name, factory in ALGORITHM_FACTORIES.items()
    if isinstance(factory, type) and issubclass(factory, _KERNEL_AUTOMATA)
)

logger = logging.getLogger(__name__)

#: Per-process instance/kernel cache, keyed by :func:`_canonical_key` — the
#: seed-deterministic families collapse onto one entry per (family, size),
#: which is what lets ≥256 replicate lanes share a single compiled kernel.
#: Counters live in the shared ``ENGINE_METRICS`` registry as ``batch_*``.
_BATCH_CACHE = KernelCache(
    capacity=cache_capacity_from_env(),
    metrics=_telemetry.ENGINE_METRICS,
    prefix="batch_",
)

#: Per-topology bad-node counts, keyed like the batch cache.
_BAD_NODES_MEMO: Dict[Hashable, int] = {}

#: Final-state verdicts per (topology key, final mask) — a pure function of
#: the two (see the kernel engine's identical memo).
_FINAL_CHECK_MEMO: Dict[Tuple[Hashable, int], Tuple[bool, bool]] = {}

#: Whole-run outcomes per :func:`_outcome_key` — result fields of lanes whose
#: record is fully determined by their batch shape (deterministic scheduler
#: or included seeds).  Bounded like the other memos; cleared, not LRU'd.
_OUTCOME_MEMO: Dict[Hashable, Dict[str, Any]] = {}
_OUTCOME_MEMO_CAP = 1024

#: Cumulative outcome-dedup counters: a *hit* is a lane satisfied without
#: running (memo or in-batch fan-out), a *miss* is a lane actually executed.
#: Registry-backed (``batch_outcome_*`` in ``ENGINE_METRICS``);
#: :func:`batch_cache_stats` keeps the historical un-prefixed dict keys.
_OUTCOME_HITS = _telemetry.ENGINE_METRICS.counter("batch_outcome_hits")
_OUTCOME_MISSES = _telemetry.ENGINE_METRICS.counter("batch_outcome_misses")

#: Record fields that are pure run *results* (everything ``execute_scenario``
#: initialises except the volatile ``wall_time_s`` / ``engine``); exactly the
#: fields fanned out to outcome-deduplicated lanes.
_RESULT_FIELDS = (
    "status", "error", "nodes", "edges", "bad_nodes",
    "node_steps", "edge_reversals", "dummy_steps", "rounds", "steps_taken",
    "converged", "destination_oriented", "acyclic_final",
    "failures_applied", "partition_skips", "reorientations", "crashed_nodes",
)

#: Fresh-record field values, exactly ``execute_scenario``'s initialisation;
#: applied via one C-level ``dict.update`` per lane instead of 23 kwargs.
_RECORD_INIT = {
    "status": "ok", "error": None, "engine": None,
    "nodes": None, "edges": None, "bad_nodes": None,
    "node_steps": 0, "edge_reversals": 0, "dummy_steps": 0, "rounds": 0,
    "steps_taken": 0,
    "converged": False, "destination_oriented": False, "acyclic_final": False,
    "failures_applied": 0, "partition_skips": 0, "reorientations": 0,
    "crashed_nodes": 0, "wall_time_s": 0.0,
}


def batch_cache_stats() -> Dict[str, int]:
    """Cumulative batch-engine cache/dedup counters (JSON-compatible)."""
    stats = dict(_BATCH_CACHE.stats())
    stats["outcome_hits"] = _OUTCOME_HITS.value
    stats["outcome_misses"] = _OUTCOME_MISSES.value
    return stats


def set_cache_capacity(capacity: int) -> None:
    """Resize the batch engine's per-process instance/kernel cache."""
    _BATCH_CACHE.set_capacity(capacity)


def reset_batch_caches() -> None:
    """Drop every batch-engine cache and memo (counters are kept).

    Used by the benchmarks to measure cold-cache performance; production
    campaigns never need this.
    """
    _BATCH_CACHE.clear()
    _BAD_NODES_MEMO.clear()
    _FINAL_CHECK_MEMO.clear()
    _OUTCOME_MEMO.clear()


def batch_key(spec: Union[ScenarioSpec, Mapping[str, Any]]) -> Tuple[Any, ...]:
    """The lockstep-grouping key: lanes sharing it run as one batch.

    Same family/size (same signature width per topology seed), same
    algorithm and scheduler family, same failure model and step bound —
    lanes differ only in their topology/scheduler seeds and replicate index.
    Accepts a spec or its executor-shipped dict form.
    """
    if isinstance(spec, ScenarioSpec):
        return (
            spec.family, spec.size, spec.algorithm, spec.scheduler,
            spec.failure_model, spec.failure_count, spec.max_steps,
            spec.delay_model, spec.traffic,
        )
    return (
        spec["family"], spec["size"], spec["algorithm"], spec["scheduler"],
        spec["failure_model"], spec["failure_count"], spec["max_steps"],
        spec.get("delay_model"), spec.get("traffic"),
    )


def _canonical_key(spec: ScenarioSpec) -> Tuple[Any, ...]:
    """Cache key identifying the lane's *instance structure*.

    Seed-deterministic families ignore their topology seed, so every
    replicate collapses onto one key (``None`` marks the collapsed seed).
    """
    if spec.family in SEEDLESS_FAMILIES:
        return (spec.family, spec.size, None)
    return (spec.family, spec.size, spec.topology_seed)


def _outcome_key(spec: ScenarioSpec) -> Tuple[Any, ...]:
    """Key under which a lane's whole result record is deterministic.

    Includes every input the run's result can depend on: the instance
    structure, algorithm, scheduler and step bound, the churn model, and the
    seeds *only where they are consumed* — the scheduler seed feeds the RNG
    of the ``random`` scheduler and of the churn streams (failure choice and
    repair-phase scheduling both derive from it), and the topology seed
    additionally drives mobility's waypoint stream.  Every other scheduler
    ignores its seed (the mask schedulers' documented contract), so lanes
    differing only in unconsumed seeds share one outcome.
    """
    seed_sensitive = spec.scheduler == "random" or spec.failure_count > 0
    return (
        _canonical_key(spec), spec.algorithm, spec.scheduler, spec.max_steps,
        spec.failure_model, spec.failure_count,
        spec.scheduler_seed if seed_sensitive else None,
        spec.topology_seed if spec.failure_model == "mobility" else None,
    )


def _bad_node_count(key: Hashable, instance) -> int:
    count = _BAD_NODES_MEMO.get(key)
    if count is None:
        count = len(instance.bad_nodes())
        if len(_BAD_NODES_MEMO) >= 64:
            _BAD_NODES_MEMO.clear()
        _BAD_NODES_MEMO[key] = count
    return count


def _final_state_checks(key: Hashable, instance, mask: int) -> Tuple[bool, bool]:
    memo_key = (key, mask)
    verdict = _FINAL_CHECK_MEMO.get(memo_key)
    if verdict is None:
        verdict = mask_final_state_checks(instance, mask)
        if len(_FINAL_CHECK_MEMO) >= 256:
            _FINAL_CHECK_MEMO.clear()
        _FINAL_CHECK_MEMO[memo_key] = verdict
    return verdict


Lane = Tuple[ScenarioSpec, Dict[str, Any]]


def _run_lanes(lanes: List[Lane], deadline: Optional[float]) -> None:
    """Execute lanes sharing one batch key as one lockstep group.

    Mutates each lane's record in place, mirroring the kernel engine's
    ``_execute_kernel_scenario`` per lane: same cache/memo structure, same
    churn derivations, same timeout bookkeeping (a timed-out lane keeps its
    partial tallies but no final-state verdicts, and its ``steps_taken``
    excludes the aborted phase).
    """
    spec0 = lanes[0][0]
    automaton_factory = ALGORITHM_FACTORIES[spec0.algorithm]
    width = len(lanes)
    works = [WorkTally() for _ in range(width)]
    rounds = [RoundTally() for _ in range(width)]
    keys: List[Hashable] = [None] * width
    instances: List[Any] = [None] * width
    cached_instances: List[Any] = [None] * width
    sims: List[Any] = [None] * width
    masks = [0] * width
    convergeds = [False] * width
    try:
        batch = BatchSimulator()
        for pos, (spec, record) in enumerate(lanes):
            key = _canonical_key(spec)
            instance = _BATCH_CACHE.instance(
                key,
                lambda s=spec: build_family(s.family, s.size, s.topology_seed),
            )
            record.update(
                nodes=instance.node_count,
                edges=instance.edge_count,
                bad_nodes=_bad_node_count(key, instance),
            )
            simulator = _BATCH_CACHE.kernel(
                key,
                spec.algorithm,
                lambda inst=instance: SignatureSimulator(
                    compile_expander(automaton_factory(inst))
                ),
            )
            keys[pos] = key
            instances[pos] = instance
            cached_instances[pos] = instance
            sims[pos] = simulator
            batch.add_lane(
                simulator,
                make_mask_scheduler(spec.scheduler, spec.scheduler_seed),
                work=works[pos],
                rounds=rounds[pos],
            )

        outcomes = batch.run(max_steps=spec0.max_steps, deadline=deadline)
        active: List[int] = []
        for pos, outcome in enumerate(outcomes):
            record = lanes[pos][1]
            if outcome.timed_out:
                record.update(
                    status="timeout",
                    error=f"deadline exceeded at step {outcome.timeout_step}",
                )
                continue
            record["steps_taken"] += outcome.steps
            masks[pos] = sims[pos].kernel.orientation_mask(outcome.signature)
            convergeds[pos] = outcome.converged
            active.append(pos)

        if spec0.failure_model == "link-failures" and spec0.failure_count > 0:
            active = _batch_link_failures(
                lanes, active, instances, masks, convergeds,
                works, rounds, automaton_factory, deadline,
            )
        elif spec0.failure_model == "mobility" and spec0.failure_count > 0:
            active = _batch_mobility(
                lanes, active, instances, masks, convergeds,
                works, rounds, automaton_factory, deadline,
            )

        for pos in active:
            record = lanes[pos][1]
            if instances[pos] is cached_instances[pos]:
                # the memo key describes the cached topology only, never
                # churn products
                acyclic, oriented = _final_state_checks(
                    keys[pos], instances[pos], masks[pos]
                )
            else:
                acyclic, oriented = mask_final_state_checks(
                    instances[pos], masks[pos]
                )
            record.update(
                converged=convergeds[pos],
                destination_oriented=oriented,
                acyclic_final=acyclic,
            )
    finally:
        for pos, (_, record) in enumerate(lanes):
            work, tally = works[pos], rounds[pos]
            record.update(
                node_steps=work.node_steps,
                edge_reversals=work.edge_reversals,
                dummy_steps=work.dummy_steps,
                rounds=tally.rounds,
            )


def _run_churn_phase(
    lanes, phase, index, seed_label, works, rounds, automaton_factory,
    deadline, masks, convergeds, instances, max_steps,
):
    """One lockstep repair phase over ``phase``'s (pos, candidate) lanes.

    Returns the set of lane positions that timed out during the phase.
    Mirrors the kernel engine's ``_kernel_repair_phase`` bookkeeping: a
    successful lane counts the failure as applied and adds the phase steps;
    a timed-out lane keeps its partial tallies only.
    """
    batch = BatchSimulator()
    phase_sims = []
    for pos, candidate in phase:
        spec = lanes[pos][0]
        simulator = SignatureSimulator(compile_expander(automaton_factory(candidate)))
        phase_sims.append(simulator)
        batch.add_lane(
            simulator,
            make_mask_scheduler(
                spec.scheduler, derive_seed(spec.scheduler_seed, seed_label, index)
            ),
            work=works[pos],
            rounds=rounds[pos],
        )
    outcomes = batch.run(max_steps=max_steps, deadline=deadline)
    timed_out = set()
    for (pos, candidate), simulator, outcome in zip(phase, phase_sims, outcomes):
        record = lanes[pos][1]
        if outcome.timed_out:
            record.update(
                status="timeout",
                error=f"deadline exceeded at step {outcome.timeout_step}",
            )
            timed_out.add(pos)
            continue
        masks[pos] = simulator.kernel.orientation_mask(outcome.signature)
        record["failures_applied"] += 1
        record["steps_taken"] += outcome.steps
        instances[pos] = candidate
        convergeds[pos] = convergeds[pos] and outcome.converged
    return timed_out


def _batch_link_failures(
    lanes, active, instances, masks, convergeds, works, rounds,
    automaton_factory, deadline,
):
    """Lockstep twin of the kernel engine's ``_kernel_link_failures``."""
    spec0 = lanes[0][0]
    rngs = {
        pos: random.Random(derive_seed(lanes[pos][0].scheduler_seed, "failures"))
        for pos in active
    }
    looping = list(active)
    for index in range(spec0.failure_count):
        if not looping:
            break
        phase = []
        still = []
        for pos in looping:
            record = lanes[pos][1]
            instance = instances[pos]
            candidates = sorted(instance.initial_edges)
            if not candidates:
                continue  # the per-lane loop `break`: no further failures
            dropped = candidates[rngs[pos].randrange(len(candidates))]
            candidate = surviving_instance_from_edges(
                instance, mask_directed_edges(instance, masks[pos]), dropped
            )
            still.append(pos)
            if not candidate.is_connected():
                record["partition_skips"] += 1
                continue
            phase.append((pos, candidate))
        looping = still
        if not phase:
            continue
        timed_out = _run_churn_phase(
            lanes, phase, index, "repair", works, rounds, automaton_factory,
            deadline, masks, convergeds, instances, spec0.max_steps,
        )
        if timed_out:
            looping = [pos for pos in looping if pos not in timed_out]
    return [pos for pos in active if lanes[pos][1]["status"] != "timeout"]


def _batch_mobility(
    lanes, active, instances, masks, convergeds, works, rounds,
    automaton_factory, deadline,
):
    """Lockstep twin of the kernel engine's ``_kernel_mobility``."""
    from repro.topology.manet import random_geometric_instance
    from repro.topology.mobility import RandomWaypointMobility

    spec0 = lanes[0][0]
    mobilities = {}
    for pos in active:
        spec = lanes[pos][0]
        instance, network = random_geometric_instance(
            spec.size, radius=0.4, seed=spec.topology_seed
        )
        instances[pos] = instance
        mobilities[pos] = RandomWaypointMobility(
            network, seed=derive_seed(spec.topology_seed, "mobility")
        )
    looping = list(active)
    for index in range(spec0.failure_count):
        if not looping:
            break
        phase = []
        for pos in looping:
            record = lanes[pos][1]
            change = mobilities[pos].step()
            if change.is_empty:
                continue
            fresh = mobilities[pos].network.to_instance()
            if not fresh.is_connected():
                record["partition_skips"] += 1
                continue
            candidate, reoriented = carried_over_instance(
                fresh, mask_directed_edges(instances[pos], masks[pos])
            )
            if reoriented:
                record["reorientations"] += 1
            phase.append((pos, candidate))
        if not phase:
            continue
        timed_out = _run_churn_phase(
            lanes, phase, index, "churn", works, rounds, automaton_factory,
            deadline, masks, convergeds, instances, spec0.max_steps,
        )
        if timed_out:
            looping = [pos for pos in looping if pos not in timed_out]
    return [pos for pos in active if lanes[pos][1]["status"] != "timeout"]


def _execute_group(lanes: List[Lane], deadline: Optional[float]) -> None:
    """Run one batch-key group: dedup equal outcomes, lockstep the rest.

    Lanes whose :func:`_outcome_key` matches are literally the same
    computation (the key includes every consumed seed), so one leader lane
    runs and the others copy its result fields.  The cross-call memo is
    consulted/populated only for un-deadlined, successful runs, so a later
    deadlined campaign can never inherit an "ok" it might not have earned.
    """
    groups: "OrderedDict[Hashable, List[Lane]]" = OrderedDict()
    for spec, record in lanes:
        groups.setdefault(_outcome_key(spec), []).append((spec, record))
    leaders: List[Tuple[Hashable, List[Lane]]] = []
    run_list: List[Lane] = []
    for key, members in groups.items():
        memo = _OUTCOME_MEMO.get(key) if deadline is None else None
        if memo is not None:
            for _, record in members:
                record.update(memo)
            _OUTCOME_HITS.inc(len(members))
            continue
        leaders.append((key, members))
        run_list.append(members[0])
    if run_list:
        _run_lanes(run_list, deadline)
    for key, members in leaders:
        leader_record = members[0][1]
        outcome = {name: leader_record[name] for name in _RESULT_FIELDS}
        _OUTCOME_MISSES.inc()
        if len(members) > 1:
            for _, record in members[1:]:
                record.update(outcome)
            _OUTCOME_HITS.inc(len(members) - 1)
        if deadline is None and leader_record["status"] == "ok":
            if len(_OUTCOME_MEMO) >= _OUTCOME_MEMO_CAP:
                _OUTCOME_MEMO.clear()
            _OUTCOME_MEMO[key] = outcome


def run_scenarios_batched(
    specs: List[Union[ScenarioSpec, Dict[str, Any]]],
    timeout_s: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """Execute a chunk of scenario dicts as lockstep batches (worker entry).

    The batched counterpart of ``run_scenarios(..., engine="batch")``:
    groups the chunk by :func:`batch_key`, runs each group through
    :func:`_execute_group` and returns one record per spec, in input order,
    with the exact schema of ``execute_scenario``.  Specs the batch engine
    cannot run (BLL, async, invalid) get the same error records a forced
    ``engine="batch"`` per-scenario call would produce.  ``timeout_s`` is a
    *shared* budget: one deadline from call start governs every lane.
    """
    start = time.perf_counter()
    deadline = None if timeout_s is None else start + timeout_s
    records: List[Dict[str, Any]] = []
    lanes_by_key: "OrderedDict[Tuple[Any, ...], List[Lane]]" = OrderedDict()
    for raw in specs:
        if isinstance(raw, dict):
            if "run_id" in raw:
                # executor-shipped dicts come from to_dict() and carry every
                # field; positional construction skips from_dict's filtering
                # dictcomp, which showed up in batch-sweep profiles
                record = dict(raw)
                try:
                    spec = ScenarioSpec(
                        raw["family"], raw["size"], raw["algorithm"],
                        raw["scheduler"], raw["topology_seed"],
                        raw["scheduler_seed"], raw["replicate"],
                        raw["failure_model"], raw["failure_count"],
                        raw["max_steps"], raw["campaign"], raw["delay_model"],
                        raw["loss"], raw["traffic"],
                        raw.get("node_faults", 0),
                    )
                except KeyError:
                    spec = ScenarioSpec.from_dict(raw)
            else:
                spec = ScenarioSpec.from_dict(raw)
                record = spec.to_dict()
        else:
            spec = raw
            record = spec.to_dict()
        record.update(_RECORD_INIT)
        records.append(record)
        try:
            spec.validate()
            if not _ENGINE.supports(spec):
                raise ValueError(_ENGINE.unsupported_reason(spec))
        except Exception as exc:  # noqa: BLE001 — crash isolation is the contract
            record.update(status="error", error=f"{type(exc).__name__}: {exc}")
            continue
        record["engine"] = ENGINE_BATCH
        lanes_by_key.setdefault(batch_key(spec), []).append((spec, record))

    fallback_ids: set = set()
    for lanes in lanes_by_key.values():
        try:
            _execute_group(lanes, deadline)
        except Exception as exc:  # noqa: BLE001 — one bad lane must not sink the group
            from repro.experiments.runner import execute_scenario

            logger.exception(
                "batch group of %d lanes (first run %s) failed in lockstep; "
                "retrying each lane per-scenario: %s",
                len(lanes), lanes[0][1].get("run_id"), exc,
            )
            if _telemetry.ENABLED:
                _telemetry.REGISTRY.inc("batch.group_fallbacks")
            for spec, record in lanes:
                # execute_scenario counts its own telemetry, so these lanes
                # are excluded from the aggregated tally below
                solo = execute_scenario(spec, timeout_s=timeout_s, engine=ENGINE_BATCH)
                record.clear()
                record.update(solo)
                fallback_ids.add(id(record))

    elapsed = round(time.perf_counter() - start, 6)
    for record in records:
        if not record["wall_time_s"]:
            record["wall_time_s"] = elapsed
    if _telemetry.ENABLED:
        # one aggregation pass, then a handful of registry calls — per-record
        # increments would cost several percent of a 6144-lane batch call
        registry = _telemetry.REGISTRY
        engine_tallies: Dict[Tuple[str, str], int] = {}
        for record in records:
            if id(record) in fallback_ids:
                continue
            key = (record["engine"] or "none", record["status"])
            engine_tallies[key] = engine_tallies.get(key, 0) + 1
        for (engine_used, status), count in engine_tallies.items():
            registry.inc(f"scenarios.{engine_used}", count)
            registry.inc(f"scenario_status.{status}", count)
        if records:
            registry.observe("batch_call_wall_s", elapsed)
    return records


class BatchEngine(ExecutionEngine):
    """Lockstep structure-of-arrays execution of kernel-eligible scenarios.

    Supports exactly the kernel engine's spec set (synchronous, compiled
    algorithm, mask scheduler) and produces bit-identical records; priority
    sits *below* the kernel engine so ``auto`` keeps its per-scenario
    behaviour — batching pays off at campaign width and is selected
    explicitly there.
    """

    name = ENGINE_BATCH
    auto_priority = 15

    def supports(self, spec: ScenarioSpec) -> bool:
        return (
            spec.delay_model is None
            and spec.traffic is None
            and spec.node_faults == 0
            and spec.algorithm in _KERNEL_ALGORITHM_NAMES
            and spec.scheduler in MASK_SCHEDULER_FACTORIES
        )

    def unsupported_reason(self, spec: ScenarioSpec) -> str:
        if spec.delay_model is not None:
            return (
                "the batch engine runs synchronous kernel-eligible specs only "
                f"(delay_model={spec.delay_model!r}); use engine='async'"
            )
        if spec.traffic is not None:
            return (
                "the batch engine moves no packets "
                f"(traffic={spec.traffic!r}); use engine='dataplane'"
            )
        if spec.node_faults > 0:
            return (
                "the batch engine's lockstep lanes have no crash-stop support "
                f"(node_faults={spec.node_faults}); use engine='kernel' or 'async'"
            )
        return (
            f"no signature kernel for algorithm {spec.algorithm!r} "
            f"with scheduler {spec.scheduler!r}; use engine='legacy'"
        )

    def execute(self, spec, record, deadline) -> None:
        # a single-scenario call is a width-1 batch: same code path, same
        # caches and outcome memo, internally-handled timeout records
        _execute_group([(spec, record)], deadline)


_ENGINE = BatchEngine()
register_engine(_ENGINE)
