"""Sharded experiment campaigns with a persistent, resumable result store.

The paper's claims are statements over *families* of topologies and
adversarial schedules; this subpackage is the machinery that measures them at
that granularity instead of one scenario at a time:

* :mod:`repro.experiments.spec` — declarative :class:`ScenarioSpec` /
  :class:`CampaignSpec` layer; a campaign is the cross-product of topology
  families × algorithms × schedulers × sizes × seed replicates × failure
  models, expanded into a deterministic, seed-stamped run list;
* :mod:`repro.experiments.runner` — executes one scenario inside a worker
  (everything rebuilt from plain data), including link-failure and mobility
  churn phases and per-run invariant checks;
* :mod:`repro.experiments.executor` — shards the run list across a
  ``multiprocessing`` pool with chunked dispatch, cooperative per-run
  timeouts and crash isolation;
* :mod:`repro.experiments.store` — persistent results: append-only JSONL
  shards plus a consolidated SQLite index, supporting campaign resume;
* :mod:`repro.experiments.aggregate` — group-by summaries, work-vs-size
  curves with quadratic fits, and the PR-vs-FR worst-case ordering check.

The CLI surface is ``python -m repro sweep`` / ``python -m repro report``.
"""

from repro.experiments.aggregate import (
    build_report,
    group_summary,
    pr_vs_fr_ordering,
    work_curves,
)
from repro.experiments.executor import CampaignReport, run_campaign
from repro.experiments.runner import ScenarioTimeout, execute_scenario
from repro.experiments.spec import (
    ALGORITHM_FACTORIES,
    CampaignSpec,
    ScenarioSpec,
    derive_seed,
)
from repro.experiments.store import ResultStore

__all__ = [
    "ALGORITHM_FACTORIES",
    "CampaignReport",
    "CampaignSpec",
    "ResultStore",
    "ScenarioSpec",
    "ScenarioTimeout",
    "build_report",
    "derive_seed",
    "execute_scenario",
    "group_summary",
    "pr_vs_fr_ordering",
    "run_campaign",
    "work_curves",
]
