"""Sharded experiment campaigns with a persistent, resumable result store.

The paper's claims are statements over *families* of topologies and
adversarial schedules; this subpackage is the machinery that measures them at
that granularity instead of one scenario at a time:

* :mod:`repro.experiments.spec` — declarative :class:`ScenarioSpec` /
  :class:`CampaignSpec` layer; a campaign is the cross-product of topology
  families × algorithms × schedulers × sizes × seed replicates × failure
  models, expanded into a deterministic, seed-stamped run list;
* :mod:`repro.experiments.engines` — the :class:`ExecutionEngine` registry:
  the compiled signature-kernel path, the object-automaton oracle and the
  asynchronous message-passing engine are peers selected per scenario
  (``auto`` routes each spec to the best supporting engine);
* :mod:`repro.experiments.runner` — executes one scenario inside a worker
  (everything rebuilt from plain data), including link-failure and mobility
  churn phases and per-run invariant checks;
* :mod:`repro.experiments.async_engine` — the ``async`` engine: delay-model ×
  loss × churn scenarios on the compiled
  :class:`~repro.distributed.fast_network.FastAsyncNetwork`;
* :mod:`repro.experiments.executor` — shards the run list across a
  ``multiprocessing`` pool with chunked dispatch, cooperative per-run
  timeouts and crash isolation;
* :mod:`repro.experiments.store` — persistent results: append-only JSONL
  shards plus a consolidated SQLite index, supporting campaign resume;
* :mod:`repro.experiments.aggregate` — group-by summaries, work-vs-size
  curves with quadratic fits, and the PR-vs-FR worst-case ordering check.

The CLI surface is ``python -m repro sweep`` / ``python -m repro report``.
"""

from repro.experiments.aggregate import (
    async_summary,
    build_report,
    group_summary,
    pr_vs_fr_ordering,
    work_curves,
)
from repro.experiments.engines import (
    ENGINE_REGISTRY,
    ExecutionEngine,
    engine_names,
    get_engine,
    register_engine,
)
from repro.experiments.executor import CampaignReport, run_campaign
from repro.experiments.runner import ScenarioTimeout, execute_scenario, resolve_engine
from repro.experiments.spec import (
    ALGORITHM_FACTORIES,
    CampaignSpec,
    ScenarioSpec,
    derive_seed,
)
from repro.experiments.store import ResultStore

__all__ = [
    "ALGORITHM_FACTORIES",
    "CampaignReport",
    "CampaignSpec",
    "ENGINE_REGISTRY",
    "ExecutionEngine",
    "ResultStore",
    "ScenarioSpec",
    "ScenarioTimeout",
    "async_summary",
    "build_report",
    "derive_seed",
    "engine_names",
    "execute_scenario",
    "get_engine",
    "group_summary",
    "pr_vs_fr_ordering",
    "register_engine",
    "resolve_engine",
    "run_campaign",
    "work_curves",
]
