"""Instance re-packing helpers shared by the churn-capable engines.

Link-failure and mobility churn both rebuild a ``LinkReversalInstance``
mid-scenario while carrying the current edge orientations over; the legacy,
kernel and batch engines all agree on this re-packing byte for byte, so the
logic lives here once.  (Moved out of :mod:`repro.experiments.runner` when
the batch engine arrived — the engines import it without importing each
other.)
"""

from __future__ import annotations

from typing import Hashable, Sequence, Tuple

from repro.core.graph import DirectedEdge, LinkReversalInstance

Node = Hashable


def surviving_instance_from_edges(
    instance: LinkReversalInstance,
    directed_edges: Sequence[DirectedEdge],
    dropped_link: Tuple[Node, Node],
) -> LinkReversalInstance:
    """The instance left after removing one undirected link, keeping orientations."""
    dropped = frozenset(dropped_link)
    surviving = tuple(
        (tail, head)
        for tail, head in directed_edges
        if frozenset((tail, head)) != dropped
    )
    return LinkReversalInstance(instance.nodes, instance.destination, surviving)


def carried_over_instance(
    fresh: LinkReversalInstance, directed_edges: Sequence[DirectedEdge]
) -> Tuple[LinkReversalInstance, bool]:
    """Re-pack a churned instance, carrying surviving edge orientations over.

    Surviving links keep their current direction; new links take ``fresh``'s
    (distance-towards-destination) direction.  When the carried orientation
    would contain a cycle the fresh instance is used instead; the second
    return value flags that reorientation.
    """
    surviving = {
        frozenset(edge): edge
        for edge in directed_edges
        if frozenset(edge) in fresh.undirected_edges
    }
    edges = tuple(
        surviving.get(frozenset(edge), edge) for edge in fresh.initial_edges
    )
    candidate = LinkReversalInstance(fresh.nodes, fresh.destination, edges)
    if candidate.is_initially_acyclic():
        return candidate, False
    return fresh, True
