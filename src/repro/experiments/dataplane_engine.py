"""The data-plane campaign engine: packet traffic over a live routed DAG.

Registers the ``dataplane`` :class:`~repro.experiments.engines.
ExecutionEngine`: a :class:`~repro.experiments.spec.ScenarioSpec` with a
``traffic`` model runs a :class:`~repro.dataplane.run.DataPlaneRun` — a
structure-of-arrays packet simulator (per-directed-link ring buffers,
slotted capacity, FIFO queues, tail drops, TTL expiry) forwarding over
next-hop tables patched incrementally from a live
:class:`~repro.distributed.fast_network.FastAsyncNetwork` control plane.

Phases per scenario:

1. **converge** — the control plane runs to quiescence (beacon rounds when
   lossy) so measured latency/stretch reflects a routed DAG, not initial
   convergence;
2. **inject** — ``max_steps`` slots (default :data:`DEFAULT_SLOTS`) of
   seeded Poisson arrivals; under ``link-failures`` churn the seeded
   failures land at evenly spaced slots *mid-injection*, so reversal
   cascades rewrite the DAG under in-flight packets;
3. **drain** — injection stops and queues empty (bounded by
   :data:`DRAIN_SLOTS`), so the conservation invariant
   ``injected == delivered + dropped + in_flight`` is reported with the
   smallest possible in-flight remainder.

Record schema additions (all flushed even on deadline timeouts): the
``packets_*`` totals, per-cause drop counters, ``transient_loops``,
``peak_queue_depth``, ``slots``, and the derived ``mean_latency_slots`` /
``max_latency_slots`` / ``mean_hops`` / ``mean_stretch``.

Seed scheme: channel randomness derives from ``spec.topology_seed`` (paired
across algorithms of a replicate, like the async engine), traffic arrivals
from ``(topology_seed, "traffic")``, failure injection from
``(scheduler_seed, "failures")`` — the synchronous engines' churn
discipline.
"""

from __future__ import annotations

import logging
import random
from typing import Dict, Optional

from repro import telemetry as _telemetry
from repro.dataplane.packets import numpy_available
from repro.dataplane.run import DataPlaneRun
from repro.dataplane.traffic import TRAFFIC_MODEL_NAMES
from repro.distributed.network import DELAY_MODELS
from repro.experiments.async_engine import (
    ASYNC_FAILURE_MODELS,
    ASYNC_MODES,
    DEFAULT_MAX_EVENTS,
    _run_phase,
)
from repro.experiments.engines import ExecutionEngine, register_engine
from repro.experiments.spec import ScenarioSpec, derive_seed
from repro.kernels import KernelCache
from repro.kernels.simulator import cache_capacity_from_env
from repro.topology.generators import build_family

#: Injection slots when the spec does not set ``max_steps``.
DEFAULT_SLOTS = 512

#: Hard bound on post-injection drain slots (drain also stops the moment
#: every queue is empty).
DRAIN_SLOTS = 512

#: Control-plane delay model used when the spec leaves ``delay_model`` unset.
DEFAULT_DELAY_MODEL = "fixed"

logger = logging.getLogger(__name__)

#: Per-process instance cache (same shape as the async engine's); counters
#: live in the shared ``ENGINE_METRICS`` registry as ``dataplane_*``.
_INSTANCE_CACHE = KernelCache(
    capacity=cache_capacity_from_env(),
    metrics=_telemetry.ENGINE_METRICS,
    prefix="dataplane_",
)


def set_cache_capacity(capacity: int) -> None:
    """Resize the dataplane engine's per-process instance cache."""
    _INSTANCE_CACHE.set_capacity(capacity)


def instance_cache_stats() -> Dict[str, int]:
    """Cumulative counters of this process's dataplane instance cache."""
    return _INSTANCE_CACHE.stats()


def _zeroed_packet_fields() -> Dict[str, object]:
    """The packet columns, zeroed, so even an early failure reports them."""
    return {
        "slots": 0,
        "packets_injected": 0,
        "packets_delivered": 0,
        "packets_dropped": 0,
        "packets_in_flight": 0,
        "drop_tail": 0,
        "drop_ttl": 0,
        "drop_no_route": 0,
        "drop_link_down": 0,
        "transient_loops": 0,
        "peak_queue_depth": 0,
        "mean_latency_slots": None,
        "max_latency_slots": None,
        "mean_hops": None,
        "mean_stretch": None,
    }


class DataPlaneEngine(ExecutionEngine):
    """Packet forwarding over a churning link-reversal control plane."""

    name = "dataplane"
    #: outranks even the async engine: a spec with a traffic model is a
    #: data-plane scenario whatever its delay model says
    auto_priority = 40

    def supports(self, spec: ScenarioSpec) -> bool:
        return (
            spec.traffic is not None
            and spec.node_faults == 0
            and numpy_available()
            and spec.algorithm in ASYNC_MODES
            and spec.failure_model in ASYNC_FAILURE_MODELS
        )

    def unsupported_reason(self, spec: ScenarioSpec) -> str:
        if spec.traffic is None:
            return (
                "the dataplane engine needs a traffic model on the spec "
                f"(choose from {', '.join(TRAFFIC_MODEL_NAMES)})"
            )
        if spec.node_faults > 0:
            return (
                "the dataplane engine routes packets through live nodes only "
                f"(node_faults={spec.node_faults}); drop the traffic model and "
                "use engine='kernel' or 'async'"
            )
        if not numpy_available():
            return "the dataplane engine requires numpy"
        if spec.algorithm not in ASYNC_MODES:
            return (
                f"no height-based message-passing protocol for algorithm "
                f"{spec.algorithm!r}; the dataplane engine supports "
                f"{', '.join(sorted(ASYNC_MODES))}"
            )
        return (
            f"the dataplane engine does not support the {spec.failure_model!r} "
            f"churn model; choose from {', '.join(ASYNC_FAILURE_MODELS)}"
        )

    def execute(self, spec, record, deadline) -> None:
        record.update(_zeroed_packet_fields())
        run: Optional[DataPlaneRun] = None
        try:
            cache_key = (spec.family, spec.size, spec.topology_seed)
            instance = _INSTANCE_CACHE.instance(
                cache_key,
                lambda: build_family(spec.family, spec.size, spec.topology_seed),
            )
            record.update(
                nodes=instance.node_count,
                edges=instance.edge_count,
                bad_nodes=len(instance.bad_nodes()),
            )
            delay_model = spec.delay_model or DEFAULT_DELAY_MODEL
            run = DataPlaneRun(
                instance,
                mode=ASYNC_MODES[spec.algorithm],
                traffic=spec.traffic,
                delay_model=delay_model,
                loss=spec.loss,
                channel_seed=derive_seed(spec.topology_seed, "async-channels"),
                traffic_seed=derive_seed(spec.topology_seed, "traffic"),
            )
            max_events = DEFAULT_MAX_EVENTS
            # Phase 1: converge the control plane so the traffic phase
            # measures a routed DAG disrupted by churn, not initial
            # convergence.
            _, converged = _run_phase(run.network, spec.loss, max_events, deadline)
            # The patch cache only diffs inside step_slot; pick up the
            # convergence phase's height changes before injecting.
            run._advance_control(deadline)

            slots = spec.max_steps or DEFAULT_SLOTS
            failure_plan: Optional[Dict[int, int]] = None
            fail_hook = None
            if spec.failure_model == "link-failures" and spec.failure_count > 0:
                # Seeded failures land at evenly spaced slots mid-injection,
                # so reversal cascades rewrite the DAG under live packets.
                failure_plan = {}
                for i in range(spec.failure_count):
                    slot = (i + 1) * slots // (spec.failure_count + 1)
                    failure_plan[slot] = failure_plan.get(slot, 0) + 1
                rng = random.Random(derive_seed(spec.scheduler_seed, "failures"))
                fail_hook = self._make_fail_hook(run, rng, record)

            run.run(
                slots,
                drain_slots=DRAIN_SLOTS,
                deadline=deadline,
                failure_plan=failure_plan,
                fail_hook=fail_hook,
            )
            network = run.network
            oriented = network.is_destination_oriented()
            record.update(
                converged=converged and network.quiescent() and oriented,
                destination_oriented=oriented,
                acyclic_final=network.is_acyclic(),
            )
        finally:
            # flush whatever happened, so timeouts keep their partial work
            if run is not None:
                network = run.network
                sent, delivered, lost = network.message_counts()
                record.update(
                    node_steps=network.total_reversals(),
                    steps_taken=network.total_reversals(),
                    edge_reversals=network.edge_flips,
                    dummy_steps=network.dummy_reversals,
                    rounds=network.beacon_rounds,
                    messages_sent=sent,
                    messages_delivered=delivered,
                    messages_lost=lost,
                    simulated_time=round(network.now, 6),
                    events_dispatched=network.events_dispatched,
                )
                record.update(run.sim.counters())
                self._report_telemetry(run)

    # ------------------------------------------------------------------
    @staticmethod
    def _make_fail_hook(run: DataPlaneRun, rng, record):
        def fail(count: int) -> None:
            network = run.network
            for _ in range(count):
                candidates = network.sorted_link_pairs()
                if not candidates:
                    return
                u, v = candidates[rng.randrange(len(candidates))]
                if network.link_would_partition(u, v):
                    record["partition_skips"] += 1
                    logger.debug(
                        "run %s: skipping failure of link (%s, %s) — would "
                        "partition the network", record.get("run_id"), u, v,
                    )
                    continue
                run.fail_link(u, v)
                record["failures_applied"] += 1

        return fail

    @staticmethod
    def _report_telemetry(run: DataPlaneRun) -> None:
        if not _telemetry.ENABLED:
            return
        registry = _telemetry.REGISTRY
        sim = run.sim
        registry.inc("dataplane.packets_injected", sim.injected)
        registry.inc("dataplane.packets_delivered", sim.delivered)
        registry.inc("dataplane.packets_forwarded", sim.forwarded)
        registry.inc("dataplane.drop_tail", sim.drop_tail)
        registry.inc("dataplane.drop_ttl", sim.drop_ttl)
        registry.inc("dataplane.drop_no_route", sim.drop_no_route)
        registry.inc("dataplane.drop_link_down", sim.drop_link_down)
        registry.inc("dataplane.transient_loops", sim.loop_bounces)
        registry.inc("dataplane.repatched_nodes", run.repatched_nodes)
        registry.max_gauge("dataplane.peak_queue_depth", sim.peak_queue_depth)
        if sim.delivered:
            # Inject the streaming latency moments as a histogram merge —
            # same shape a pooled worker's snapshot would carry.
            registry.merge(
                {
                    "histograms": {
                        "dataplane.latency_slots": {
                            "count": sim.delivered,
                            "total": sim.latency_total,
                            "min": sim.latency_min,
                            "max": sim.latency_max,
                        }
                    }
                }
            )


register_engine(DataPlaneEngine())
