"""Worker-side execution of one scenario.

:func:`execute_scenario` is the function the sharded executor ships to its
worker pool.  It takes a :class:`~repro.experiments.spec.ScenarioSpec` (or its
plain-dict form — the only thing that actually crosses the process boundary),
rebuilds the instance locally, runs the scenario to quiescence and returns a
flat, JSON-compatible result record.

Two execution engines, selected by the ``engine`` argument:

``kernel`` (the fast path)
    The scenario runs on the compiled int kernels of :mod:`repro.kernels`:
    scheduler decisions, convergence detection, work/round accounting and
    the churn phases all operate on int signatures — no automaton state is
    ever materialised.  Available when the algorithm has a compiled kernel
    (PR, OneStepPR, NewPR, FR) *and* the scheduler has a mask-level twin
    (every registry scheduler does).
``legacy`` (the oracle and fallback)
    The original object path: :func:`repro.automata.executions.run` over the
    I/O automaton with per-step observers.  BLL (and any future automaton
    without a kernel) always runs here.  The differential test suite pins
    the two engines to field-for-field identical records, which is what
    makes the kernel path trustworthy.

``engine="auto"`` (the default) picks ``kernel`` whenever the spec supports
it.  Per-process :class:`~repro.kernels.simulator.KernelCache` amortises
topology construction and kernel compilation across the scenarios of a
worker chunk (campaign cells share paired topology seeds by design).

Three execution modes, selected by ``spec.failure_model``:

``none``
    Run the algorithm from the initial orientation to quiescence.
``link-failures``
    Converge first, then inject ``failure_count`` random link failures one at
    a time; after each, the algorithm repairs from the surviving orientation
    (the abstraction level of :func:`repro.routing.maintenance.repair_with_automaton`).
    Failures that would partition the network are skipped and counted.
``mobility``
    (geometric family only) Converge, then advance a random-waypoint mobility
    model ``failure_count`` steps; after each step with link churn the
    instance is rebuilt — surviving links keep their orientation, new links
    are oriented towards the destination-closer endpoint — and the algorithm
    re-converges.  If carrying the orientation over would create a cycle the
    run falls back to a fresh distance-oriented DAG (counted as a
    reorientation).

Work counters accumulate across the convergence and every repair phase, so
``node_steps`` is the total work of the whole scenario.  A cooperative
per-run timeout is enforced by checking the wall clock every
:data:`~repro.kernels.simulator.DEADLINE_CHECK_STRIDE` automaton steps
(always including the first, so an already-expired budget aborts
immediately) and recording the run with status ``"timeout"``.
"""

from __future__ import annotations

import logging
import random
import time
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple, Union

from repro import telemetry as _telemetry

from repro.analysis.work import WorkObserver
from repro.automata.executions import run
from repro.core.full_reversal import FullReversal
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.experiments.churn import (
    carried_over_instance,
    surviving_instance_from_edges,
)
from repro.experiments.engines import (
    ENGINE_AUTO,
    ExecutionEngine,
    engine_names,
    get_engine,
    register_engine,
)
from repro.experiments.engines import resolve_engine as _registry_resolve_engine
from repro.experiments.spec import ALGORITHM_FACTORIES, ScenarioSpec, derive_seed
from repro.kernels import (
    MASK_SCHEDULER_FACTORIES,
    KernelCache,
    RoundTally,
    SignatureSimulator,
    WorkTally,
    compile_expander,
    make_mask_scheduler,
    mask_directed_edges,
)
from repro.kernels.signature import mask_final_state_checks
from repro.kernels.simulator import (
    DEADLINE_CHECK_STRIDE,
    DeadlineExceeded,
    cache_capacity_from_env,
)
from repro.schedulers import make_scheduler
from repro.topology.generators import build_family
from repro.verification.acyclicity import is_acyclic

logger = logging.getLogger(__name__)

Node = Hashable

#: Canonical engine names (the registry at the bottom of this module and
#: :mod:`repro.experiments.async_engine` populate the actual instances).
ENGINE_KERNEL = "kernel"
ENGINE_LEGACY = "legacy"
ENGINE_ASYNC = "async"
ENGINE_BATCH = "batch"
ENGINE_DATAPLANE = "dataplane"

#: Automata with a compiled signature kernel (mirrors ``compile_expander``).
_KERNEL_AUTOMATA = (
    PartialReversal,
    OneStepPartialReversal,
    NewPartialReversal,
    FullReversal,
)

#: Per-process cache of instances and compiled kernels (see KernelCache).
#: Sized to hold a full campaign axis sweep's worth of topologies (families ×
#: sizes × replicates regularly reaches several dozen distinct instances);
#: the ``REPRO_KERNEL_CACHE_CAPACITY`` environment variable overrides it.
#: Counters live in the always-on ``ENGINE_METRICS`` registry under
#: ``kernel_``-prefixed names; :func:`kernel_cache_stats` is the
#: compatibility view over them.
_KERNEL_CACHE = KernelCache(
    capacity=cache_capacity_from_env(),
    metrics=_telemetry.ENGINE_METRICS,
    prefix="kernel_",
)


def configure_kernel_cache(capacity: int) -> None:
    """Resize every per-process engine cache (kernel, async, batch, dataplane).

    The programmatic twin of the ``REPRO_KERNEL_CACHE_CAPACITY`` environment
    variable; shrinking evicts least-recently-used entries immediately.
    """
    import repro.experiments.async_engine as _async_engine
    import repro.experiments.batch_engine as _batch_engine
    import repro.experiments.dataplane_engine as _dataplane_engine

    _KERNEL_CACHE.set_capacity(capacity)
    _async_engine.set_cache_capacity(capacity)
    _batch_engine.set_cache_capacity(capacity)
    _dataplane_engine.set_cache_capacity(capacity)

#: Per-topology bad-node counts (instance-level, so shared across every
#: algorithm/scheduler cell of a replicate), keyed like the kernel cache.
_BAD_NODES_MEMO: Dict[Tuple[str, int, int], int] = {}


def _bad_node_count(cache_key: Tuple[str, int, int], instance) -> int:
    count = _BAD_NODES_MEMO.get(cache_key)
    if count is None:
        count = len(instance.bad_nodes())
        if len(_BAD_NODES_MEMO) >= 64:
            _BAD_NODES_MEMO.clear()
        _BAD_NODES_MEMO[cache_key] = count
    return count


#: Final-state verdicts per (topology key, final mask) — a pure function of
#: the two, and by confluence every scheduler drives an algorithm on one
#: topology to the same final orientation, so campaign cells hit constantly.
_FINAL_CHECK_MEMO: Dict[Tuple[Tuple[str, int, int], int], Tuple[bool, bool]] = {}


def _final_state_checks(cache_key, instance, mask: int) -> Tuple[bool, bool]:
    memo_key = (cache_key, mask)
    verdict = _FINAL_CHECK_MEMO.get(memo_key)
    if verdict is None:
        verdict = mask_final_state_checks(instance, mask)
        if len(_FINAL_CHECK_MEMO) >= 256:
            _FINAL_CHECK_MEMO.clear()
        _FINAL_CHECK_MEMO[memo_key] = verdict
    return verdict


def kernel_cache_stats() -> Dict[str, int]:
    """Cumulative cache counters of this process's per-engine caches.

    The kernel engine's instance/kernel cache plus (``async_``-prefixed) the
    async engine's instance cache, (``batch_``-prefixed) the batch engine's
    cache and outcome-dedup counters, and (``dataplane_``-prefixed) the
    dataplane engine's instance cache, so ``repro sweep --json`` surfaces
    cache behaviour whichever engine a campaign ran on.
    """
    from repro.experiments.async_engine import instance_cache_stats
    from repro.experiments.batch_engine import batch_cache_stats
    from repro.experiments.dataplane_engine import (
        instance_cache_stats as dataplane_cache_stats,
    )

    stats = dict(_KERNEL_CACHE.stats())
    for name, value in instance_cache_stats().items():
        if name.startswith("instance"):
            stats[f"async_{name}"] = value
    for name, value in batch_cache_stats().items():
        stats[f"batch_{name}"] = value
    for name, value in dataplane_cache_stats().items():
        if name.startswith("instance"):
            stats[f"dataplane_{name}"] = value
    return stats


def algorithm_has_kernel(algorithm: str) -> bool:
    """Whether the named algorithm compiles to a signature kernel."""
    factory = ALGORITHM_FACTORIES.get(algorithm)
    return isinstance(factory, type) and issubclass(factory, _KERNEL_AUTOMATA)


def resolve_engine(engine: str, spec: ScenarioSpec) -> str:
    """The engine name a spec will actually run on.

    Delegates to the engine registry: ``"auto"`` picks the highest-priority
    supporting engine (async for delay-model specs, else kernel, else the
    legacy fallback); an explicit engine request on an unsupported spec
    raises instead of silently changing semantics.
    """
    return _registry_resolve_engine(engine, spec)


class ScenarioTimeout(DeadlineExceeded):
    """Raised by the deadline observer when a run exceeds its time budget."""


class _DeadlineObserver:
    """Aborts a run when the wall clock passes ``deadline`` (cooperative).

    The clock is read every ``stride`` steps — always including the first
    observed step, so an already-expired deadline aborts immediately — not
    every step: ``time.perf_counter()`` per step used to dominate short
    automaton steps.  A run may overshoot its budget by at most
    ``stride - 1`` steps.
    """

    def __init__(self, deadline: float, stride: int = DEADLINE_CHECK_STRIDE):
        self.deadline = deadline
        self.stride = stride
        self._countdown = 0

    def __call__(self, step_index, pre_state, action, post_state) -> None:
        self._countdown -= 1
        if self._countdown < 0:
            self._countdown = self.stride - 1
            if time.perf_counter() > self.deadline:
                raise ScenarioTimeout(f"deadline exceeded at step {step_index}")


class _RoundObserver:
    """Counts greedy-style rounds: a round ends when an actor steps again.

    This gives a scheduler-independent notion of "rounds" — the minimum number
    of synchronous phases the observed step sequence could be folded into,
    counting a new phase whenever a node takes its second step since the
    phase began.  (:class:`repro.kernels.simulator.RoundTally` is the
    mask-level twin of this rule.)
    """

    def __init__(self) -> None:
        self.rounds = 0
        self._seen: set = set()

    def __call__(self, step_index, pre_state, action, post_state) -> None:
        actors = action.actors()
        if self.rounds == 0:
            self.rounds = 1
        if any(a in self._seen for a in actors):
            self.rounds += 1
            self._seen = set(actors)
        else:
            self._seen.update(actors)


# the churn re-packing helpers live in repro.experiments.churn (shared with
# the batch engine); the private names remain for in-module readers
_surviving_instance_from_edges = surviving_instance_from_edges
_carried_over_instance = carried_over_instance


def _converge(automaton_factory, instance, scheduler, observers, max_steps):
    """Run one convergence phase and return its ExecutionResult."""
    automaton = automaton_factory(instance)
    return run(
        automaton, scheduler, max_steps=max_steps, observers=observers, record_states=False
    )


def execute_scenario(
    spec: Union[ScenarioSpec, Dict[str, Any]],
    timeout_s: Optional[float] = None,
    engine: str = ENGINE_AUTO,
) -> Dict[str, Any]:
    """Execute one scenario and return its flat result record.

    Never raises for per-run problems: failures are reported through the
    record's ``status`` field (``ok`` / ``timeout`` / ``error``) so one bad
    run cannot take down a whole campaign shard.  The record's ``engine``
    field says which execution path produced it (``None`` when the run
    failed before an engine was selected).
    """
    if isinstance(spec, dict):
        # an executor-shipped dict is exactly spec.to_dict() output: reuse it
        # instead of re-deriving the content-hash run_id per run
        record: Dict[str, Any] = (
            dict(spec) if "run_id" in spec else ScenarioSpec.from_dict(spec).to_dict()
        )
        spec = ScenarioSpec.from_dict(spec)
    else:
        record = spec.to_dict()
    record.update(
        status="ok", error=None, engine=None,
        nodes=None, edges=None, bad_nodes=None,
        node_steps=0, edge_reversals=0, dummy_steps=0, rounds=0, steps_taken=0,
        converged=False, destination_oriented=False, acyclic_final=False,
        failures_applied=0, partition_skips=0, reorientations=0,
        crashed_nodes=0, wall_time_s=0.0,
    )

    start = time.perf_counter()
    deadline = None if timeout_s is None else start + timeout_s

    try:
        spec.validate()
        chosen = get_engine(resolve_engine(engine, spec))
        record["engine"] = chosen.name
        chosen.execute(spec, record, deadline)
    except DeadlineExceeded as exc:
        record.update(status="timeout", error=str(exc))
    except Exception as exc:  # noqa: BLE001 — crash isolation is the contract
        record.update(status="error", error=f"{type(exc).__name__}: {exc}")
        logger.debug(
            "scenario %s failed on engine %s", record.get("run_id"),
            record.get("engine"), exc_info=exc,
        )

    record["wall_time_s"] = wall_s = round(time.perf_counter() - start, 6)
    if _telemetry.ENABLED:
        registry = _telemetry.REGISTRY
        engine_used = record["engine"] or "none"
        registry.inc(f"scenarios.{engine_used}")
        registry.inc(f"scenario_status.{record['status']}")
        registry.observe(f"scenario_wall_s.{engine_used}", wall_s)
    return record


# ----------------------------------------------------------------------
# kernel engine (the fast path)
# ----------------------------------------------------------------------
def _compiled_simulator(automaton_factory, instance) -> SignatureSimulator:
    """A fresh simulator over a just-compiled kernel (churn-phase instances)."""
    kernel = compile_expander(automaton_factory(instance))
    if kernel is None:  # pragma: no cover — guarded by resolve_engine
        raise ValueError(f"automaton {automaton_factory!r} has no kernel")
    return SignatureSimulator(kernel)


def _execute_kernel_scenario(spec, record, work, rounds, deadline) -> None:
    """Run one scenario entirely on the compiled int kernels."""
    cache_key = (spec.family, spec.size, spec.topology_seed)
    instance = _KERNEL_CACHE.instance(
        cache_key, lambda: build_family(spec.family, spec.size, spec.topology_seed)
    )
    record.update(
        nodes=instance.node_count,
        edges=instance.edge_count,
        bad_nodes=_bad_node_count(cache_key, instance),
    )
    automaton_factory = ALGORITHM_FACTORIES[spec.algorithm]
    # the cache holds whole simulators: their id tables are per-instance
    # setup just like the kernel tables, and they carry no run state
    simulator = _KERNEL_CACHE.kernel(
        cache_key,
        spec.algorithm,
        lambda: SignatureSimulator(compile_expander(automaton_factory(instance))),
    )
    kernel = simulator.kernel
    cached_instance = instance
    scheduler = make_mask_scheduler(spec.scheduler, spec.scheduler_seed)
    dead_ids = None
    max_steps = spec.max_steps
    if spec.node_faults > 0:
        from repro.faults.nodes import select_crashed_ids

        dead_ids = select_crashed_ids(
            instance.node_count,
            instance._node_id[instance.destination],
            spec.node_faults,
            spec.topology_seed,
        )
        record["crashed_nodes"] = len(dead_ids)
        if max_steps is None:
            # crash-stopped nodes can cut the destination off, making heights
            # grow without bound — a faulted run needs a finite step budget
            max_steps = 100 * instance.node_count * instance.node_count
    outcome = simulator.run_phase(
        scheduler, max_steps=max_steps, work=work, rounds=rounds,
        deadline=deadline, dead_ids=dead_ids,
    )
    record["steps_taken"] += outcome.steps
    converged = outcome.converged
    mask = kernel.orientation_mask(outcome.signature)

    if spec.failure_model == "link-failures" and spec.failure_count > 0:
        instance, mask, converged = _kernel_link_failures(
            spec, instance, mask, converged, automaton_factory,
            work, rounds, deadline, record,
        )
    elif spec.failure_model == "mobility" and spec.failure_count > 0:
        instance, mask, converged = _kernel_mobility(
            spec, mask, converged, automaton_factory, work, rounds, deadline, record
        )

    if instance is cached_instance:
        # the memo key describes the cached topology only, not churn products
        acyclic, destination_oriented = _final_state_checks(cache_key, instance, mask)
    else:
        acyclic, destination_oriented = mask_final_state_checks(instance, mask)
    record.update(
        converged=converged,
        destination_oriented=destination_oriented,
        acyclic_final=acyclic,
    )


def _kernel_repair_phase(
    spec, automaton_factory, candidate, phase_seed, work, rounds, deadline
):
    """One churn repair phase on a freshly packed instance; returns (mask, converged, steps)."""
    simulator = _compiled_simulator(automaton_factory, candidate)
    scheduler = make_mask_scheduler(spec.scheduler, phase_seed)
    outcome = simulator.run_phase(
        scheduler, max_steps=spec.max_steps, work=work, rounds=rounds, deadline=deadline
    )
    mask = simulator.kernel.orientation_mask(outcome.signature)
    return mask, outcome.converged, outcome.steps


def _kernel_link_failures(
    spec, instance, mask, converged, automaton_factory, work, rounds, deadline, record
):
    """Mask-level twin of :func:`_run_link_failures` (same RNG consumption)."""
    rng = random.Random(derive_seed(spec.scheduler_seed, "failures"))
    for index in range(spec.failure_count):
        candidates = sorted(instance.initial_edges)
        if not candidates:
            break
        dropped = candidates[rng.randrange(len(candidates))]
        candidate = _surviving_instance_from_edges(
            instance, mask_directed_edges(instance, mask), dropped
        )
        if not candidate.is_connected():
            record["partition_skips"] += 1
            continue
        mask, phase_converged, steps = _kernel_repair_phase(
            spec, automaton_factory, candidate,
            derive_seed(spec.scheduler_seed, "repair", index),
            work, rounds, deadline,
        )
        record["failures_applied"] += 1
        record["steps_taken"] += steps
        instance = candidate
        converged = converged and phase_converged
    return instance, mask, converged


def _kernel_mobility(
    spec, mask, converged, automaton_factory, work, rounds, deadline, record
):
    """Mask-level twin of :func:`_run_mobility` (same churn decisions)."""
    from repro.topology.manet import random_geometric_instance
    from repro.topology.mobility import RandomWaypointMobility

    instance, network = random_geometric_instance(
        spec.size, radius=0.4, seed=spec.topology_seed
    )
    mobility = RandomWaypointMobility(
        network, seed=derive_seed(spec.topology_seed, "mobility")
    )
    for index in range(spec.failure_count):
        change = mobility.step()
        if change.is_empty:
            continue
        fresh = mobility.network.to_instance()
        if not fresh.is_connected():
            record["partition_skips"] += 1
            continue
        candidate, reoriented = _carried_over_instance(
            fresh, mask_directed_edges(instance, mask)
        )
        if reoriented:
            record["reorientations"] += 1
        mask, phase_converged, steps = _kernel_repair_phase(
            spec, automaton_factory, candidate,
            derive_seed(spec.scheduler_seed, "churn", index),
            work, rounds, deadline,
        )
        record["failures_applied"] += 1
        record["steps_taken"] += steps
        instance = candidate
        converged = converged and phase_converged
    return instance, mask, converged


# ----------------------------------------------------------------------
# legacy engine (the object-path oracle and BLL fallback)
# ----------------------------------------------------------------------
def _execute_legacy_scenario(spec, record, work, rounds, deadline) -> None:
    """Run one scenario through the object-level automaton path."""
    observers: Tuple[Any, ...] = (work, rounds)
    if deadline is not None:
        observers = observers + (_DeadlineObserver(deadline),)

    cache_key = (spec.family, spec.size, spec.topology_seed)
    instance = _KERNEL_CACHE.instance(
        cache_key, lambda: build_family(spec.family, spec.size, spec.topology_seed)
    )
    record.update(
        nodes=instance.node_count,
        edges=instance.edge_count,
        bad_nodes=_bad_node_count(cache_key, instance),
    )
    automaton_factory = ALGORITHM_FACTORIES[spec.algorithm]
    scheduler = make_scheduler(spec.scheduler, spec.scheduler_seed)

    result = _converge(automaton_factory, instance, scheduler, observers, spec.max_steps)
    record["steps_taken"] += result.steps_taken
    final_state = result.final_state
    converged = result.converged

    if spec.failure_model == "link-failures" and spec.failure_count > 0:
        instance, final_state, converged = _run_link_failures(
            spec, instance, final_state, converged, automaton_factory, observers, record
        )
    elif spec.failure_model == "mobility" and spec.failure_count > 0:
        instance, final_state, converged = _run_mobility(
            spec, automaton_factory, observers, record, final_state, converged
        )

    record.update(
        converged=converged,
        destination_oriented=bool(final_state.is_destination_oriented()),
        acyclic_final=bool(is_acyclic(final_state)),
    )


def _run_link_failures(spec, instance, final_state, converged, automaton_factory, observers, record):
    """Inject random link failures and repair after each; returns the end state.

    ``converged`` stays ``True`` only if the initial convergence *and* every
    repair phase reached quiescence (a truncated phase must not be recorded
    as converged).
    """
    rng = random.Random(derive_seed(spec.scheduler_seed, "failures"))
    orientation = _orientation_of(final_state)
    for index in range(spec.failure_count):
        candidates = sorted(instance.initial_edges)
        if not candidates:
            break
        dropped = candidates[rng.randrange(len(candidates))]
        candidate = _surviving_instance_from_edges(
            instance, orientation.directed_edges(), dropped
        )
        if not candidate.is_connected():
            record["partition_skips"] += 1
            continue
        scheduler = make_scheduler(
            spec.scheduler, derive_seed(spec.scheduler_seed, "repair", index)
        )
        result = _converge(automaton_factory, candidate, scheduler, observers, spec.max_steps)
        record["failures_applied"] += 1
        record["steps_taken"] += result.steps_taken
        instance = candidate
        final_state = result.final_state
        orientation = _orientation_of(final_state)
        converged = converged and result.converged
    return instance, final_state, converged


def _run_mobility(spec, automaton_factory, observers, record, final_state, converged):
    """Advance random-waypoint mobility, re-converging after each churn step.

    As in :func:`_run_link_failures`, ``converged`` is the conjunction over
    the initial convergence and every churn phase.
    """
    from repro.topology.manet import random_geometric_instance
    from repro.topology.mobility import RandomWaypointMobility

    instance, network = random_geometric_instance(
        spec.size, radius=0.4, seed=spec.topology_seed
    )
    mobility = RandomWaypointMobility(
        network, seed=derive_seed(spec.topology_seed, "mobility")
    )
    orientation = _orientation_of(final_state)
    for index in range(spec.failure_count):
        change = mobility.step()
        if change.is_empty:
            continue
        fresh = mobility.network.to_instance()
        if not fresh.is_connected():
            record["partition_skips"] += 1
            continue
        # carry surviving orientations over; new links take the fresh
        # (distance-towards-destination) direction
        candidate, reoriented = _carried_over_instance(
            fresh, orientation.directed_edges()
        )
        if reoriented:
            record["reorientations"] += 1
        scheduler = make_scheduler(
            spec.scheduler, derive_seed(spec.scheduler_seed, "churn", index)
        )
        result = _converge(automaton_factory, candidate, scheduler, observers, spec.max_steps)
        record["failures_applied"] += 1
        record["steps_taken"] += result.steps_taken
        instance = candidate
        final_state = result.final_state
        orientation = _orientation_of(final_state)
        converged = converged and result.converged
    return instance, final_state, converged


def _orientation_of(state):
    """The orientation of any link-reversal state (height states derive one)."""
    orientation = getattr(state, "orientation", None)
    if orientation is None:
        orientation = state.to_orientation()
    return orientation


# ----------------------------------------------------------------------
# engine registration (see repro.experiments.engines)
# ----------------------------------------------------------------------
class KernelEngine(ExecutionEngine):
    """The compiled signature-kernel fast path (synchronous scenarios)."""

    name = ENGINE_KERNEL
    auto_priority = 20

    def supports(self, spec: ScenarioSpec) -> bool:
        return (
            spec.delay_model is None
            and spec.traffic is None
            and algorithm_has_kernel(spec.algorithm)
            and spec.scheduler in MASK_SCHEDULER_FACTORIES
        )

    def unsupported_reason(self, spec: ScenarioSpec) -> str:
        if spec.delay_model is not None:
            return (
                "no kernel fast path for asynchronous specs "
                f"(delay_model={spec.delay_model!r}); use engine='async'"
            )
        if spec.traffic is not None:
            return (
                "the kernel engine moves no packets "
                f"(traffic={spec.traffic!r}); use engine='dataplane'"
            )
        return (
            f"no kernel fast path for algorithm {spec.algorithm!r} "
            f"with scheduler {spec.scheduler!r}; use engine='legacy'"
        )

    def execute(self, spec, record, deadline) -> None:
        work, rounds = WorkTally(), RoundTally()
        try:
            _execute_kernel_scenario(spec, record, work, rounds, deadline)
        finally:
            record.update(
                node_steps=work.node_steps,
                edge_reversals=work.edge_reversals,
                dummy_steps=work.dummy_steps,
                rounds=rounds.rounds,
            )


class LegacyEngine(ExecutionEngine):
    """The object-level I/O-automaton oracle (and BLL fallback)."""

    name = ENGINE_LEGACY
    auto_priority = 10

    def supports(self, spec: ScenarioSpec) -> bool:
        return (
            spec.delay_model is None
            and spec.traffic is None
            and spec.node_faults == 0
        )

    def unsupported_reason(self, spec: ScenarioSpec) -> str:
        if spec.traffic is not None:
            return (
                "the legacy object path moves no packets "
                f"(traffic={spec.traffic!r}); use engine='dataplane'"
            )
        if spec.node_faults > 0:
            return (
                "the legacy object path has no crash-stop support "
                f"(node_faults={spec.node_faults}); use engine='kernel' or 'async'"
            )
        return (
            "the legacy object path runs synchronous scenarios only "
            f"(delay_model={spec.delay_model!r}); use engine='async'"
        )

    def execute(self, spec, record, deadline) -> None:
        work, rounds = WorkObserver(), _RoundObserver()
        try:
            _execute_legacy_scenario(spec, record, work, rounds, deadline)
        finally:
            record.update(
                node_steps=work.node_steps,
                edge_reversals=work.edge_reversals,
                dummy_steps=work.dummy_steps,
                rounds=rounds.rounds,
            )


register_engine(KernelEngine())
register_engine(LegacyEngine())

# registering the async and batch engines is a side effect of importing their
# modules; they live in their own modules because they build on subsystems
# (repro.distributed, repro.kernels.batch) the synchronous per-scenario
# engines never touch
import repro.experiments.async_engine  # noqa: E402,F401  (registration import)
import repro.experiments.batch_engine  # noqa: E402,F401  (registration import)
import repro.experiments.dataplane_engine  # noqa: E402,F401  (registration import)

#: Engine names accepted by :func:`execute_scenario` / ``repro sweep --engine``.
ENGINE_CHOICES = engine_names()


def run_scenarios(
    specs: List[Dict[str, Any]],
    timeout_s: Optional[float] = None,
    engine: str = ENGINE_AUTO,
    beat: Optional[Callable[[], None]] = None,
) -> List[Dict[str, Any]]:
    """Execute a chunk of scenario dicts (the worker entry point).

    ``engine="batch"`` routes the whole chunk through
    :func:`repro.experiments.batch_engine.run_scenarios_batched`, which
    groups it by batch key and runs each group in lockstep; every other
    engine executes the chunk one scenario at a time.  ``beat``, when given,
    is invoked before every scenario (once per chunk for ``batch``) — the
    executor's watchdog heartbeat, so a hung scenario is distinguishable
    from a long chunk.
    """
    if engine == ENGINE_BATCH:
        if beat is not None:
            beat()
        from repro.experiments.batch_engine import run_scenarios_batched

        return run_scenarios_batched(specs, timeout_s=timeout_s)
    records = []
    for spec in specs:
        if beat is not None:
            beat()
        records.append(execute_scenario(spec, timeout_s=timeout_s, engine=engine))
    return records
