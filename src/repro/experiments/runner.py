"""Worker-side execution of one scenario.

:func:`execute_scenario` is the function the sharded executor ships to its
worker pool.  It takes a :class:`~repro.experiments.spec.ScenarioSpec` (or its
plain-dict form — the only thing that actually crosses the process boundary),
rebuilds the instance / automaton / scheduler locally, runs to quiescence and
returns a flat, JSON-compatible result record.

Three execution modes, selected by ``spec.failure_model``:

``none``
    Run the algorithm from the initial orientation to quiescence.
``link-failures``
    Converge first, then inject ``failure_count`` random link failures one at
    a time; after each, the algorithm repairs from the surviving orientation
    (the abstraction level of :func:`repro.routing.maintenance.repair_with_automaton`).
    Failures that would partition the network are skipped and counted.
``mobility``
    (geometric family only) Converge, then advance a random-waypoint mobility
    model ``failure_count`` steps; after each step with link churn the
    instance is rebuilt — surviving links keep their orientation, new links
    are oriented towards the destination-closer endpoint — and the algorithm
    re-converges.  If carrying the orientation over would create a cycle the
    run falls back to a fresh distance-oriented DAG (counted as a
    reorientation).

Work counters accumulate across the convergence and every repair phase, so
``node_steps`` is the total work of the whole scenario.  A cooperative
per-run timeout is enforced by an observer that checks the wall clock at
every automaton step and aborts the run with status ``"timeout"``.
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, Hashable, List, Optional, Tuple, Union

from repro.analysis.work import WorkObserver
from repro.automata.executions import run
from repro.core.graph import LinkReversalInstance
from repro.experiments.spec import ALGORITHM_FACTORIES, ScenarioSpec, derive_seed
from repro.schedulers import make_scheduler
from repro.topology.generators import build_family
from repro.verification.acyclicity import is_acyclic

Node = Hashable


class ScenarioTimeout(Exception):
    """Raised by the deadline observer when a run exceeds its time budget."""


class _DeadlineObserver:
    """Aborts a run when the wall clock passes ``deadline`` (cooperative)."""

    def __init__(self, deadline: Optional[float]):
        self.deadline = deadline

    def __call__(self, step_index, pre_state, action, post_state) -> None:
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise ScenarioTimeout(f"deadline exceeded at step {step_index}")


class _RoundObserver:
    """Counts greedy-style rounds: a round ends when an actor steps again.

    This gives a scheduler-independent notion of "rounds" — the minimum number
    of synchronous phases the observed step sequence could be folded into,
    counting a new phase whenever a node takes its second step since the
    phase began.
    """

    def __init__(self) -> None:
        self.rounds = 0
        self._seen: set = set()

    def __call__(self, step_index, pre_state, action, post_state) -> None:
        actors = action.actors()
        if self.rounds == 0:
            self.rounds = 1
        if any(a in self._seen for a in actors):
            self.rounds += 1
            self._seen = set(actors)
        else:
            self._seen.update(actors)


def _surviving_instance(
    instance: LinkReversalInstance, orientation, dropped_link: Tuple[Node, Node]
) -> LinkReversalInstance:
    """The instance left after removing one undirected link, keeping orientations."""
    dropped = frozenset(dropped_link)
    surviving = tuple(
        (tail, head)
        for tail, head in orientation.directed_edges()
        if frozenset((tail, head)) != dropped
    )
    return LinkReversalInstance(instance.nodes, instance.destination, surviving)


def _converge(automaton_factory, instance, scheduler, observers, max_steps):
    """Run one convergence phase and return its ExecutionResult."""
    automaton = automaton_factory(instance)
    return run(
        automaton, scheduler, max_steps=max_steps, observers=observers, record_states=False
    )


def execute_scenario(
    spec: Union[ScenarioSpec, Dict[str, Any]],
    timeout_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Execute one scenario and return its flat result record.

    Never raises for per-run problems: failures are reported through the
    record's ``status`` field (``ok`` / ``timeout`` / ``error``) so one bad
    run cannot take down a whole campaign shard.
    """
    if isinstance(spec, dict):
        spec = ScenarioSpec.from_dict(spec)

    record: Dict[str, Any] = spec.to_dict()
    record.update(
        status="ok", error=None,
        nodes=None, edges=None, bad_nodes=None,
        node_steps=0, edge_reversals=0, dummy_steps=0, rounds=0, steps_taken=0,
        converged=False, destination_oriented=False, acyclic_final=False,
        failures_applied=0, partition_skips=0, reorientations=0,
        wall_time_s=0.0,
    )

    start = time.perf_counter()
    deadline = None if timeout_s is None else start + timeout_s
    work = WorkObserver()
    rounds = _RoundObserver()
    observers = (work, rounds, _DeadlineObserver(deadline))

    try:
        spec.validate()
        instance = build_family(spec.family, spec.size, spec.topology_seed)
        record.update(
            nodes=instance.node_count,
            edges=instance.edge_count,
            bad_nodes=len(instance.bad_nodes()),
        )
        automaton_factory = ALGORITHM_FACTORIES[spec.algorithm]
        scheduler = make_scheduler(spec.scheduler, spec.scheduler_seed)

        result = _converge(automaton_factory, instance, scheduler, observers, spec.max_steps)
        record["steps_taken"] += result.steps_taken
        final_state = result.final_state
        converged = result.converged

        if spec.failure_model == "link-failures" and spec.failure_count > 0:
            instance, final_state, converged = _run_link_failures(
                spec, instance, final_state, converged, automaton_factory, observers, record
            )
        elif spec.failure_model == "mobility" and spec.failure_count > 0:
            instance, final_state, converged = _run_mobility(
                spec, automaton_factory, observers, record, final_state, converged
            )

        record.update(
            converged=converged,
            destination_oriented=bool(final_state.is_destination_oriented()),
            acyclic_final=bool(is_acyclic(final_state)),
        )
    except ScenarioTimeout as exc:
        record.update(status="timeout", error=str(exc))
    except Exception as exc:  # noqa: BLE001 — crash isolation is the contract
        record.update(status="error", error=f"{type(exc).__name__}: {exc}")

    record.update(
        node_steps=work.node_steps,
        edge_reversals=work.edge_reversals,
        dummy_steps=work.dummy_steps,
        rounds=rounds.rounds,
        wall_time_s=round(time.perf_counter() - start, 6),
    )
    return record


def _run_link_failures(spec, instance, final_state, converged, automaton_factory, observers, record):
    """Inject random link failures and repair after each; returns the end state.

    ``converged`` stays ``True`` only if the initial convergence *and* every
    repair phase reached quiescence (a truncated phase must not be recorded
    as converged).
    """
    rng = random.Random(derive_seed(spec.scheduler_seed, "failures"))
    orientation = _orientation_of(final_state)
    for index in range(spec.failure_count):
        candidates = sorted(instance.initial_edges)
        if not candidates:
            break
        dropped = candidates[rng.randrange(len(candidates))]
        candidate = _surviving_instance(instance, orientation, dropped)
        if not candidate.is_connected():
            record["partition_skips"] += 1
            continue
        scheduler = make_scheduler(
            spec.scheduler, derive_seed(spec.scheduler_seed, "repair", index)
        )
        result = _converge(automaton_factory, candidate, scheduler, observers, spec.max_steps)
        record["failures_applied"] += 1
        record["steps_taken"] += result.steps_taken
        instance = candidate
        final_state = result.final_state
        orientation = _orientation_of(final_state)
        converged = converged and result.converged
    return instance, final_state, converged


def _run_mobility(spec, automaton_factory, observers, record, final_state, converged):
    """Advance random-waypoint mobility, re-converging after each churn step.

    As in :func:`_run_link_failures`, ``converged`` is the conjunction over
    the initial convergence and every churn phase.
    """
    from repro.topology.manet import random_geometric_instance
    from repro.topology.mobility import RandomWaypointMobility

    instance, network = random_geometric_instance(
        spec.size, radius=0.4, seed=spec.topology_seed
    )
    mobility = RandomWaypointMobility(
        network, seed=derive_seed(spec.topology_seed, "mobility")
    )
    orientation = _orientation_of(final_state)
    for index in range(spec.failure_count):
        change = mobility.step()
        if change.is_empty:
            continue
        fresh = mobility.network.to_instance()
        if not fresh.is_connected():
            record["partition_skips"] += 1
            continue
        # carry surviving orientations over; new links take the fresh
        # (distance-towards-destination) direction
        surviving = {
            frozenset(edge): edge
            for edge in orientation.directed_edges()
            if frozenset(edge) in fresh.undirected_edges
        }
        edges = tuple(
            surviving.get(frozenset(edge), edge) for edge in fresh.initial_edges
        )
        candidate = LinkReversalInstance(fresh.nodes, fresh.destination, edges)
        if not candidate.is_initially_acyclic():
            candidate = fresh
            record["reorientations"] += 1
        scheduler = make_scheduler(
            spec.scheduler, derive_seed(spec.scheduler_seed, "churn", index)
        )
        result = _converge(automaton_factory, candidate, scheduler, observers, spec.max_steps)
        record["failures_applied"] += 1
        record["steps_taken"] += result.steps_taken
        final_state = result.final_state
        orientation = _orientation_of(final_state)
        converged = converged and result.converged
    return instance, final_state, converged


def _orientation_of(state):
    """The orientation of any link-reversal state (height states derive one)."""
    orientation = getattr(state, "orientation", None)
    if orientation is None:
        orientation = state.to_orientation()
    return orientation


def run_scenarios(
    specs: List[Dict[str, Any]], timeout_s: Optional[float] = None
) -> List[Dict[str, Any]]:
    """Execute a chunk of scenario dicts sequentially (the worker entry point)."""
    return [execute_scenario(spec, timeout_s=timeout_s) for spec in specs]
