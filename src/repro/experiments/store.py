"""Persistent campaign result store: JSONL shards + a SQLite index.

Layout of a store directory::

    <root>/
        campaign.json          # provenance: the last CampaignSpec swept here
        report.json            # how the latest sweep invocation executed
        telemetry.jsonl        # span/metrics sidecar (see repro.telemetry)
        shards/
            shard-00001.jsonl  # one JSON record per line, append-only
            shard-00002.jsonl
        index.sqlite           # consolidated queryable index over all shards

The JSONL shards are the source of truth: append-only, diffable, and safe to
copy around or concatenate.  The SQLite index is derived — it exists so
``repro report`` and campaign resume can answer "which runs exist / give me
the chain-family rows" without re-parsing every shard, and it can always be
rebuilt from the shards with :meth:`ResultStore.consolidate`.

Only the executor's parent process writes; workers hand their records back
over the pool, so there is no cross-process write contention.
"""

from __future__ import annotations

import json
import logging
import sqlite3
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Union

logger = logging.getLogger(__name__)

#: Record fields mirrored into queryable SQLite columns (everything else is
#: still available via the ``record`` JSON column).
_COLUMNS = (
    ("run_id", "TEXT PRIMARY KEY"),
    ("campaign", "TEXT"),
    ("family", "TEXT"),
    ("algorithm", "TEXT"),
    ("scheduler", "TEXT"),
    ("size", "INTEGER"),
    ("replicate", "INTEGER"),
    ("failure_model", "TEXT"),
    ("failure_count", "INTEGER"),
    ("delay_model", "TEXT"),
    ("traffic", "TEXT"),
    ("status", "TEXT"),
    ("engine", "TEXT"),
    ("node_steps", "INTEGER"),
    ("edge_reversals", "INTEGER"),
    ("dummy_steps", "INTEGER"),
    ("rounds", "INTEGER"),
    ("converged", "INTEGER"),
    ("destination_oriented", "INTEGER"),
    ("acyclic_final", "INTEGER"),
    ("messages_sent", "INTEGER"),
    ("simulated_time", "REAL"),
    ("slots", "INTEGER"),
    ("packets_injected", "INTEGER"),
    ("packets_delivered", "INTEGER"),
    ("packets_dropped", "INTEGER"),
    ("packets_in_flight", "INTEGER"),
    ("drop_tail", "INTEGER"),
    ("drop_ttl", "INTEGER"),
    ("drop_no_route", "INTEGER"),
    ("drop_link_down", "INTEGER"),
    ("transient_loops", "INTEGER"),
    ("peak_queue_depth", "INTEGER"),
    ("mean_latency_slots", "REAL"),
    ("max_latency_slots", "REAL"),
    ("mean_hops", "REAL"),
    ("mean_stretch", "REAL"),
    ("wall_time_s", "REAL"),
)

_SCHEMA = (
    "CREATE TABLE IF NOT EXISTS runs ("
    + ", ".join(f"{name} {kind}" for name, kind in _COLUMNS)
    + ", record TEXT NOT NULL)"
)


class ResultStore:
    """A directory-backed, resumable store of campaign run records."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.shard_dir = self.root / "shards"
        self.index_path = self.root / "index.sqlite"
        self.campaign_path = self.root / "campaign.json"
        self.report_path = self.root / "report.json"
        self.telemetry_path = self.root / "telemetry.jsonl"
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        self._connection: Optional[sqlite3.Connection] = None

    # ------------------------------------------------------------------
    # low-level plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        if self._connection is None:
            self._connection = sqlite3.connect(self.index_path)
            # the index is *derived* data, always rebuildable from the JSONL
            # shards (the source of truth), so durability pragmas are waived
            # for write throughput: a torn index after a crash is repaired by
            # consolidate(), never a data loss
            self._connection.execute("PRAGMA journal_mode=MEMORY")
            self._connection.execute("PRAGMA synchronous=OFF")
            self._connection.execute(_SCHEMA)
            # migrate indexes written before a column existed (the JSONL
            # shards are authoritative, so adding a NULL column is safe; a
            # consolidate() backfills it from the records)
            existing = {
                row[1] for row in self._connection.execute("PRAGMA table_info(runs)")
            }
            for name, kind in _COLUMNS:
                if name not in existing:
                    self._connection.execute(
                        f"ALTER TABLE runs ADD COLUMN {name} {kind.replace(' PRIMARY KEY', '')}"
                    )
            self._connection.commit()
        return self._connection

    def close(self) -> None:
        """Close the SQLite connection (the JSONL shards need no closing)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _shard_paths(self) -> List[Path]:
        return sorted(self.shard_dir.glob("shard-*.jsonl"))

    def new_shard(self) -> Path:
        """Path of the next unused shard file (not created until written to)."""
        existing = self._shard_paths()
        next_number = 1
        if existing:
            next_number = int(existing[-1].stem.split("-")[1]) + 1
        return self.shard_dir / f"shard-{next_number:05d}.jsonl"

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, records: Sequence[Dict[str, Any]], shard: Union[str, Path, None] = None) -> Path:
        """Append records to a shard and index them; returns the shard path."""
        shard_path = Path(shard) if shard is not None else self.new_shard()
        # serialise each record once; the same JSON goes into the shard line
        # and the index's record column
        dumped = [json.dumps(record, sort_keys=True) for record in records]
        with shard_path.open("a", encoding="utf-8") as handle:
            for line in dumped:
                handle.write(line + "\n")
        self._index(records, dumped)
        return shard_path

    def _index(
        self,
        records: Sequence[Dict[str, Any]],
        dumped: Optional[Sequence[str]] = None,
    ) -> None:
        connection = self._connect()
        names = [name for name, _ in _COLUMNS]
        placeholders = ", ".join("?" for _ in range(len(names) + 1))
        sql = f"INSERT OR REPLACE INTO runs ({', '.join(names)}, record) VALUES ({placeholders})"
        if dumped is None:
            dumped = [json.dumps(record, sort_keys=True) for record in records]
        rows = []
        for record, line in zip(records, dumped):
            values = [record.get(name) for name in names]
            for i, (name, kind) in enumerate(_COLUMNS):
                if kind == "INTEGER" and isinstance(values[i], bool):
                    values[i] = int(values[i])
            rows.append((*values, line))
        connection.executemany(sql, rows)
        connection.commit()

    def record_campaign(self, campaign_dict: Dict[str, Any]) -> None:
        """Persist the campaign spec next to its results for provenance."""
        self.campaign_path.write_text(
            json.dumps(campaign_dict, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def load_campaign(self) -> Optional[Dict[str, Any]]:
        """The recorded campaign spec, if any."""
        if not self.campaign_path.exists():
            return None
        return json.loads(self.campaign_path.read_text(encoding="utf-8"))

    def record_report(self, report_dict: Dict[str, Any]) -> None:
        """Persist the latest campaign report (engines, cache counters).

        Overwritten on every :func:`~repro.experiments.executor.run_campaign`
        invocation against this store, so ``repro report`` can show how the
        most recent (possibly resumed) sweep actually executed.
        """
        self.report_path.write_text(
            json.dumps(report_dict, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def load_report(self) -> Optional[Dict[str, Any]]:
        """The recorded campaign report, if any."""
        if not self.report_path.exists():
            return None
        return json.loads(self.report_path.read_text(encoding="utf-8"))

    def record_telemetry(self, events: Sequence[Dict[str, Any]]) -> Path:
        """Append telemetry events to the ``telemetry.jsonl`` sidecar.

        The batched sink of the campaign tracer (see
        :mod:`repro.telemetry.spans`): one appending write per batch, never
        per event.  Append-only like the record shards, so resumed campaigns
        accumulate their invocations' telemetry in order.
        """
        if events:
            from repro.io.serialization import telemetry_events_to_jsonl

            with self.telemetry_path.open("a", encoding="utf-8") as handle:
                handle.write(telemetry_events_to_jsonl(events))
        return self.telemetry_path

    def iter_telemetry(self) -> Iterator[Dict[str, Any]]:
        """Every sidecar telemetry event, in write order, schema-validated.

        Raises :class:`repro.io.serialization.SerializationError` on a
        malformed event — ``repro trace`` fails loudly rather than
        summarising garbage.
        """
        if not self.telemetry_path.exists():
            return
        from repro.io.serialization import telemetry_event_from_dict

        with self.telemetry_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield telemetry_event_from_dict(json.loads(line))

    # ------------------------------------------------------------------
    # consolidation / resume
    # ------------------------------------------------------------------
    def iter_shard_records(self) -> Iterator[Dict[str, Any]]:
        """Every record in every JSONL shard, in shard order."""
        for path in self._shard_paths():
            with path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        yield json.loads(line)

    def consolidate(self) -> int:
        """Rebuild the SQLite index from the JSONL shards; returns row count.

        The shards are authoritative, so this is safe to call any time — e.g.
        after concatenating shards from another machine, or when the index
        file was deleted or is suspected stale.
        """
        self.close()
        if self.index_path.exists():
            self.index_path.unlink()
        records = list(self.iter_shard_records())
        if records:
            self._index(records)
        else:
            self._connect()
        count = self.count()
        logger.info(
            "rebuilt index at %s: %d records from %d shards",
            self.index_path, count, len(self._shard_paths()),
        )
        return count

    def existing_run_ids(self) -> Set[str]:
        """The run ids already stored (what campaign resume skips)."""
        if not self.index_path.exists() and self._shard_paths():
            self.consolidate()
        connection = self._connect()
        return {row[0] for row in connection.execute("SELECT run_id FROM runs")}

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def count(self) -> int:
        """Number of stored runs."""
        connection = self._connect()
        return connection.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    def status_counts(self) -> Dict[str, int]:
        """Stored runs per status, aggregated in SQLite (no record parsing)."""
        connection = self._connect()
        return dict(
            connection.execute("SELECT status, COUNT(*) FROM runs GROUP BY status")
        )

    def engine_counts(self) -> Dict[str, int]:
        """Stored runs per execution engine (``kernel`` / ``legacy`` / ``none``).

        ``none`` aggregates runs with no recorded engine: failures before an
        engine was selected, crashed placeholders and pre-engine records.
        """
        connection = self._connect()
        return {
            engine if engine is not None else "none": count
            for engine, count in connection.execute(
                "SELECT engine, COUNT(*) FROM runs GROUP BY engine"
            )
        }

    def records(self, **filters: Any) -> List[Dict[str, Any]]:
        """Full records matching equality filters on the indexed columns.

        Example: ``store.records(family="chain", status="ok")``.
        """
        names = {name for name, _ in _COLUMNS}
        unknown = set(filters) - names
        if unknown:
            raise ValueError(f"cannot filter on non-indexed fields: {sorted(unknown)}")
        sql = "SELECT record FROM runs"
        values: List[Any] = []
        if filters:
            clauses = []
            for name, value in sorted(filters.items()):
                clauses.append(f"{name} = ?")
                values.append(int(value) if isinstance(value, bool) else value)
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY run_id"
        connection = self._connect()
        return [json.loads(row[0]) for row in connection.execute(sql, values)]
