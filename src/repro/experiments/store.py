"""Persistent campaign result store: JSONL shards + a SQLite index.

Layout of a store directory::

    <root>/
        campaign.json          # provenance: the last CampaignSpec swept here
        report.json            # how the latest sweep invocation executed
        telemetry.jsonl        # span/metrics sidecar (see repro.telemetry)
        shards/
            shard-00001.jsonl  # one JSON record per line, append-only
            shard-00002.jsonl
        index.sqlite           # consolidated queryable index over all shards

The JSONL shards are the source of truth: append-only, diffable, and safe to
copy around or concatenate.  The SQLite index is derived — it exists so
``repro report`` and campaign resume can answer "which runs exist / give me
the chain-family rows" without re-parsing every shard, and it can always be
rebuilt from the shards with :meth:`ResultStore.consolidate`.

Only the executor's parent process writes; workers hand their records back
over the pool, so there is no cross-process write contention.
"""

from __future__ import annotations

import json
import logging
import os
import sqlite3
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.io.serialization import checksummed_line, split_checksummed_line

logger = logging.getLogger(__name__)


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file + rename.

    ``os.replace`` is atomic on POSIX and Windows, so a crash mid-write
    leaves either the old file or the new one — never a truncated hybrid.
    """
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)

#: Record fields mirrored into queryable SQLite columns (everything else is
#: still available via the ``record`` JSON column).
_COLUMNS = (
    ("run_id", "TEXT PRIMARY KEY"),
    ("campaign", "TEXT"),
    ("family", "TEXT"),
    ("algorithm", "TEXT"),
    ("scheduler", "TEXT"),
    ("size", "INTEGER"),
    ("replicate", "INTEGER"),
    ("failure_model", "TEXT"),
    ("failure_count", "INTEGER"),
    ("node_faults", "INTEGER"),
    ("delay_model", "TEXT"),
    ("traffic", "TEXT"),
    ("status", "TEXT"),
    ("engine", "TEXT"),
    ("node_steps", "INTEGER"),
    ("edge_reversals", "INTEGER"),
    ("dummy_steps", "INTEGER"),
    ("rounds", "INTEGER"),
    ("converged", "INTEGER"),
    ("destination_oriented", "INTEGER"),
    ("acyclic_final", "INTEGER"),
    ("messages_sent", "INTEGER"),
    ("simulated_time", "REAL"),
    ("slots", "INTEGER"),
    ("packets_injected", "INTEGER"),
    ("packets_delivered", "INTEGER"),
    ("packets_dropped", "INTEGER"),
    ("packets_in_flight", "INTEGER"),
    ("drop_tail", "INTEGER"),
    ("drop_ttl", "INTEGER"),
    ("drop_no_route", "INTEGER"),
    ("drop_link_down", "INTEGER"),
    ("transient_loops", "INTEGER"),
    ("peak_queue_depth", "INTEGER"),
    ("mean_latency_slots", "REAL"),
    ("max_latency_slots", "REAL"),
    ("mean_hops", "REAL"),
    ("mean_stretch", "REAL"),
    ("wall_time_s", "REAL"),
)

_SCHEMA = (
    "CREATE TABLE IF NOT EXISTS runs ("
    + ", ".join(f"{name} {kind}" for name, kind in _COLUMNS)
    + ", record TEXT NOT NULL)"
)


class ResultStore:
    """A directory-backed, resumable store of campaign run records."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.shard_dir = self.root / "shards"
        self.quarantine_dir = self.root / "quarantine"
        self.index_path = self.root / "index.sqlite"
        self.campaign_path = self.root / "campaign.json"
        self.report_path = self.root / "report.json"
        self.telemetry_path = self.root / "telemetry.jsonl"
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        self._connection: Optional[sqlite3.Connection] = None

    # ------------------------------------------------------------------
    # low-level plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        if self._connection is None:
            self._connection = sqlite3.connect(self.index_path)
            # the index is *derived* data, always rebuildable from the JSONL
            # shards (the source of truth), so durability pragmas are waived
            # for write throughput: a torn index after a crash is repaired by
            # consolidate(), never a data loss
            self._connection.execute("PRAGMA journal_mode=MEMORY")
            self._connection.execute("PRAGMA synchronous=OFF")
            self._connection.execute(_SCHEMA)
            # migrate indexes written before a column existed (the JSONL
            # shards are authoritative, so adding a NULL column is safe; a
            # consolidate() backfills it from the records)
            existing = {
                row[1] for row in self._connection.execute("PRAGMA table_info(runs)")
            }
            for name, kind in _COLUMNS:
                if name not in existing:
                    self._connection.execute(
                        f"ALTER TABLE runs ADD COLUMN {name} {kind.replace(' PRIMARY KEY', '')}"
                    )
            self._connection.commit()
        return self._connection

    def close(self) -> None:
        """Close the SQLite connection (the JSONL shards need no closing)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _shard_paths(self) -> List[Path]:
        return sorted(self.shard_dir.glob("shard-*.jsonl"))

    def new_shard(self) -> Path:
        """Path of the next unused shard file (not created until written to)."""
        existing = self._shard_paths()
        next_number = 1
        if existing:
            next_number = int(existing[-1].stem.split("-")[1]) + 1
        return self.shard_dir / f"shard-{next_number:05d}.jsonl"

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, records: Sequence[Dict[str, Any]], shard: Union[str, Path, None] = None) -> Path:
        """Append records to a shard and index them; returns the shard path.

        Each shard line carries a CRC32 suffix (``<json>\\t<crc hex>``, see
        :func:`repro.io.serialization.checksummed_line`) so torn or
        bit-rotted lines are detected on read; the index's ``record`` column
        keeps the pure JSON.
        """
        shard_path = Path(shard) if shard is not None else self.new_shard()
        # serialise each record once; the same JSON goes into the shard line
        # (checksummed) and the index's record column (plain)
        dumped = [json.dumps(record, sort_keys=True) for record in records]
        with shard_path.open("a", encoding="utf-8") as handle:
            for line in dumped:
                handle.write(checksummed_line(line) + "\n")
        self._index(records, dumped)
        return shard_path

    def _index(
        self,
        records: Sequence[Dict[str, Any]],
        dumped: Optional[Sequence[str]] = None,
    ) -> None:
        connection = self._connect()
        names = [name for name, _ in _COLUMNS]
        placeholders = ", ".join("?" for _ in range(len(names) + 1))
        sql = f"INSERT OR REPLACE INTO runs ({', '.join(names)}, record) VALUES ({placeholders})"
        if dumped is None:
            dumped = [json.dumps(record, sort_keys=True) for record in records]
        rows = []
        for record, line in zip(records, dumped):
            values = [record.get(name) for name in names]
            for i, (name, kind) in enumerate(_COLUMNS):
                if kind == "INTEGER" and isinstance(values[i], bool):
                    values[i] = int(values[i])
            rows.append((*values, line))
        connection.executemany(sql, rows)
        connection.commit()

    def record_campaign(self, campaign_dict: Dict[str, Any]) -> None:
        """Persist the campaign spec next to its results for provenance.

        Atomic (temp file + rename): a crash mid-write cannot leave a
        half-written ``campaign.json`` that breaks the next resume.
        """
        _atomic_write_text(
            self.campaign_path,
            json.dumps(campaign_dict, indent=2, sort_keys=True) + "\n",
        )

    def load_campaign(self) -> Optional[Dict[str, Any]]:
        """The recorded campaign spec, if any."""
        if not self.campaign_path.exists():
            return None
        return json.loads(self.campaign_path.read_text(encoding="utf-8"))

    def record_report(self, report_dict: Dict[str, Any]) -> None:
        """Persist the latest campaign report (engines, cache counters).

        Overwritten on every :func:`~repro.experiments.executor.run_campaign`
        invocation against this store, so ``repro report`` can show how the
        most recent (possibly resumed) sweep actually executed.  Atomic, like
        :meth:`record_campaign`.
        """
        _atomic_write_text(
            self.report_path,
            json.dumps(report_dict, indent=2, sort_keys=True) + "\n",
        )

    def load_report(self) -> Optional[Dict[str, Any]]:
        """The recorded campaign report, if any."""
        if not self.report_path.exists():
            return None
        return json.loads(self.report_path.read_text(encoding="utf-8"))

    def record_telemetry(self, events: Sequence[Dict[str, Any]]) -> Path:
        """Append telemetry events to the ``telemetry.jsonl`` sidecar.

        The batched sink of the campaign tracer (see
        :mod:`repro.telemetry.spans`): one appending write per batch, never
        per event.  Append-only like the record shards, so resumed campaigns
        accumulate their invocations' telemetry in order.
        """
        if events:
            from repro.io.serialization import telemetry_events_to_jsonl

            with self.telemetry_path.open("a", encoding="utf-8") as handle:
                handle.write(telemetry_events_to_jsonl(events))
        return self.telemetry_path

    def iter_telemetry(self) -> Iterator[Dict[str, Any]]:
        """Every sidecar telemetry event, in write order, schema-validated.

        A *torn* line (unparseable JSON — typically the truncated tail of a
        crash mid-append) is logged and skipped so the sidecar stays
        readable; a line that parses but violates the event schema still
        raises :class:`repro.io.serialization.SerializationError` — schema
        drift between writer and reader must fail loudly, not silently.
        """
        if not self.telemetry_path.exists():
            return
        from repro.io.serialization import telemetry_event_from_dict

        with self.telemetry_path.open("r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except ValueError:
                    logger.warning(
                        "skipping torn telemetry line %s:%d", self.telemetry_path, number
                    )
                    continue
                yield telemetry_event_from_dict(data)

    # ------------------------------------------------------------------
    # consolidation / resume
    # ------------------------------------------------------------------
    @staticmethod
    def _parse_shard_line(line: str) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
        """Parse one shard line into ``(record, why_bad)``.

        Exactly one of the two is ``None``: a healthy line (checksummed or
        legacy plain-JSON) yields its record; a corrupt one yields the reason
        it was rejected.
        """
        payload, crc_ok = split_checksummed_line(line)
        if crc_ok is False:
            return None, "checksum mismatch"
        try:
            record = json.loads(payload)
        except ValueError:
            return None, "unparseable JSON (torn line?)"
        if not isinstance(record, dict):
            return None, f"record is {type(record).__name__}, not an object"
        return record, None

    def iter_shard_records(self) -> Iterator[Dict[str, Any]]:
        """Every healthy record in every JSONL shard, in shard order.

        Tolerant by design: a torn trailing line (crash mid-append) or a
        checksum-failing line is logged and skipped, never raised — an
        interrupted campaign must stay resumable without manual surgery.
        Run :meth:`fsck` to quarantine such lines out of the shards.
        """
        for path in self._shard_paths():
            with path.open("r", encoding="utf-8") as handle:
                for number, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    record, why_bad = self._parse_shard_line(line)
                    if record is None:
                        logger.warning(
                            "skipping corrupt shard line %s:%d (%s)",
                            path, number, why_bad,
                        )
                        continue
                    yield record

    def consolidate(self) -> int:
        """Rebuild the SQLite index from the JSONL shards; returns row count.

        The shards are authoritative, so this is safe to call any time — e.g.
        after concatenating shards from another machine, or when the index
        file was deleted or is suspected stale.
        """
        self.close()
        if self.index_path.exists():
            self.index_path.unlink()
        records = list(self.iter_shard_records())
        if records:
            self._index(records)
        else:
            self._connect()
        count = self.count()
        logger.info(
            "rebuilt index at %s: %d records from %d shards",
            self.index_path, count, len(self._shard_paths()),
        )
        return count

    def fsck(self, repair: bool = True) -> Dict[str, Any]:
        """Verify shard integrity; quarantine bad lines and rebuild the index.

        Walks every shard line, checking the CRC32 suffix where present and
        JSON-parseability always (legacy pre-checksum lines stay valid).  A
        truncated tail — a final line without a newline that fails to parse —
        is reported separately from mid-file corruption, since it is the
        signature of a crash mid-append rather than bit rot.

        With ``repair=True`` (the default) every bad line is moved to
        ``quarantine/<shard>.bad``, the shard is rewritten atomically with
        only its healthy lines, and the SQLite index is rebuilt from the
        cleaned shards.  With ``repair=False`` nothing is touched — the
        returned report just describes the damage.

        Returns a plain-data report: per-shard and total line/record counts,
        bad-line locations, truncated-tail detection, quarantine paths, and
        the rebuilt index's row count (``None`` when ``repair=False``).
        """
        report: Dict[str, Any] = {
            "shards": 0,
            "records": 0,
            "checksummed_lines": 0,
            "legacy_lines": 0,
            "bad_lines": [],
            "truncated_tails": [],
            "quarantined": [],
            "repaired": repair,
        }
        for path in self._shard_paths():
            report["shards"] += 1
            text = path.read_text(encoding="utf-8")
            ends_with_newline = text.endswith("\n")
            raw_lines = text.splitlines()
            good: List[str] = []
            bad: List[Tuple[int, str, str]] = []
            for number, raw in enumerate(raw_lines, start=1):
                stripped = raw.strip()
                if not stripped:
                    continue
                record, why_bad = self._parse_shard_line(stripped)
                if record is None:
                    if number == len(raw_lines) and not ends_with_newline:
                        why_bad = "truncated tail (crash mid-append?)"
                        report["truncated_tails"].append(str(path))
                    bad.append((number, raw, why_bad))
                    report["bad_lines"].append(
                        {"shard": str(path), "line": number, "reason": why_bad}
                    )
                    continue
                _, crc_ok = split_checksummed_line(stripped)
                report["checksummed_lines" if crc_ok else "legacy_lines"] += 1
                report["records"] += 1
                good.append(stripped)
            if bad and repair:
                self.quarantine_dir.mkdir(parents=True, exist_ok=True)
                quarantine_path = self.quarantine_dir / f"{path.name}.bad"
                with quarantine_path.open("a", encoding="utf-8") as handle:
                    for number, raw, why_bad in bad:
                        handle.write(raw + "\n")
                report["quarantined"].append(str(quarantine_path))
                _atomic_write_text(
                    path, "".join(line + "\n" for line in good)
                )
                logger.warning(
                    "fsck quarantined %d bad line(s) from %s to %s",
                    len(bad), path, quarantine_path,
                )
        report["index_records"] = self.consolidate() if repair else None
        return report

    def existing_run_ids(self) -> Set[str]:
        """The run ids already stored (what campaign resume skips)."""
        if not self.index_path.exists() and self._shard_paths():
            self.consolidate()
        connection = self._connect()
        return {row[0] for row in connection.execute("SELECT run_id FROM runs")}

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def count(self) -> int:
        """Number of stored runs."""
        connection = self._connect()
        return connection.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    def status_counts(self) -> Dict[str, int]:
        """Stored runs per status, aggregated in SQLite (no record parsing)."""
        connection = self._connect()
        return dict(
            connection.execute("SELECT status, COUNT(*) FROM runs GROUP BY status")
        )

    def engine_counts(self) -> Dict[str, int]:
        """Stored runs per execution engine (``kernel`` / ``legacy`` / ``none``).

        ``none`` aggregates runs with no recorded engine: failures before an
        engine was selected, crashed placeholders and pre-engine records.
        """
        connection = self._connect()
        return {
            engine if engine is not None else "none": count
            for engine, count in connection.execute(
                "SELECT engine, COUNT(*) FROM runs GROUP BY engine"
            )
        }

    def records(self, **filters: Any) -> List[Dict[str, Any]]:
        """Full records matching equality filters on the indexed columns.

        Example: ``store.records(family="chain", status="ok")``.
        """
        names = {name for name, _ in _COLUMNS}
        unknown = set(filters) - names
        if unknown:
            raise ValueError(f"cannot filter on non-indexed fields: {sorted(unknown)}")
        sql = "SELECT record FROM runs"
        values: List[Any] = []
        if filters:
            clauses = []
            for name, value in sorted(filters.items()):
                clauses.append(f"{name} = ?")
                values.append(int(value) if isinstance(value, bool) else value)
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY run_id"
        connection = self._connect()
        return [json.loads(row[0]) for row in connection.execute(sql, values)]
