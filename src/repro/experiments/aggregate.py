"""Aggregation over stored campaign results: group-bys, curves, orderings.

Everything here consumes the flat records persisted by the
:class:`~repro.experiments.store.ResultStore` and produces plain-data
summaries, which ``repro report`` renders as tables (or dumps as JSON):

* :func:`group_summary` — ``analysis.statistics`` summaries of any metric,
  grouped by arbitrary record fields (family, algorithm, scheduler, ...);
* :func:`work_curves` — mean work as a function of instance size per
  (family, algorithm), with a quadratic least-squares fit when the campaign
  swept enough sizes — the stored-data analogue of the Θ(n_b²) experiment;
* :func:`pr_vs_fr_ordering` — checks the paper-adjacent worst-case ordering
  (Full Reversal does quadratic work on the bad chain where Partial Reversal
  stays linear) directly from stored results;
* :func:`build_report` — bundles all of the above into one dict.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.statistics import quadratic_fit_r2, summary_stats
from repro.experiments.store import ResultStore

#: Minimum distinct sizes before a quadratic fit is attempted.
MIN_FIT_POINTS = 4


def ok_records(store: ResultStore, **filters: Any) -> List[Dict[str, Any]]:
    """Successful run records matching the filters (failed runs excluded)."""
    return store.records(status="ok", **filters)


def group_summary(
    records: Sequence[Dict[str, Any]],
    by: Sequence[str] = ("family", "algorithm"),
    metric: str = "node_steps",
) -> Dict[Tuple[Any, ...], Dict[str, float]]:
    """Summary statistics of ``metric`` grouped by the ``by`` fields."""
    groups: Dict[Tuple[Any, ...], List[float]] = defaultdict(list)
    for record in records:
        value = record.get(metric)
        if value is None:
            continue
        groups[tuple(record.get(field) for field in by)].append(float(value))
    return {key: summary_stats(values) for key, values in sorted(groups.items())}


def work_curves(
    records: Sequence[Dict[str, Any]],
    metric: str = "node_steps",
) -> Dict[Tuple[str, str], Dict[str, Any]]:
    """Mean work vs size per (family, algorithm), with quadratic fits.

    Returns ``{(family, algorithm): {"points": [(size, mean), ...],
    "fit": [a, b, c] | None, "r2": float | None}}``.  The fit is only
    attempted when at least :data:`MIN_FIT_POINTS` distinct sizes are present.
    """
    by_size: Dict[Tuple[str, str], Dict[int, List[float]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for record in records:
        value = record.get(metric)
        if value is None:
            continue
        key = (record.get("family"), record.get("algorithm"))
        by_size[key][int(record.get("size"))].append(float(value))

    curves: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for key, size_map in sorted(by_size.items()):
        points = [
            (size, sum(values) / len(values)) for size, values in sorted(size_map.items())
        ]
        fit: Optional[List[float]] = None
        r2: Optional[float] = None
        if len(points) >= MIN_FIT_POINTS:
            xs = [float(size) for size, _ in points]
            ys = [value for _, value in points]
            try:
                fit, r2 = quadratic_fit_r2(xs, ys)
            except ValueError:
                fit, r2 = None, None  # degenerate sweep (e.g. constant sizes)
        curves[key] = {"points": points, "fit": fit, "r2": r2}
    return curves


def pr_vs_fr_ordering(
    records: Sequence[Dict[str, Any]],
    family: str = "chain",
    pr_algorithm: str = "pr",
    fr_algorithm: str = "fr",
    metric: str = "node_steps",
) -> Dict[str, Any]:
    """Check the worst-case PR-vs-FR work ordering from stored results.

    On the all-bad chain family, Full Reversal performs Θ(n²) total work
    while Partial Reversal stays linear (the Busch–Tirthapura bounds quoted
    in Section 1 of the paper).  This verifies the measured consequence:
    at every swept size FR's mean work is at least PR's, and at the largest
    size it is strictly larger (once sizes are past the trivial ones), with
    a growing FR/PR ratio.
    """
    curves = work_curves(
        [r for r in records if r.get("family") == family], metric=metric
    )
    pr_curve = {s: w for s, w in curves.get((family, pr_algorithm), {}).get("points", [])}
    fr_curve = {s: w for s, w in curves.get((family, fr_algorithm), {}).get("points", [])}
    shared_sizes = sorted(set(pr_curve) & set(fr_curve))

    comparison = [
        {
            "size": size,
            "pr": pr_curve[size],
            "fr": fr_curve[size],
            "ratio": (fr_curve[size] / pr_curve[size]) if pr_curve[size] else None,
        }
        for size in shared_sizes
    ]
    holds = bool(shared_sizes) and all(
        row["fr"] >= row["pr"] for row in comparison
    )
    if holds and len(shared_sizes) >= 2 and shared_sizes[-1] >= 4:
        holds = comparison[-1]["fr"] > comparison[-1]["pr"]
    return {
        "family": family,
        "pr_algorithm": pr_algorithm,
        "fr_algorithm": fr_algorithm,
        "metric": metric,
        "sizes": shared_sizes,
        "comparison": comparison,
        "ordering_holds": holds,
        "fr_fit": curves.get((family, fr_algorithm), {}).get("fit"),
        "fr_r2": curves.get((family, fr_algorithm), {}).get("r2"),
    }


def async_summary(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Message/time statistics of the async-engine runs, per delay model.

    Returns ``{"runs": n, "by_delay_model": {model: {"runs", "mean_messages",
    "mean_lost", "mean_simulated_time", "mean_reversals"}}}`` over the
    records that carry a ``delay_model`` (synchronous records are ignored).
    """
    async_records = [r for r in records if r.get("delay_model") is not None]
    by_model: Dict[str, List[Dict[str, Any]]] = defaultdict(list)
    for record in async_records:
        by_model[record["delay_model"]].append(record)

    def _mean(rows: List[Dict[str, Any]], field: str) -> float:
        values = [float(r[field]) for r in rows if r.get(field) is not None]
        return round(sum(values) / len(values), 3) if values else 0.0

    return {
        "runs": len(async_records),
        "by_delay_model": {
            model: {
                "runs": len(rows),
                "mean_messages": _mean(rows, "messages_sent"),
                "mean_lost": _mean(rows, "messages_lost"),
                "mean_simulated_time": _mean(rows, "simulated_time"),
                "mean_reversals": _mean(rows, "node_steps"),
            }
            for model, rows in sorted(by_model.items())
        },
    }


def dataplane_summary(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Packet statistics of the data-plane runs, per traffic model.

    Returns ``{"runs": n, "by_traffic": {model: {"runs", "injected",
    "delivered", "dropped", "delivery_ratio", "drop_tail", "drop_ttl",
    "drop_no_route", "drop_link_down", "transient_loops",
    "mean_latency_slots", "mean_stretch", "peak_queue_depth"}}}`` over the
    records that carry a ``traffic`` model (control-plane-only records are
    ignored).  ``delivery_ratio`` is pooled (total delivered over total
    injected), not a mean of per-run ratios.
    """
    plane_records = [r for r in records if r.get("traffic") is not None]
    by_traffic: Dict[str, List[Dict[str, Any]]] = defaultdict(list)
    for record in plane_records:
        by_traffic[record["traffic"]].append(record)

    def _total(rows: List[Dict[str, Any]], field: str) -> int:
        return sum(int(r[field]) for r in rows if r.get(field) is not None)

    def _mean(rows: List[Dict[str, Any]], field: str) -> Optional[float]:
        values = [float(r[field]) for r in rows if r.get(field) is not None]
        return round(sum(values) / len(values), 3) if values else None

    summary: Dict[str, Any] = {"runs": len(plane_records), "by_traffic": {}}
    for model, rows in sorted(by_traffic.items()):
        injected = _total(rows, "packets_injected")
        delivered = _total(rows, "packets_delivered")
        summary["by_traffic"][model] = {
            "runs": len(rows),
            "injected": injected,
            "delivered": delivered,
            "dropped": _total(rows, "packets_dropped"),
            "delivery_ratio": round(delivered / injected, 4) if injected else None,
            "drop_tail": _total(rows, "drop_tail"),
            "drop_ttl": _total(rows, "drop_ttl"),
            "drop_no_route": _total(rows, "drop_no_route"),
            "drop_link_down": _total(rows, "drop_link_down"),
            "transient_loops": _total(rows, "transient_loops"),
            "mean_latency_slots": _mean(rows, "mean_latency_slots"),
            "mean_stretch": _mean(rows, "mean_stretch"),
            "peak_queue_depth": max(
                (int(r["peak_queue_depth"]) for r in rows
                 if r.get("peak_queue_depth") is not None),
                default=0,
            ),
        }
    return summary


def resilience_summary(
    records: Sequence[Dict[str, Any]],
    last_report: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Node-fault outcomes plus the executor's self-healing counters.

    ``by_node_faults`` summarises the crash-stop axis (runs, quiescence rate
    and mean work per ``node_faults`` level, faulted levels only); the
    executor counters (retries, watchdog kills, pool reforms, injected
    faults, ...) come from the latest campaign report when present.
    """
    faulted = [r for r in records if r.get("node_faults")]
    by_level: Dict[int, List[Dict[str, Any]]] = defaultdict(list)
    for record in faulted:
        by_level[int(record["node_faults"])].append(record)

    summary: Dict[str, Any] = {
        "faulted_runs": len(faulted),
        "by_node_faults": {
            level: {
                "runs": len(rows),
                "converged": sum(bool(r.get("converged")) for r in rows),
                "mean_steps": round(
                    sum(float(r.get("node_steps") or 0) for r in rows) / len(rows), 3
                ),
            }
            for level, rows in sorted(by_level.items())
        },
    }
    if last_report:
        executor = {
            field: last_report[field]
            for field in (
                "retries", "watchdog_kills", "pool_reforms", "corrupt_chunks",
                "faults_injected", "fault_kinds", "degraded_serial",
            )
            if last_report.get(field)
        }
        if executor:
            summary["executor"] = executor
    return summary


def invariant_outcomes(records: Sequence[Dict[str, Any]]) -> Dict[str, int]:
    """Counts of the per-run invariant checks across all given records."""
    outcome = {
        "runs": len(records),
        "converged": 0,
        "destination_oriented": 0,
        "acyclic_final": 0,
        "violations": 0,
    }
    for record in records:
        outcome["converged"] += bool(record.get("converged"))
        outcome["destination_oriented"] += bool(record.get("destination_oriented"))
        outcome["acyclic_final"] += bool(record.get("acyclic_final"))
        # acyclic_final is tri-state since the model-check records joined the
        # store: True (checked, held), False (checked, failed), None (the
        # acyclicity check did not run) — only an actual failure is a
        # violation.  Check records additionally carry their own explicit
        # violation count.
        if record.get("status") == "ok" and record.get("acyclic_final") is False:
            outcome["violations"] += 1
        if record.get("kind") == "check":
            outcome["violations"] += int(record.get("violations") or 0)
    return outcome


def status_counts(store: ResultStore) -> Dict[str, int]:
    """How many stored runs ended in each status (SQL aggregate, no scan)."""
    return store.status_counts()


def telemetry_summary(store: ResultStore) -> Optional[Dict[str, Any]]:
    """Summarised ``telemetry.jsonl`` sidecar, or ``None`` when absent.

    Thin wrapper over :func:`repro.telemetry.trace.summarise_telemetry` so
    ``repro report`` and ``repro trace`` share one summary shape.
    """
    if not store.telemetry_path.exists():
        return None
    from repro.telemetry.trace import summarise_telemetry

    return summarise_telemetry(store.iter_telemetry())


def build_report(
    store: ResultStore,
    by: Sequence[str] = ("family", "algorithm"),
    metric: str = "node_steps",
) -> Dict[str, Any]:
    """The full aggregation bundle behind ``repro report``."""
    records = ok_records(store)
    summaries = group_summary(records, by=by, metric=metric)
    curves = work_curves(records, metric=metric)
    last_report = store.load_report()
    return {
        "store": str(store.root),
        "campaign": store.load_campaign(),
        "status_counts": status_counts(store),
        "engine_counts": store.engine_counts(),
        # the latest run_campaign invocation's engine/cache telemetry (how
        # the most recent sweep executed, incl. batch dedup counters), as
        # opposed to engine_counts which spans every stored record
        "last_campaign_report": last_report,
        # summarised span/metrics sidecar of the sweeps run against this
        # store (None when telemetry was disabled or never ran)
        "telemetry": telemetry_summary(store),
        "invariants": invariant_outcomes(records),
        "async": async_summary(records),
        "dataplane": dataplane_summary(records),
        "resilience": resilience_summary(records, last_report),
        "group_by": list(by),
        "metric": metric,
        "groups": {
            "/".join(str(part) for part in key): stats
            for key, stats in summaries.items()
        },
        "curves": {
            f"{family}/{algorithm}": curve
            for (family, algorithm), curve in curves.items()
        },
        "pr_vs_fr": pr_vs_fr_ordering(records),
    }
