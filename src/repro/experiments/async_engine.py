"""The asynchronous campaign engine: message-passing scenarios at scale.

Registers the ``async`` :class:`~repro.experiments.engines.ExecutionEngine`:
a :class:`~repro.experiments.spec.ScenarioSpec` with a ``delay_model`` runs
on the compiled :class:`~repro.distributed.fast_network.FastAsyncNetwork`
instead of a synchronous scheduler loop.  Nodes exchange HEIGHT messages over
channels drawn from the spec's delay model (``zero`` / ``fixed`` /
``uniform`` / ``fifo``), drop messages with probability ``spec.loss``, and —
under the ``link-failures`` churn model — survive seeded link failures
injected between quiescence phases.

Mapping onto the campaign record schema:

* ``node_steps`` / ``steps_taken`` — height raises (the protocol's unit of
  work); ``edge_reversals`` — true-height edge flips; ``dummy_steps`` —
  raises that flipped nothing (stale-knowledge raises);
* ``rounds`` — anti-entropy beacon rounds needed (lossy channels only);
* ``messages_sent`` / ``messages_delivered`` / ``messages_lost``,
  ``simulated_time`` and ``events_dispatched`` — the async-only columns the
  result store indexes;
* ``converged`` — the final phase reached quiescence *and* destination
  orientation within its event budget (``max_steps`` bounds dispatched
  events per phase here, default one million).

Seed scheme (the PR-2 pairing discipline): channel randomness derives from
``spec.topology_seed``, so every algorithm of one replicate sees *paired*
per-link delay/loss streams; failure injection derives from
``spec.scheduler_seed`` exactly like the synchronous engines' churn phases.
"""

from __future__ import annotations

import logging
import random
from typing import Any, Dict, Optional, Tuple

from repro import telemetry as _telemetry
from repro.distributed.fast_network import FastAsyncNetwork
from repro.distributed.network import DELAY_MODELS
from repro.distributed.protocol import ReversalMode
from repro.experiments.engines import ExecutionEngine, register_engine
from repro.experiments.spec import ScenarioSpec, derive_seed
from repro.kernels import KernelCache
from repro.kernels.simulator import cache_capacity_from_env
from repro.topology.generators import build_family

#: Height-based protocol modes per algorithm name.  Partial Reversal runs the
#: Gafni–Bertsekas triple heights, Full Reversal the pair heights; the other
#: algorithms have no message-passing formulation in this codebase.
ASYNC_MODES: Dict[str, ReversalMode] = {
    "pr": ReversalMode.PARTIAL,
    "fr": ReversalMode.FULL,
}

#: Churn models the async engine supports (mobility rebuilds geometry, which
#: has no in-protocol meaning for a message-passing deployment).
ASYNC_FAILURE_MODELS = ("none", "link-failures")

#: Event budget per phase when the spec does not bound it.
DEFAULT_MAX_EVENTS = 1_000_000

#: Beacon rounds tried per phase before a lossy run is declared unconverged.
BEACON_ROUNDS = 20

logger = logging.getLogger(__name__)

#: Per-process instance cache (the async twin of the runner's kernel cache;
#: campaign chunks share ``(family, size, topology_seed)`` topologies).
#: Counters live in the shared ``ENGINE_METRICS`` registry as ``async_*``.
_INSTANCE_CACHE = KernelCache(
    capacity=cache_capacity_from_env(),
    metrics=_telemetry.ENGINE_METRICS,
    prefix="async_",
)


def set_cache_capacity(capacity: int) -> None:
    """Resize the async engine's per-process instance cache."""
    _INSTANCE_CACHE.set_capacity(capacity)

#: Per-topology bad-node counts, keyed like the instance cache.
_BAD_NODES_MEMO: Dict[Tuple[str, int, int], int] = {}


def instance_cache_stats() -> Dict[str, int]:
    """Cumulative counters of this process's async instance cache."""
    return _INSTANCE_CACHE.stats()


def _bad_node_count(cache_key: Tuple[str, int, int], instance) -> int:
    count = _BAD_NODES_MEMO.get(cache_key)
    if count is None:
        count = len(instance.bad_nodes())
        if len(_BAD_NODES_MEMO) >= 64:
            _BAD_NODES_MEMO.clear()
        _BAD_NODES_MEMO[cache_key] = count
    return count


def _run_phase(
    network: FastAsyncNetwork,
    loss: float,
    max_events: int,
    deadline: Optional[float],
) -> Tuple[Any, bool]:
    """One quiescence phase; returns ``(report, converged)``.

    Lossless channels reach quiescence in one run; lossy channels may stall
    short of destination orientation (a dropped height update is never
    retransmitted), so they run anti-entropy beacon rounds until oriented.
    """
    if loss > 0.0:
        report = network.run_with_beacons(
            max_rounds=BEACON_ROUNDS, max_events_per_round=max_events, deadline=deadline
        )
    else:
        report = network.run_to_quiescence(max_events=max_events, deadline=deadline)
    return report, network.quiescent() and report.destination_oriented


class AsyncEngine(ExecutionEngine):
    """Compiled asynchronous message-passing execution of a scenario."""

    name = "async"
    #: outranks the synchronous engines: a spec with a delay model *is* an
    #: async scenario, so auto must never hand it to a scheduler loop
    auto_priority = 30

    def supports(self, spec: ScenarioSpec) -> bool:
        return (
            spec.delay_model is not None
            and spec.traffic is None
            and spec.algorithm in ASYNC_MODES
            and spec.failure_model in ASYNC_FAILURE_MODELS
        )

    def unsupported_reason(self, spec: ScenarioSpec) -> str:
        if spec.delay_model is None:
            return (
                "the async engine needs a delay_model on the spec "
                f"(choose from {', '.join(sorted(DELAY_MODELS))})"
            )
        if spec.traffic is not None:
            return (
                "the async engine moves control messages only "
                f"(traffic={spec.traffic!r}); use engine='dataplane'"
            )
        if spec.algorithm not in ASYNC_MODES:
            return (
                f"no height-based message-passing protocol for algorithm "
                f"{spec.algorithm!r}; the async engine supports "
                f"{', '.join(sorted(ASYNC_MODES))}"
            )
        return (
            f"the async engine does not support the {spec.failure_model!r} "
            f"churn model; choose from {', '.join(ASYNC_FAILURE_MODELS)}"
        )

    def execute(self, spec, record, deadline) -> None:
        network: Optional[FastAsyncNetwork] = None
        try:
            cache_key = (spec.family, spec.size, spec.topology_seed)
            instance = _INSTANCE_CACHE.instance(
                cache_key,
                lambda: build_family(spec.family, spec.size, spec.topology_seed),
            )
            record.update(
                nodes=instance.node_count,
                edges=instance.edge_count,
                bad_nodes=_bad_node_count(cache_key, instance),
            )
            min_delay, max_delay, fifo = DELAY_MODELS[spec.delay_model]
            network = FastAsyncNetwork(
                instance,
                mode=ASYNC_MODES[spec.algorithm],
                min_delay=min_delay,
                max_delay=max_delay,
                loss_probability=spec.loss,
                # channel streams derive from the topology seed: paired
                # across the algorithms/schedulers of one replicate
                seed=derive_seed(spec.topology_seed, "async-channels"),
                fifo=fifo,
            )
            max_events = spec.max_steps or DEFAULT_MAX_EVENTS

            if spec.node_faults > 0:
                from repro.faults.nodes import select_crashed_ids

                dead_ids = select_crashed_ids(
                    instance.node_count,
                    network.destination_id,
                    spec.node_faults,
                    spec.topology_seed,
                )
                network.crash_stop_ids(dead_ids)
                record["crashed_nodes"] = len(dead_ids)

            report, converged = _run_phase(network, spec.loss, max_events, deadline)
            if spec.node_faults > 0:
                # crashed nodes silently stop reversing, so destination
                # orientation is generally unreachable; the honest success
                # criterion is that the live network went quiescent within
                # budget (the frozen heights still route around dead nodes)
                converged = network.quiescent()
            if spec.failure_model == "link-failures" and spec.failure_count > 0:
                report, converged = self._churn(
                    spec, network, report, converged, max_events, deadline, record
                )

            record.update(
                converged=converged,
                destination_oriented=report.destination_oriented,
                acyclic_final=report.acyclic,
            )
        finally:
            # flush whatever happened, so timeouts keep their partial work
            if network is not None:
                sent, delivered, lost = network.message_counts()
                record.update(
                    node_steps=network.total_reversals(),
                    steps_taken=network.total_reversals(),
                    edge_reversals=network.edge_flips,
                    dummy_steps=network.dummy_reversals,
                    rounds=network.beacon_rounds,
                    messages_sent=sent,
                    messages_delivered=delivered,
                    messages_lost=lost,
                    simulated_time=round(network.now, 6),
                    events_dispatched=network.events_dispatched,
                )

    def _churn(
        self, spec, network, report, converged, max_events, deadline, record
    ) -> Tuple[Any, bool]:
        """Inject seeded link failures between quiescence phases.

        The failure RNG derives from ``(scheduler_seed, "failures")`` exactly
        like the synchronous engines' link-failure model, and failures that
        would partition the network are skipped and counted, so async and
        synchronous churn campaigns stay comparable.  Unlike the synchronous
        engines the network is *not* rebuilt: the failure is injected into
        the live deployment (in-flight messages on the link are lost) and
        the protocol repairs from whatever state it was in.
        """
        rng = random.Random(derive_seed(spec.scheduler_seed, "failures"))
        for _ in range(spec.failure_count):
            candidates = network.sorted_link_pairs()
            if not candidates:
                break
            u, v = candidates[rng.randrange(len(candidates))]
            if network.link_would_partition(u, v):
                record["partition_skips"] += 1
                logger.debug(
                    "run %s: skipping failure of link (%s, %s) — would "
                    "partition the network", record.get("run_id"), u, v,
                )
                continue
            network.fail_link(u, v)
            record["failures_applied"] += 1
            report, phase_converged = _run_phase(
                network, spec.loss, max_events, deadline
            )
            converged = converged and phase_converged
        return report, converged


register_engine(AsyncEngine())
