"""Declarative scenario and campaign specifications.

A :class:`ScenarioSpec` pins down *one* run completely: which topology family
at which size built from which seed, which algorithm, which scheduler with
which (independently derived) seed, and which failure/churn model is applied.
Everything in a spec is plain data — strings and ints — so specs cross
process boundaries untouched and workers can rebuild the full object graph
locally (see :mod:`repro.experiments.runner`).

A :class:`CampaignSpec` is the cross-product description of a whole
experiment family: lists of families, algorithms, schedulers, sizes, seed
replicates and failure models.  :meth:`CampaignSpec.expand` flattens it into
a deterministic, seed-stamped run list, which is what the sharded executor
partitions across workers and what the result store keys on.

Seed derivation
---------------

Seeds are derived with a stable hash (:func:`derive_seed`), never with
Python's randomised ``hash``.  Two properties matter:

* the *topology* seed depends on ``(base_seed, family, size, replicate)``
  only — every algorithm/scheduler combination of one replicate runs on the
  **same** instance, so work comparisons are paired;
* the *scheduler* seed additionally depends on the algorithm and scheduler
  names — schedules are **not** correlated across algorithms, so a comparison
  never hinges on one shared random schedule (the bug the CLI ``compare``
  command used to have).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.bll import BinaryLinkLabels
from repro.core.full_reversal import FullReversal
from repro.core.new_pr import NewPartialReversal
from repro.core.one_step_pr import OneStepPartialReversal
from repro.core.pr import PartialReversal
from repro.schedulers import SCHEDULER_FACTORIES
from repro.topology.generators import FAMILY_NAMES

#: Name → automaton-class registry used by the campaigns and the CLI.
ALGORITHM_FACTORIES = {
    "pr": PartialReversal,
    "onestep-pr": OneStepPartialReversal,
    "new-pr": NewPartialReversal,
    "fr": FullReversal,
    "bll": BinaryLinkLabels,
}

#: Supported failure / churn models (see runner.execute_scenario).
FAILURE_MODELS = ("none", "link-failures", "mobility")

#: Channel delay models of the asynchronous engine; a spec with a
#: ``delay_model`` is an async message-passing scenario (None = synchronous).
#: The table itself lives with the network layer.
DELAY_MODEL_NAMES = ("zero", "fixed", "uniform", "fifo")

#: Traffic models of the packet data plane; a spec with a ``traffic`` model
#: is a data-plane scenario (engine ``dataplane``).  The model table itself
#: lives with the data-plane layer (``repro.dataplane.traffic``) — this
#: mirror keeps spec validation import-light, and a test pins the two.
TRAFFIC_MODEL_NAMES = ("trickle", "steady", "heavy", "bursty")

#: Fault-injection sentinel: a spec with this "algorithm" makes a pooled
#: worker process hard-exit, exercising the executor's crash isolation.  It
#: passes validation (so campaigns can inject it deliberately) but has no
#: automaton, so an inline run records an error instead of killing the parent.
CRASH_SENTINEL = "__crash__"


def derive_seed(*components: Any) -> int:
    """Derive a stable 63-bit seed from arbitrary (stringifiable) components.

    Uses blake2b, not ``hash()``, so the derivation is identical across
    processes and interpreter invocations.
    """
    text = "\x1f".join(str(c) for c in components)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") & 0x7FFFFFFFFFFFFFFF


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-determined run of one algorithm on one topology."""

    family: str
    size: int
    algorithm: str
    scheduler: str
    topology_seed: int
    scheduler_seed: int
    replicate: int = 0
    failure_model: str = "none"
    failure_count: int = 0
    max_steps: Optional[int] = None
    campaign: str = "adhoc"
    #: ``None`` = synchronous scheduler-driven run; a delay-model name makes
    #: this an asynchronous message-passing scenario (engine ``async``).
    delay_model: Optional[str] = None
    #: Per-message loss probability of the async channels.
    loss: float = 0.0
    #: ``None`` = control plane only; a traffic-model name rides a packet
    #: workload on the routed DAG (engine ``dataplane``).  ``delay_model``
    #: then configures the *control-plane* channels (default ``fixed``).
    traffic: Optional[str] = None
    #: Crash-stop protocol faults: this many non-destination nodes (picked
    #: by :func:`repro.faults.nodes.select_crashed_ids` from the topology
    #: seed) keep their announced heights but silently stop reversing.
    #: Supported by the kernel and async engines only.
    node_faults: int = 0

    def validate(self) -> None:
        """Check every axis against the registries; raise ``ValueError`` if off."""
        if self.family not in FAMILY_NAMES:
            raise ValueError(f"unknown family {self.family!r}")
        if self.algorithm not in ALGORITHM_FACTORIES and self.algorithm != CRASH_SENTINEL:
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.scheduler not in SCHEDULER_FACTORIES:
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.failure_model not in FAILURE_MODELS:
            raise ValueError(f"unknown failure model {self.failure_model!r}")
        if self.failure_model == "mobility" and self.family != "geometric":
            raise ValueError("the mobility model only applies to the geometric family")
        if self.size < 2:
            raise ValueError("size must be at least 2")
        if self.failure_count < 0:
            raise ValueError("failure_count must be non-negative")
        if self.delay_model is not None and self.delay_model not in DELAY_MODEL_NAMES:
            raise ValueError(
                f"unknown delay model {self.delay_model!r}; "
                f"choose from {', '.join(DELAY_MODEL_NAMES)}"
            )
        if not 0.0 <= self.loss < 1.0:
            raise ValueError("loss must be in [0, 1)")
        if self.delay_model is None and self.loss != 0.0:
            raise ValueError("loss applies to async scenarios only (set a delay_model)")
        if self.delay_model is not None and self.failure_model == "mobility":
            raise ValueError("the async engine does not support mobility churn")
        if self.traffic is not None and self.traffic not in TRAFFIC_MODEL_NAMES:
            raise ValueError(
                f"unknown traffic model {self.traffic!r}; "
                f"choose from {', '.join(TRAFFIC_MODEL_NAMES)}"
            )
        if self.traffic is not None and self.failure_model == "mobility":
            raise ValueError("the dataplane engine does not support mobility churn")
        if self.node_faults < 0:
            raise ValueError("node_faults must be non-negative")
        if self.node_faults > self.size - 2:
            raise ValueError(
                "node_faults must leave the destination and at least one "
                f"live node ({self.node_faults} faults on size {self.size})"
            )
        if self.node_faults > 0 and self.failure_model != "none":
            raise ValueError(
                "node_faults cannot be combined with link-failure/mobility churn"
            )
        if self.node_faults > 0 and self.traffic is not None:
            raise ValueError("the dataplane engine does not support node_faults")

    @property
    def run_id(self) -> str:
        """Stable content hash identifying this run in the result store."""
        identity = {
            "family": self.family,
            "size": self.size,
            "algorithm": self.algorithm,
            "scheduler": self.scheduler,
            "topology_seed": self.topology_seed,
            "scheduler_seed": self.scheduler_seed,
            "replicate": self.replicate,
            "failure_model": self.failure_model,
            "failure_count": self.failure_count,
            "max_steps": self.max_steps,
        }
        # async axes join the identity only when set, so every pre-async
        # run_id (and therefore campaign resume against old stores) is stable
        if self.delay_model is not None:
            identity["delay_model"] = self.delay_model
            identity["loss"] = self.loss
        # ... and the traffic axis likewise, preserving pre-dataplane run_ids
        if self.traffic is not None:
            identity["traffic"] = self.traffic
        # ... and node faults, preserving pre-fault-plane run_ids
        if self.node_faults:
            identity["node_faults"] = self.node_faults
        blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
        return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (what is sent to worker processes and stored).

        Built by hand rather than with :func:`dataclasses.asdict` — the
        latter deep-copies every field and dominated the campaign engine's
        per-run dispatch overhead (every field here is already plain data).
        """
        return {
            "family": self.family,
            "size": self.size,
            "algorithm": self.algorithm,
            "scheduler": self.scheduler,
            "topology_seed": self.topology_seed,
            "scheduler_seed": self.scheduler_seed,
            "replicate": self.replicate,
            "failure_model": self.failure_model,
            "failure_count": self.failure_count,
            "max_steps": self.max_steps,
            "campaign": self.campaign,
            "delay_model": self.delay_model,
            "loss": self.loss,
            "traffic": self.traffic,
            "node_faults": self.node_faults,
            "run_id": self.run_id,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (extra keys ignored)."""
        fields = {
            "family", "size", "algorithm", "scheduler", "topology_seed",
            "scheduler_seed", "replicate", "failure_model", "failure_count",
            "max_steps", "campaign", "delay_model", "loss", "traffic",
            "node_faults",
        }
        return cls(**{k: v for k, v in data.items() if k in fields})


@dataclass
class CampaignSpec:
    """Cross-product description of an experiment campaign."""

    name: str = "campaign"
    families: Sequence[str] = ("chain",)
    algorithms: Sequence[str] = ("pr", "fr")
    schedulers: Sequence[str] = ("greedy",)
    sizes: Sequence[int] = (10,)
    replicates: int = 1
    base_seed: int = 0
    failure_models: Sequence[Tuple[str, int]] = field(default_factory=lambda: [("none", 0)])
    max_steps: Optional[int] = None
    #: Async axes: ``(None,)`` keeps the campaign synchronous; delay-model
    #: names open the delay × loss × churn cross-product on the async engine.
    delay_models: Sequence[Optional[str]] = (None,)
    losses: Sequence[float] = (0.0,)
    #: Data-plane axis: ``(None,)`` keeps the campaign control-plane only;
    #: traffic-model names ride packet workloads on the dataplane engine.
    traffics: Sequence[Optional[str]] = (None,)
    #: Crash-stop axis: how many nodes silently stop reversing per cell.
    #: ``(0,)`` keeps the campaign fault-free.
    node_fault_counts: Sequence[int] = (0,)

    def __post_init__(self) -> None:
        self.families = tuple(self.families)
        self.algorithms = tuple(self.algorithms)
        self.schedulers = tuple(self.schedulers)
        self.sizes = tuple(int(s) for s in self.sizes)
        self.failure_models = tuple((str(m), int(k)) for m, k in self.failure_models)
        self.delay_models = tuple(
            None if m is None else str(m) for m in self.delay_models
        )
        self.losses = tuple(float(p) for p in self.losses)
        self.traffics = tuple(None if t is None else str(t) for t in self.traffics)
        self.node_fault_counts = tuple(int(k) for k in self.node_fault_counts)

    @staticmethod
    def _cell_applicable(
        family: str,
        failure_model: str,
        delay_model: Optional[str],
        loss: float,
        traffic: Optional[str] = None,
        node_faults: int = 0,
        size: Optional[int] = None,
    ) -> bool:
        """Whether one cross-product cell expands to a valid scenario.

        Non-applicable combinations are skipped rather than rejected, the
        same convention as mobility on non-geometric families: a mixed
        campaign (e.g. ``delay_models=(None, "uniform")``) sweeps each axis
        value over the cells where it makes sense.
        """
        if failure_model == "mobility" and family != "geometric":
            return False
        if delay_model is None and loss != 0.0:
            return False  # loss is an async channel property
        if delay_model is not None and failure_model == "mobility":
            return False  # the async engine does not support mobility churn
        if traffic is not None and failure_model == "mobility":
            return False  # the dataplane engine does not support mobility churn
        if node_faults > 0:
            if failure_model != "none":
                return False  # crash-stop faults never combine with churn
            if traffic is not None:
                return False  # the dataplane engine does not support node_faults
            if size is not None and node_faults > size - 2:
                return False  # destination + one live node must survive
        return True

    @property
    def run_count(self) -> int:
        """Size of the expanded run list (matches ``len(self.expand())``)."""
        cells = 0
        for family in self.families:
            for size in self.sizes:
                cells += sum(
                    1
                    for model, _ in self.failure_models
                    for delay_model in self.delay_models
                    for loss in self.losses
                    for traffic in self.traffics
                    for node_faults in self.node_fault_counts
                    if self._cell_applicable(
                        family, model, delay_model, loss, traffic,
                        node_faults, size,
                    )
                )
        return cells * len(self.algorithms) * len(self.schedulers) * self.replicates

    def expand(self) -> List[ScenarioSpec]:
        """The deterministic, seed-stamped run list of this campaign.

        Iteration order is the declared axis order (families outermost,
        failure models then delay models then losses innermost), so the
        list — and every ``run_id`` in it — is reproducible from the spec
        alone.
        """
        runs: List[ScenarioSpec] = []
        for family in self.families:
            for size in self.sizes:
                for replicate in range(self.replicates):
                    topology_seed = derive_seed(
                        self.base_seed, "topology", family, size, replicate
                    )
                    for algorithm in self.algorithms:
                        for scheduler in self.schedulers:
                            scheduler_seed = derive_seed(
                                self.base_seed, "scheduler", family, size,
                                replicate, algorithm, scheduler,
                            )
                            for failure_model, failure_count in self.failure_models:
                                for delay_model in self.delay_models:
                                    for loss in self.losses:
                                        for traffic in self.traffics:
                                            for node_faults in self.node_fault_counts:
                                                if not self._cell_applicable(
                                                    family, failure_model,
                                                    delay_model, loss, traffic,
                                                    node_faults, size,
                                                ):
                                                    continue
                                                spec = ScenarioSpec(
                                                    family=family,
                                                    size=size,
                                                    algorithm=algorithm,
                                                    scheduler=scheduler,
                                                    topology_seed=topology_seed,
                                                    scheduler_seed=scheduler_seed,
                                                    replicate=replicate,
                                                    failure_model=failure_model,
                                                    failure_count=failure_count,
                                                    max_steps=self.max_steps,
                                                    campaign=self.name,
                                                    delay_model=delay_model,
                                                    loss=loss,
                                                    traffic=traffic,
                                                    node_faults=node_faults,
                                                )
                                                spec.validate()
                                                runs.append(spec)
        return runs

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form, stored next to the results for provenance."""
        return {
            "name": self.name,
            "families": list(self.families),
            "algorithms": list(self.algorithms),
            "schedulers": list(self.schedulers),
            "sizes": list(self.sizes),
            "replicates": self.replicates,
            "base_seed": self.base_seed,
            "failure_models": [list(fm) for fm in self.failure_models],
            "max_steps": self.max_steps,
            "delay_models": list(self.delay_models),
            "losses": list(self.losses),
            "traffics": list(self.traffics),
            "node_fault_counts": list(self.node_fault_counts),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        """Rebuild a campaign from :meth:`to_dict` output."""
        return cls(
            name=data.get("name", "campaign"),
            families=data.get("families", ("chain",)),
            algorithms=data.get("algorithms", ("pr", "fr")),
            schedulers=data.get("schedulers", ("greedy",)),
            sizes=data.get("sizes", (10,)),
            replicates=data.get("replicates", 1),
            base_seed=data.get("base_seed", 0),
            failure_models=[tuple(fm) for fm in data.get("failure_models", [("none", 0)])],
            max_steps=data.get("max_steps"),
            delay_models=data.get("delay_models", (None,)),
            losses=data.get("losses", (0.0,)),
            traffics=data.get("traffics", (None,)),
            node_fault_counts=data.get("node_fault_counts", (0,)),
        )
