"""The execution-engine registry: every way to run a scenario, as peers.

Historically the ``engine=auto|kernel|legacy`` dispatch was hardcoded in
:mod:`repro.experiments.runner`; adding the asynchronous message-passing
engine made that a three-way special case, so the dispatch now lives behind a
small registry.  An :class:`ExecutionEngine` is one complete way of executing
a :class:`~repro.experiments.spec.ScenarioSpec`:

``kernel``
    The compiled signature-kernel fast path (synchronous scheduler model;
    PR / OneStepPR / NewPR / FR on any registry scheduler).
``legacy``
    The object-level I/O-automaton oracle (synchronous; every algorithm,
    including BLL).
``async``
    The compiled asynchronous message-passing engine
    (:class:`~repro.distributed.fast_network.FastAsyncNetwork`): nodes react
    to height messages over delayed / lossy / churning links.  Selected by
    giving the spec a ``delay_model``; supports the height-based algorithms
    (``pr`` → partial mode, ``fr`` → full mode).

Engines declare which specs they :meth:`~ExecutionEngine.supports`;
``resolve_engine("auto", spec)`` picks the highest-priority supporting
engine, so a spec with a ``delay_model`` routes to the async engine and a
synchronous BLL spec falls back to the legacy path, with no caller knowing
the engine list.  Registering a new engine is one
:func:`register_engine` call — the runner, executor, CLI and store plumbing
pick it up through the registry.

Engines ``execute(spec, record, deadline)`` by mutating the flat result
record in place; they must flush partial work tallies even when raising
(timeouts are recorded with the work done so far).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.spec import ScenarioSpec

#: The pseudo-engine name that picks the best supporting engine per spec.
ENGINE_AUTO = "auto"


class ExecutionEngine(ABC):
    """One complete way of executing a scenario spec.

    Subclasses define ``name`` (the registry key and the value of the result
    record's ``engine`` field) and ``auto_priority`` (higher wins when
    ``auto`` resolves among supporting engines).
    """

    name: str = ""
    auto_priority: int = 0

    @abstractmethod
    def supports(self, spec: "ScenarioSpec") -> bool:
        """Whether this engine can execute ``spec`` without changing semantics."""

    def unsupported_reason(self, spec: "ScenarioSpec") -> str:
        """Human-readable reason used when an explicit choice is rejected."""
        return f"engine {self.name!r} does not support this spec"

    @abstractmethod
    def execute(
        self,
        spec: "ScenarioSpec",
        record: Dict[str, Any],
        deadline: Optional[float],
    ) -> None:
        """Run the scenario, mutating ``record`` in place.

        Must update the record's work tallies (``node_steps`` etc.) even on
        a timeout / error exit, so partial work is never lost.
        """


#: name -> engine instance, in registration order (auto ties break on
#: ``auto_priority``, then registration order).
ENGINE_REGISTRY: Dict[str, ExecutionEngine] = {}


def register_engine(engine: ExecutionEngine, replace: bool = False) -> ExecutionEngine:
    """Add an engine to the registry (``replace=True`` to override)."""
    if not engine.name or engine.name == ENGINE_AUTO:
        raise ValueError(f"invalid engine name {engine.name!r}")
    if engine.name in ENGINE_REGISTRY and not replace:
        raise ValueError(f"engine {engine.name!r} already registered")
    ENGINE_REGISTRY[engine.name] = engine
    return engine


def engine_names() -> Tuple[str, ...]:
    """Every selectable engine name (``auto`` first, then the registry)."""
    return (ENGINE_AUTO, *ENGINE_REGISTRY)


def get_engine(name: str) -> ExecutionEngine:
    """The registered engine of that name (``auto`` is not an engine)."""
    try:
        return ENGINE_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; choose from {', '.join(engine_names())}"
        ) from None


def resolve_engine(engine: str, spec: "ScenarioSpec") -> str:
    """The engine name a spec will actually run on.

    ``auto`` picks the highest-priority registered engine that supports the
    spec; an explicit engine name must support the spec or a ``ValueError``
    explains why (silently changing semantics is worse than failing).
    """
    if engine == ENGINE_AUTO:
        candidates = sorted(
            ENGINE_REGISTRY.values(), key=lambda e: -e.auto_priority
        )
        for candidate in candidates:
            if candidate.supports(spec):
                return candidate.name
        raise ValueError(f"no registered engine supports spec {spec!r}")
    chosen = get_engine(engine)
    if not chosen.supports(spec):
        raise ValueError(chosen.unsupported_reason(spec))
    return chosen.name
