"""Exhaustive and randomized exploration of automaton state spaces.

The paper's invariants are universally quantified over *reachable states*.
On small instances the reachable state space of each automaton is finite and
small enough to enumerate exhaustively, which turns the paper's proofs into
machine-checked facts for those instances:

* :class:`~repro.exploration.state_space.StateSpaceExplorer` — breadth-first
  exploration of every reachable state (following every enabled action),
  checking a set of named predicates on each state;
* :mod:`repro.exploration.random_walk` — long random executions for larger
  instances where exhaustive exploration is infeasible;
* :mod:`repro.exploration.enumerate_graphs` — enumeration of all small DAG
  instances (up to isomorphism-insensitive labelling) so the exhaustive check
  can quantify over *graphs* as well as over states.
"""

from repro.exploration.state_space import ExplorationReport, StateSpaceExplorer
from repro.exploration.random_walk import RandomWalkChecker, RandomWalkReport
from repro.exploration.enumerate_graphs import (
    all_dag_instances,
    all_connected_dag_instances,
)

__all__ = [
    "ExplorationReport",
    "RandomWalkChecker",
    "RandomWalkReport",
    "StateSpaceExplorer",
    "all_connected_dag_instances",
    "all_dag_instances",
]
