"""Exhaustive and randomized exploration of automaton state spaces.

The paper's invariants are universally quantified over *reachable states*.
This package turns those universally-quantified claims into machine-checked
facts at the largest instance sizes the hardware allows:

* :class:`~repro.exploration.checker.ModelChecker` — the production engine:
  breadth-first exploration directly over compact int state signatures (no
  state materialisation on the hot path), with a sharded multiprocessing
  mode, twin-node symmetry reduction, an optional disk-spilled visited set
  and first-class counterexample traces.  Surfaced as ``repro check``;
* :class:`~repro.exploration.state_space.StateSpaceExplorer` — the simple
  state-materialising reference explorer, kept as the oracle the production
  engine is differentially tested against;
* :mod:`repro.exploration.random_walk` — long random executions for
  instances where exhaustive exploration is infeasible;
* :mod:`repro.exploration.enumerate_graphs` — enumeration of all small DAG
  instances so the exhaustive check can quantify over *graphs* as well as
  over states.

The compiled signature kernels the checker explores with now live in
:mod:`repro.kernels` (they are shared with the scenario simulation engine);
the historical names are still re-exported here and from
:mod:`repro.exploration.frontier`.
"""

from repro.exploration.checker import CheckReport, ModelChecker, check_exhaustively
from repro.exploration.counterexample import CounterexampleTrace
from repro.exploration.frontier import (
    SignatureExpander,
    VisitedSet,
    compile_expander,
    mask_is_acyclic,
    mask_is_destination_oriented,
    twin_node_classes,
)
from repro.exploration.state_space import (
    ExplorationReport,
    PredicateFailure,
    StateSpaceExplorer,
    explore_and_check,
)
from repro.exploration.random_walk import RandomWalkChecker, RandomWalkReport
from repro.exploration.enumerate_graphs import (
    all_dag_instances,
    all_connected_dag_instances,
)

__all__ = [
    "CheckReport",
    "CounterexampleTrace",
    "ExplorationReport",
    "ModelChecker",
    "PredicateFailure",
    "RandomWalkChecker",
    "RandomWalkReport",
    "SignatureExpander",
    "StateSpaceExplorer",
    "VisitedSet",
    "all_connected_dag_instances",
    "all_dag_instances",
    "check_exhaustively",
    "compile_expander",
    "explore_and_check",
    "mask_is_acyclic",
    "mask_is_destination_oriented",
    "twin_node_classes",
]
