"""Parallel exhaustive model checker over compact int state signatures.

:class:`ModelChecker` is the production engine behind ``repro check``.  It
explores every reachable state of an automaton breadth-first, working
directly on the int signatures from :mod:`repro.exploration.frontier` (no
state materialisation on the hot path), and offers:

* **per-state invariant hooks** — the bundles from
  :mod:`repro.verification.invariants` plus two built-in signature-level
  checks: ``acyclic`` (Theorems 4.3/5.5, checked with a mask-only Kahn scan)
  and ``progress`` (every quiescent state is destination oriented — the
  termination/goal condition of link reversal);
* **counterexample extraction** — predecessor pointers are kept per state,
  and any predicate violation is reconstructed into a replayable
  :class:`~repro.exploration.counterexample.CounterexampleTrace`;
* **sharded exploration** — with ``workers >= 2`` the signature space is
  hash-partitioned across worker processes that exchange cross-shard
  frontier entries in BFS rounds (each worker owns the signatures hashing to
  its shard, dedups them locally, and routes successors to their owners);
* **twin-node symmetry reduction** (``symmetry=True``) and a **disk-spilled
  visited set** (``spill_threshold=...``) for explorations beyond what a
  Python set can hold.

Semantics match the legacy :class:`~repro.exploration.state_space
.StateSpaceExplorer` exactly in single-process mode — same BFS order, same
state/transition/depth/quiescence accounting, same truncation behaviour —
which the differential regression tests pin down.  Automata without a
compiled kernel fall back to a generic state-materialising path (single
process, no spill).
"""

from __future__ import annotations

import logging
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional, Set, Tuple

try:  # the vectorised frontier path needs numpy; scalar paths do not
    import numpy as np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    np = None  # type: ignore[assignment]

from repro import telemetry as _telemetry
from repro._mp import fork_preferring_context
from repro.automata.ioa import IOAutomaton
from repro.exploration.counterexample import CounterexampleTrace
from repro.exploration.frontier import (
    SignatureExpander,
    VisitedSet,
    compile_expander,
    mask_is_acyclic,
    mask_is_destination_oriented,
    shard_of,
)
from repro.kernels.vector import (
    compile_vector_expander,
    decode_token,
    mask_is_acyclic_batch,
    mask_is_destination_oriented_batch,
    shard_of_batch,
)
from repro.exploration.state_space import (
    PredicateFailure,
    StatePredicate,
    _predicate_outcome,
)

logger = logging.getLogger(__name__)

#: Built-in predicate names (checked on the signature level, no decoding).
ACYCLIC = "acyclic"
PROGRESS = "progress"

_PROGRESS_DETAIL = "quiescent state is not destination oriented"

#: Deferred-acyclicity batch size on the vectorised path: when no other
#: failure source can interleave, freshly discovered states are buffered
#: across rounds and Kahn-checked in bulk once this many accumulate.
_ACYCLIC_BATCH = 4096


@dataclass
class CheckReport:
    """Outcome of one :meth:`ModelChecker.run` invocation."""

    automaton_name: str
    states_explored: int = 0
    transitions_explored: int = 0
    quiescent_states: int = 0
    truncated: bool = False
    max_depth: int = 0
    failures: List[PredicateFailure] = field(default_factory=list)
    predicate_names: Tuple[str, ...] = ()
    workers: int = 1
    symmetry_reduced: bool = False
    spilled: bool = False
    #: Whether the vectorised (whole-frontier numpy) engine ran this check.
    vectorized: bool = False
    wall_time_s: float = 0.0
    #: Populated only when ``collect_signatures=True`` (test instrumentation).
    signatures: Optional[Set[Hashable]] = None
    #: Visited-set spill/compaction counters (telemetry surface, not stored).
    spill_stats: Optional[Dict[str, int]] = None

    @property
    def all_predicates_hold(self) -> bool:
        """Whether no predicate was violated on any explored state."""
        return not self.failures

    def __str__(self) -> str:
        status = "OK" if self.all_predicates_hold else f"{len(self.failures)} FAILURE(S)"
        suffix = " (truncated)" if self.truncated else ""
        extras = []
        if self.workers > 1:
            extras.append(f"{self.workers} workers")
        if self.symmetry_reduced:
            extras.append("symmetry-reduced")
        if self.vectorized:
            extras.append("vectorised")
        if self.spilled:
            extras.append("spilled")
        extra = f" [{', '.join(extras)}]" if extras else ""
        return (
            f"[{self.automaton_name}] {self.states_explored} states, "
            f"{self.transitions_explored} transitions, depth {self.max_depth}, "
            f"{self.quiescent_states} quiescent — {status}{suffix}{extra}"
        )

    def to_record(self, **extra: Any) -> Dict[str, Any]:
        """Flat JSON-safe record for the experiments result store.

        ``status`` is ``"violated"`` when any predicate failed, else
        ``"truncated"`` / ``"ok"``; counterexample traces ride along under
        ``counterexamples`` in the serialised trace schema.  Only the
        reconstructed traces (bounded by the checker's
        ``max_traced_failures``) are serialised — ``violations`` still
        counts every failure, so a predicate failing on a large fraction of
        a huge space cannot balloon the stored record.
        """
        if self.failures:
            status = "violated"
        elif self.truncated:
            status = "truncated"
        else:
            status = "ok"
        record: Dict[str, Any] = {
            "status": status,
            "states_explored": self.states_explored,
            "transitions_explored": self.transitions_explored,
            "quiescent_states": self.quiescent_states,
            "max_depth": self.max_depth,
            "truncated": self.truncated,
            "violations": len(self.failures),
            "predicates": list(self.predicate_names),
            "workers": self.workers,
            "symmetry_reduced": self.symmetry_reduced,
            "spilled": self.spilled,
            "vectorized": self.vectorized,
            "wall_time_s": round(self.wall_time_s, 4),
            # only a verified claim when the acyclicity check actually ran
            "acyclic_final": (
                not any(f.predicate_name == ACYCLIC for f in self.failures)
                if ACYCLIC in self.predicate_names
                else None
            ),
            "counterexamples": [
                f.trace.to_dict() for f in self.failures if f.trace.reconstructed
            ],
        }
        record.update(extra)
        return record


# ----------------------------------------------------------------------
# shared per-state evaluation
# ----------------------------------------------------------------------
def _discovery_failures(
    sig: Hashable,
    expander: SignatureExpander,
    predicates: Mapping[str, StatePredicate],
    check_acyclicity: bool,
) -> List[Tuple[Hashable, str, str]]:
    """Evaluate the discovery-time checks on one signature."""
    failures: List[Tuple[Hashable, str, str]] = []
    if check_acyclicity:
        mask = expander.orientation_mask(sig)
        if not mask_is_acyclic(expander.instance, mask):
            cycle = expander.state_for(sig).orientation.find_cycle()
            failures.append(
                (sig, ACYCLIC, "cycle: " + " -> ".join(map(str, cycle)))
            )
    if predicates:
        state = expander.state_for(sig)
        for name, predicate in predicates.items():
            holds, detail = _predicate_outcome(predicate(state))
            if not holds:
                failures.append((sig, name, detail))
    return failures


# ----------------------------------------------------------------------
# sharded worker process
# ----------------------------------------------------------------------
def _shard_worker(
    conn,
    index: int,
    shards: int,
    automaton: IOAutomaton,
    predicates: Mapping[str, StatePredicate],
    options: Dict[str, Any],
) -> None:
    """Own one hash-shard of signature space; driven round-by-round by the parent.

    Protocol (parent → worker, worker replies on the same pipe):

    * ``("round", entries)`` — ``entries`` are ``(sig, parent_sig, token)``
      triples routed to this shard.  The worker dedups them against its
      visited set, records predecessor pointers, runs the discovery checks,
      expands the fresh signatures and replies with
      ``(new, transitions, quiescent, out_by_owner, failures)``.
    * ``("probe", entries)`` — read-only: replies with how many entries are
      genuinely new (absent from the visited set, deduped within the batch)
      *without* inserting them, so the visited set keeps matching
      ``states_explored``.  Used to decide whether hitting ``max_states``
      with a pending frontier actually truncated anything.
    * ``("parent_of", sig)`` — replies with the stored ``(parent, token)``.
    * ``("signatures",)`` — replies with the full visited set (tests only).
    * ``("stats",)`` — replies with ``{"spilled_runs": int}``.
    * ``("stop",)`` — terminates the worker loop.

    Any exception while handling a message is shipped back as a
    ``("__shard_error__", detail)`` reply instead of killing the process,
    so the parent can raise a diagnosable error rather than an EOF.
    """
    expander = compile_expander(automaton, options["single_actions_only"])
    symmetry = options["symmetry"]
    check_acyclicity = options["check_acyclicity"]
    check_progress = options["check_progress"]
    spill_threshold = options["spill_threshold"]
    visited = VisitedSet(
        key_bytes=(expander.signature_bits + 7) // 8 if spill_threshold else None,
        spill_threshold=spill_threshold,
        spill_dir=options["spill_dir"],
        max_runs=options.get("spill_max_runs", 8),
    )
    if options.get("vectorized"):
        vector = compile_vector_expander(expander)
        if vector is None:  # pragma: no cover - parent compiled the same gate
            conn.send(("__shard_error__", "vector kernel unavailable in worker"))
            return
        _shard_worker_vector(conn, index, shards, expander, vector, predicates,
                             options, visited)
        return
    predecessors: Optional[Dict[Hashable, Tuple]] = {} if options["track_traces"] else None
    instance = expander.instance

    while True:
        message = conn.recv()
        kind = message[0]
        try:
            if kind == "round":
                new = transitions = quiescent = 0
                out: Dict[int, List[Tuple[Hashable, Hashable, Tuple[int, ...]]]] = {}
                failures: List[Tuple[Hashable, str, str]] = []
                fresh: List[Hashable] = []
                for sig, parent, token in message[1]:
                    if not visited.add(sig):
                        continue
                    if predecessors is not None:
                        predecessors[sig] = (parent, token)
                    new += 1
                    fresh.append(sig)
                    failures.extend(
                        _discovery_failures(sig, expander, predicates, check_acyclicity)
                    )
                routed: set = set()  # round-local dedup of outgoing frontier entries
                for sig in fresh:
                    successors = expander.successors(sig)
                    if not successors:
                        quiescent += 1
                        if check_progress and not mask_is_destination_oriented(
                            instance, expander.orientation_mask(sig)
                        ):
                            failures.append((sig, PROGRESS, _PROGRESS_DETAIL))
                        continue
                    for token, successor in successors:
                        transitions += 1
                        if symmetry:
                            successor = expander.canonicalize(successor)
                        if successor in routed:
                            continue
                        owner = shard_of(successor, shards)
                        if owner == index and successor in visited:
                            continue
                        routed.add(successor)
                        out.setdefault(owner, []).append((successor, sig, token))
                conn.send((new, transitions, quiescent, out, failures))
            elif kind == "probe":
                batch: set = set()
                for sig, _parent, _token in message[1]:
                    if sig not in visited:
                        batch.add(sig)
                conn.send(len(batch))
            elif kind == "parent_of":
                conn.send(
                    predecessors.get(message[1]) if predecessors is not None else None
                )
            elif kind == "signatures":
                conn.send(set(visited))
            elif kind == "stats":
                conn.send({"spilled_runs": visited.spilled_runs})
            else:  # "stop"
                visited.close()
                conn.close()
                return
        except Exception as error:  # noqa: BLE001 — ship the failure to the parent
            conn.send(("__shard_error__", f"{type(error).__name__}: {error}"))


def _shard_worker_vector(
    conn,
    index: int,
    shards: int,
    expander: SignatureExpander,
    vector,
    predicates: Mapping[str, StatePredicate],
    options: Dict[str, Any],
    visited: VisitedSet,
) -> None:
    """Vector twin of the :func:`_shard_worker` message loop.

    Same protocol, but frontier entries travel as ``(sigs, parent_sigs,
    tokens)`` uint64 array triples instead of per-entry tuples — a token of
    0 marks the root entry.  One extra message exists: ``("drain",)``
    flushes the worker's deferred acyclicity buffer and replies with any
    remaining failures, sent by the parent once the BFS ends and before
    traces are collected.
    """
    check_acyclicity = options["check_acyclicity"]
    check_progress = options["check_progress"]
    instance = expander.instance
    edge_mask = np.uint64(expander._edge_mask)
    predecessors = _ArrayPredecessors() if options["track_traces"] else None
    defer_acyclic = check_acyclicity and not predicates and not check_progress
    pending: List = []
    pending_count = 0

    def flush_acyclic(failures: List[Tuple[Hashable, str, str]]) -> None:
        nonlocal pending_count
        if not pending:
            return
        sigs = np.concatenate(pending) if len(pending) > 1 else pending[0]
        pending.clear()
        pending_count = 0
        good = mask_is_acyclic_batch(instance, sigs & edge_mask)
        for sig in sigs[~good]:
            sig = int(sig)
            cycle = expander.state_for(sig).orientation.find_cycle()
            failures.append(
                (sig, ACYCLIC, "cycle: " + " -> ".join(map(str, cycle)))
            )

    while True:
        message = conn.recv()
        kind = message[0]
        try:
            if kind == "round":
                sigs, parent_sigs, tokens = message[1]
                new = transitions = quiescent_count = 0
                out: Dict[int, Tuple] = {}
                failures: List[Tuple[Hashable, str, str]] = []
                if sigs.size:
                    unique, first_index = np.unique(sigs, return_index=True)
                    known = visited.contains_many(unique)
                    new_first = np.sort(first_index[~known])
                    fresh = sigs[new_first]
                    visited.update_sorted(unique[~known])
                    new = int(fresh.size)
                else:
                    fresh = sigs
                if new:
                    if predecessors is not None:
                        predecessors.append_round(
                            fresh, parent_sigs[new_first], tokens[new_first]
                        )
                    # discovery checks in scalar order: per fresh signature,
                    # acyclicity first, then each predicate
                    events: List[Tuple[int, int, Tuple]] = []
                    if check_acyclicity:
                        if defer_acyclic:
                            pending.append(fresh)
                            pending_count += new
                            if pending_count >= _ACYCLIC_BATCH:
                                flush_acyclic(failures)
                        else:
                            good = mask_is_acyclic_batch(
                                instance, fresh & edge_mask
                            )
                            for k in np.flatnonzero(~good):
                                sig = int(fresh[int(k)])
                                cycle = (
                                    expander.state_for(sig)
                                    .orientation.find_cycle()
                                )
                                events.append(
                                    (
                                        int(k),
                                        0,
                                        (
                                            sig,
                                            ACYCLIC,
                                            "cycle: "
                                            + " -> ".join(map(str, cycle)),
                                        ),
                                    )
                                )
                    if predicates:
                        for k in range(new):
                            state = expander.state_for(int(fresh[k]))
                            for check, (name, predicate) in enumerate(
                                predicates.items(), start=1
                            ):
                                holds, detail = _predicate_outcome(
                                    predicate(state)
                                )
                                if not holds:
                                    events.append(
                                        (k, check, (int(fresh[k]), name, detail))
                                    )
                    if events:
                        events.sort(key=lambda event: event[:2])
                        failures.extend(event[2] for event in events)
                    expansion = vector.expand(fresh)
                    transitions = int(expansion.successors.size)
                    quiescent_count = int(expansion.quiescent.size)
                    if check_progress and expansion.quiescent.size:
                        oriented = mask_is_destination_oriented_batch(
                            instance, fresh[expansion.quiescent] & edge_mask
                        )
                        for position in expansion.quiescent[~oriented]:
                            failures.append(
                                (
                                    int(fresh[int(position)]),
                                    PROGRESS,
                                    _PROGRESS_DETAIL,
                                )
                            )
                    if transitions:
                        # round-local dedup: keep the first emission of each
                        # successor, exactly like the scalar ``routed`` set
                        keep_order = np.sort(
                            np.unique(expansion.successors, return_index=True)[1]
                        )
                        routed_sigs = expansion.successors[keep_order]
                        routed_parents = fresh[expansion.parents[keep_order]]
                        routed_tokens = expansion.tokens[keep_order]
                        owners = shard_of_batch(routed_sigs, shards)
                        keep = np.ones(routed_sigs.size, dtype=bool)
                        mine = owners == index
                        if mine.any():
                            # self-owned successors can be filtered against
                            # the local visited set before shipping
                            values = routed_sigs[mine]
                            order = np.argsort(values, kind="stable")
                            hit = visited.contains_many(values[order])
                            unhit = np.empty(values.size, dtype=bool)
                            unhit[order] = ~hit
                            keep[np.flatnonzero(mine)] = unhit
                        if not keep.all():
                            routed_sigs = routed_sigs[keep]
                            routed_parents = routed_parents[keep]
                            routed_tokens = routed_tokens[keep]
                            owners = owners[keep]
                        for owner in np.unique(owners):
                            selection = owners == owner
                            out[int(owner)] = (
                                routed_sigs[selection],
                                routed_parents[selection],
                                routed_tokens[selection],
                            )
                conn.send((new, transitions, quiescent_count, out, failures))
            elif kind == "probe":
                probe_sigs = message[1]
                count = 0
                if probe_sigs.size:
                    unique = np.unique(probe_sigs)
                    count = int((~visited.contains_many(unique)).sum())
                conn.send(count)
            elif kind == "drain":
                drained: List[Tuple[Hashable, str, str]] = []
                flush_acyclic(drained)
                conn.send(drained)
            elif kind == "parent_of":
                conn.send(
                    predecessors.get(message[1]) if predecessors is not None else None
                )
            elif kind == "signatures":
                conn.send(set(visited))
            elif kind == "stats":
                conn.send({"spilled_runs": visited.spilled_runs, **visited.stats})
            else:  # "stop"
                visited.close()
                conn.close()
                return
        except Exception as error:  # noqa: BLE001 — ship the failure to the parent
            conn.send(("__shard_error__", f"{type(error).__name__}: {error}"))


def _shard_recv(connection):
    """Receive a worker reply, surfacing shipped worker exceptions."""
    reply = connection.recv()
    if isinstance(reply, tuple) and len(reply) == 2 and reply[0] == "__shard_error__":
        raise RuntimeError(f"shard worker failed: {reply[1]}")
    return reply


# ----------------------------------------------------------------------
# lazy predecessor store for the vectorised paths
# ----------------------------------------------------------------------
class _ArrayPredecessors:
    """Predecessor pointers kept as per-round arrays, decoded lazily.

    The vectorised paths discover thousands of states per round; a dict
    entry per state would reintroduce the per-state Python cost the batch
    engine removes.  Rounds are appended as raw arrays and only materialised
    into a lookup table when a counterexample actually needs a predecessor
    walk — failures are the rare case, clean runs never pay.

    A token of 0 marks a root entry (the initial state has no actors), so
    the sharded exchange can ship roots in the same array triple.
    """

    def __init__(self, initial: Optional[int] = None):
        self._rounds: List[Tuple] = []
        self._table: Optional[Dict] = None
        self._initial = initial

    def append_round(self, sigs, parent_sigs, tokens) -> None:
        self._rounds.append((sigs, parent_sigs, tokens))
        self._table = None

    def get(self, sig: int) -> Optional[Tuple]:
        if self._table is None:
            table: Dict = {}
            if self._initial is not None:
                table[self._initial] = (None, None)
            for sigs, parent_sigs, tokens in self._rounds:
                for value, parent, token in zip(
                    sigs.tolist(), parent_sigs.tolist(), tokens.tolist()
                ):
                    table[value] = (
                        (None, None) if token == 0 else (parent, decode_token(token))
                    )
            self._table = table
        return self._table.get(sig)


# ----------------------------------------------------------------------
# the checker
# ----------------------------------------------------------------------
class ModelChecker:
    """Exhaustive BFS model checker with sharding, symmetry and spill.

    Parameters
    ----------
    automaton:
        The automaton to explore.  PR / OneStepPR / NewPR / FR run on
        compiled signature kernels; anything else uses the generic
        state-materialising path (single process only).
    predicates:
        Named state predicates (the bundles from
        :mod:`repro.verification.invariants`), evaluated on every newly
        discovered state.  These decode the state; the built-in checks below
        do not.
    max_states:
        Truncation bound on distinct states, mirroring the legacy explorer.
    workers:
        ``>= 2`` enables the sharded multiprocessing mode (hash-partitioned
        signature space, round-based frontier exchange).  For exhaustive
        (untruncated) runs the visited sets, counts and failure sets are
        identical to a single-process run; when ``max_states`` binds, the
        sharded cap is round-granular (the count may overshoot slightly and
        an exactly-exhausting final round reports a complete run).
    single_actions_only:
        Restrict PR to singleton ``reverse({u})`` actions (the
        OneStepPR-reachable subset), exactly like the legacy flag.
    symmetry:
        Canonicalise every signature over twin-node permutations before
        deduplication.  Sound for label-invariant predicates; see
        :mod:`repro.exploration.frontier` for the argument and caveats.
    check_acyclicity / check_progress:
        Built-in signature-level checks: every state's orientation is a DAG;
        every quiescent state is destination oriented.
    spill_threshold / spill_dir:
        Enable the disk-spilled visited set once the in-memory set reaches
        the threshold (per worker, in sharded mode).
    spill_max_runs:
        Compact the spilled sorted runs into one whenever more than this
        many accumulate (the delta-run compaction knob; ``None`` disables).
    vectorized:
        ``"auto"`` (default) runs the whole-frontier numpy engine whenever
        the signature fits one 64-bit lane (see
        :func:`repro.kernels.vector.compile_vector_expander` for the exact
        gate; symmetry reduction always stays scalar), falling back to the
        scalar expanders otherwise.  ``"never"`` forces the scalar path;
        ``"always"`` raises if the batch engine cannot run.  Counts,
        visited sets, traces and truncation points are identical between
        the two engines (differentially pinned); only throughput differs.
    track_traces:
        Keep predecessor pointers so violations come back as replayable
        counterexample traces.  Disable to halve memory on huge clean runs.
    collect_signatures:
        Attach the full visited signature set to the report (tests only).
    max_traced_failures:
        Cap on the number of failures converted into full traces.
    """

    def __init__(
        self,
        automaton: IOAutomaton,
        predicates: Optional[Mapping[str, StatePredicate]] = None,
        *,
        max_states: int = 1_000_000,
        workers: int = 1,
        single_actions_only: bool = False,
        symmetry: bool = False,
        check_acyclicity: bool = False,
        check_progress: bool = False,
        spill_threshold: Optional[int] = None,
        spill_dir: Optional[str] = None,
        spill_max_runs: Optional[int] = 8,
        vectorized: str = "auto",
        track_traces: bool = True,
        collect_signatures: bool = False,
        max_traced_failures: int = 25,
    ):
        self.automaton = automaton
        self.predicates = dict(predicates or {})
        self.max_states = max_states
        self.workers = max(1, workers)
        self.single_actions_only = single_actions_only
        self.symmetry = symmetry
        self.check_acyclicity = check_acyclicity
        self.check_progress = check_progress
        self.spill_threshold = spill_threshold
        self.spill_dir = spill_dir
        self.spill_max_runs = spill_max_runs
        if isinstance(vectorized, bool):  # ergonomic alias
            vectorized = "always" if vectorized else "never"
        if vectorized not in ("auto", "always", "never"):
            raise ValueError(
                f"vectorized must be 'auto', 'always' or 'never', got {vectorized!r}"
            )
        self.vectorized = vectorized
        self.track_traces = track_traces
        self.collect_signatures = collect_signatures
        self.max_traced_failures = max_traced_failures
        self._expander = compile_expander(automaton, single_actions_only)
        self._vector = None
        if vectorized != "never" and not symmetry:
            self._vector = compile_vector_expander(self._expander)
        if vectorized == "always" and self._vector is None:
            raise ValueError(
                "vectorized='always' but the batch engine cannot run here "
                "(no compiled kernel, signature wider than 64 bits, or "
                "symmetry reduction requested)"
            )
        if self._expander is None:
            if self.workers > 1:
                raise ValueError(
                    f"sharded exploration requires a compiled signature kernel "
                    f"(PR/OneStepPR/NewPR/FR); {automaton.name!r} has none"
                )
            if self.symmetry:
                raise ValueError(
                    "symmetry reduction requires a compiled signature kernel"
                )
            if self.spill_threshold is not None:
                raise ValueError(
                    "disk spill requires a compiled signature kernel "
                    "(generic signatures have no fixed width)"
                )

    # ------------------------------------------------------------------
    def run(self) -> CheckReport:
        """Explore the reachable state space and return the report."""
        start = time.perf_counter()
        names = list(self.predicates)
        if self.check_acyclicity:
            names.insert(0, ACYCLIC)
        if self.check_progress:
            names.append(PROGRESS)
        report = CheckReport(
            automaton_name=self.automaton.name,
            predicate_names=tuple(names),
            workers=self.workers,
            symmetry_reduced=bool(
                self.symmetry and self._expander is not None and self._expander.has_symmetry
            ),
        )
        if self.workers > 1:
            if self._vector is not None:
                self._run_sharded(report, vector=True)
            else:
                self._run_sharded(report)
        elif self._vector is not None:
            self._run_vector(report)
        elif self._expander is not None:
            self._run_compiled(report)
        else:
            self._run_generic(report)
        report.wall_time_s = time.perf_counter() - start
        logger.info(
            "%s: %d states, %d transitions, depth %d in %.3fs",
            report.automaton_name, report.states_explored,
            report.transitions_explored, report.max_depth, report.wall_time_s,
        )
        if _telemetry.ENABLED:
            registry = _telemetry.REGISTRY
            registry.inc("checker.states", report.states_explored)
            registry.inc("checker.transitions", report.transitions_explored)
            if report.spilled:
                registry.inc("checker.spilled_runs")
            if report.spill_stats and report.spill_stats.get("spills"):
                registry.inc("checker.spills", report.spill_stats["spills"])
            if report.spill_stats and report.spill_stats.get("compactions"):
                registry.inc(
                    "checker.compactions", report.spill_stats["compactions"]
                )
            if report.wall_time_s > 0:
                registry.max_gauge(
                    "checker.states_per_s",
                    round(report.states_explored / report.wall_time_s, 1),
                )
        return report

    # ------------------------------------------------------------------
    # single-process compiled path
    # ------------------------------------------------------------------
    def _run_compiled(self, report: CheckReport) -> None:
        expander = self._expander
        initial = expander.initial_signature()
        if self.symmetry:
            initial = expander.canonicalize(initial)
        visited = VisitedSet(
            key_bytes=(expander.signature_bits + 7) // 8 if self.spill_threshold else None,
            spill_threshold=self.spill_threshold,
            spill_dir=self.spill_dir,
            max_runs=self.spill_max_runs,
        )
        visited.add(initial)
        report.states_explored = 1
        predecessors: Optional[Dict] = {initial: (None, None)} if self.track_traces else None
        try:
            raw_failures = _discovery_failures(
                initial, expander, self.predicates, self.check_acyclicity
            )

            queue: deque = deque()
            queue.append((initial, 0))
            while queue:
                sig, depth = queue.popleft()
                if depth > report.max_depth:
                    report.max_depth = depth
                    if _telemetry.ENABLED:
                        # one frontier-size sample per BFS level, not per state
                        _telemetry.REGISTRY.observe(
                            "checker.frontier", len(queue) + 1
                        )
                successors = expander.successors(sig)
                if not successors:
                    report.quiescent_states += 1
                    if self.check_progress and not mask_is_destination_oriented(
                        expander.instance, expander.orientation_mask(sig)
                    ):
                        raw_failures.append((sig, PROGRESS, _PROGRESS_DETAIL))
                    continue
                for token, successor in successors:
                    report.transitions_explored += 1
                    if self.symmetry:
                        successor = expander.canonicalize(successor)
                    if report.states_explored >= self.max_states:
                        # at the cap, mirror the legacy explorer exactly: a
                        # pure membership probe (no insertion) so that any
                        # genuinely new successor truncates the run while
                        # collect_signatures stays consistent with
                        # states_explored
                        if successor in visited:
                            continue
                        report.truncated = True
                        queue.clear()
                        break
                    if not visited.add(successor):
                        continue
                    report.states_explored += 1
                    if predecessors is not None:
                        predecessors[successor] = (sig, token)
                    raw_failures.extend(
                        _discovery_failures(
                            successor, expander, self.predicates, self.check_acyclicity
                        )
                    )
                    queue.append((successor, depth + 1))

            report.spilled = visited.spilled_runs > 0
            report.spill_stats = visited.stats
            if self.collect_signatures:
                report.signatures = set(visited)
        finally:
            visited.close()
        self._attach_failures(report, raw_failures, predecessors)

    # ------------------------------------------------------------------
    # single-process vectorised path
    # ------------------------------------------------------------------
    def _run_vector(self, report: CheckReport) -> None:
        """Whole-frontier BFS: one numpy round per level, scalar-exact.

        Every accounting decision the scalar loop takes per state is taken
        here per round, in a way provably equal to the scalar outcome:

        * successors come out of the batch expander in exact scalar
          generation order, so ``np.unique``'s first-occurrence indices pick
          the same predecessor/token the scalar FIFO would have;
        * truncation is emulated per state: the first genuinely-new
          successor past ``max_states`` is located inside the round and
          transitions/quiescents are only counted up to that point;
        * failure ordering is reconstructed by sorting round events on
          (frontier position, emission position, check index) — the order
          the scalar loop emits them in.  Acyclicity is Kahn-checked as a
          batch mask; when no predicate can interleave it is additionally
          deferred across rounds in :data:`_ACYCLIC_BATCH` buffers.
        """
        expander = self._expander
        vector = self._vector
        instance = expander.instance
        report.vectorized = True
        edge_mask = np.uint64(expander._edge_mask)
        initial = int(expander.initial_signature())
        visited = VisitedSet(
            key_bytes=(expander.signature_bits + 7) // 8 if self.spill_threshold else None,
            spill_threshold=self.spill_threshold,
            spill_dir=self.spill_dir,
            max_runs=self.spill_max_runs,
        )
        visited.add(initial)
        report.states_explored = 1
        predecessors = _ArrayPredecessors(initial) if self.track_traces else None
        raw_failures: List[Tuple[Hashable, str, str]] = []
        # acyclicity can only be deferred across rounds when nothing else
        # (predicate or progress failures) has to interleave with it
        defer_acyclic = (
            self.check_acyclicity
            and not self.predicates
            and not self.check_progress
        )
        pending: List = []
        pending_count = 0

        def flush_acyclic() -> None:
            nonlocal pending_count
            if not pending:
                return
            sigs = np.concatenate(pending) if len(pending) > 1 else pending[0]
            pending.clear()
            pending_count = 0
            good = mask_is_acyclic_batch(instance, sigs & edge_mask)
            for sig in sigs[~good]:
                sig = int(sig)
                cycle = expander.state_for(sig).orientation.find_cycle()
                raw_failures.append(
                    (sig, ACYCLIC, "cycle: " + " -> ".join(map(str, cycle)))
                )

        try:
            if defer_acyclic:
                pending.append(np.array([initial], dtype=np.uint64))
                pending_count = 1
            else:
                raw_failures.extend(
                    _discovery_failures(
                        initial, expander, self.predicates, self.check_acyclicity
                    )
                )
            frontier = np.array([initial], dtype=np.uint64)
            depth = 0
            while frontier.size:
                report.max_depth = depth
                if _telemetry.ENABLED:
                    _telemetry.REGISTRY.observe("checker.frontier", frontier.size)
                    _telemetry.REGISTRY.inc("checker.batch_rounds")
                expansion = vector.expand(frontier)
                successors = expansion.successors
                parents = expansion.parents
                # events: (frontier pos, emission pos, check idx, failure)
                events: List[Tuple[int, int, int, Tuple]] = []
                if successors.size:
                    unique, first_index, _ = np.unique(
                        successors, return_index=True, return_inverse=True
                    )
                    known = visited.contains_many(unique)
                    new_first = np.sort(first_index[~known])
                else:
                    unique = successors
                    known = np.zeros(0, dtype=bool)
                    new_first = np.zeros(0, dtype=np.int64)
                budget = self.max_states - report.states_explored
                truncating = new_first.size > budget
                if truncating:
                    # exact scalar truncation: the (budget+1)-th new successor
                    # is where the scalar loop would have stopped mid-state
                    report.truncated = True
                    cut = int(new_first[budget])
                    accepted = new_first[:budget]
                    report.transitions_explored += cut + 1
                    quiescent = expansion.quiescent[
                        expansion.quiescent < int(parents[cut])
                    ]
                else:
                    accepted = new_first
                    report.transitions_explored += int(successors.size)
                    quiescent = expansion.quiescent
                report.quiescent_states += int(quiescent.size)
                if self.check_progress and quiescent.size:
                    oriented = mask_is_destination_oriented_batch(
                        instance, frontier[quiescent] & edge_mask
                    )
                    for position in quiescent[~oriented]:
                        position = int(position)
                        events.append(
                            (
                                position,
                                -1,
                                0,
                                (int(frontier[position]), PROGRESS, _PROGRESS_DETAIL),
                            )
                        )
                new_sigs = successors[accepted]
                report.states_explored += int(accepted.size)
                if predecessors is not None and accepted.size:
                    predecessors.append_round(
                        new_sigs,
                        frontier[parents[accepted]],
                        expansion.tokens[accepted],
                    )
                if self.check_acyclicity and new_sigs.size:
                    if defer_acyclic:
                        pending.append(new_sigs)
                        pending_count += int(new_sigs.size)
                        if pending_count >= _ACYCLIC_BATCH:
                            flush_acyclic()
                    else:
                        good = mask_is_acyclic_batch(instance, new_sigs & edge_mask)
                        for k in np.flatnonzero(~good):
                            position = int(accepted[k])
                            sig = int(new_sigs[k])
                            cycle = expander.state_for(sig).orientation.find_cycle()
                            events.append(
                                (
                                    int(parents[position]),
                                    position,
                                    0,
                                    (
                                        sig,
                                        ACYCLIC,
                                        "cycle: " + " -> ".join(map(str, cycle)),
                                    ),
                                )
                            )
                if self.predicates:
                    for position in accepted:
                        position = int(position)
                        state = expander.state_for(int(successors[position]))
                        for check, (name, predicate) in enumerate(
                            self.predicates.items(), start=1
                        ):
                            holds, detail = _predicate_outcome(predicate(state))
                            if not holds:
                                events.append(
                                    (
                                        int(parents[position]),
                                        position,
                                        check,
                                        (int(successors[position]), name, detail),
                                    )
                                )
                if events:
                    events.sort(key=lambda event: event[:3])
                    raw_failures.extend(event[3] for event in events)
                if truncating:
                    if accepted.size:
                        visited.update_sorted(np.sort(new_sigs))
                    break
                visited.update_sorted(unique[~known])
                frontier = new_sigs
                depth += 1

            flush_acyclic()
            report.spilled = visited.spilled_runs > 0
            report.spill_stats = visited.stats
            if self.collect_signatures:
                report.signatures = set(visited)
        finally:
            visited.close()
        self._attach_failures(report, raw_failures, predecessors)

    def _attach_failures(
        self,
        report: CheckReport,
        raw_failures: List[Tuple[Hashable, str, str]],
        predecessors: Optional[Dict],
    ) -> None:
        """Convert raw ``(sig, predicate, detail)`` hits into traced failures."""
        parent_of = predecessors.get if predecessors is not None else lambda sig: None
        self._build_failures(report, raw_failures, parent_of)

    def _build_failures(
        self,
        report: CheckReport,
        raw_failures: List[Tuple[Hashable, str, str]],
        parent_of: Callable[[Hashable], Optional[Tuple]],
    ) -> None:
        """Walk predecessor chains (via ``parent_of``) into traced failures.

        ``parent_of(sig)`` returns the stored ``(parent, token)`` entry or
        ``None``; a ``None`` entry or parent ends the walk.  Shared by the
        single-process paths (dict lookup) and the sharded path (pipe
        round-trip to the owning worker).
        """
        expander = self._expander
        for index, (sig, name, detail) in enumerate(raw_failures):
            traced = self.track_traces and index < self.max_traced_failures
            actions: List = []
            signatures: List[Hashable] = [sig]
            if traced:
                current = sig
                while True:
                    entry = parent_of(current)
                    if entry is None or entry[0] is None:
                        break
                    parent, token = entry
                    actions.append(
                        expander.action_for(token) if expander is not None else token
                    )
                    signatures.append(parent)
                    current = parent
                actions.reverse()
                signatures.reverse()
            trace = CounterexampleTrace(
                automaton_name=self.automaton.name,
                predicate_name=name,
                detail=detail,
                actions=tuple(actions),
                signatures=tuple(signatures) if traced else None,
                symmetry_reduced=report.symmetry_reduced,
                reconstructed=traced,
            )
            report.failures.append(PredicateFailure(name, trace, detail))

    # ------------------------------------------------------------------
    # generic fallback (no compiled kernel): legacy state-materialising BFS
    # ------------------------------------------------------------------
    def _run_generic(self, report: CheckReport) -> None:
        automaton = self.automaton
        initial = automaton.initial_state()
        # the built-in checks must not silently turn into no-ops: a report
        # listing them (and a store record claiming acyclic_final) would
        # otherwise assert something that was never evaluated
        if self.check_acyclicity and getattr(initial, "is_acyclic", None) is None:
            raise ValueError(
                f"check_acyclicity requires states exposing is_acyclic(); "
                f"{type(initial).__name__} has none"
            )
        if self.check_progress and getattr(initial, "is_destination_oriented", None) is None:
            raise ValueError(
                f"check_progress requires states exposing is_destination_oriented(); "
                f"{type(initial).__name__} has none"
            )
        initial_sig = initial.signature()
        visited = {initial_sig}
        report.states_explored = 1
        predecessors: Optional[Dict] = {initial_sig: (None, None)} if self.track_traces else None
        raw_failures = self._generic_state_failures(initial_sig, initial)

        queue: deque = deque()
        queue.append((initial, 0))
        while queue:
            state, depth = queue.popleft()
            if depth > report.max_depth:
                report.max_depth = depth
            if self.single_actions_only:
                actions = list(automaton.enabled_single_actions(state))
            else:
                actions = list(automaton.enabled_actions(state))
            if not actions:
                report.quiescent_states += 1
                if self.check_progress and not state.is_destination_oriented():
                    raw_failures.append(
                        (state.signature(), PROGRESS, _PROGRESS_DETAIL)
                    )
                continue
            sig = state.signature()
            for action in actions:
                successor = automaton.apply(state, action)
                report.transitions_explored += 1
                successor_sig = successor.signature()
                if successor_sig in visited:
                    continue
                if report.states_explored >= self.max_states:
                    report.truncated = True
                    queue.clear()
                    break
                visited.add(successor_sig)
                report.states_explored += 1
                if predecessors is not None:
                    predecessors[successor_sig] = (sig, action)
                raw_failures.extend(
                    self._generic_state_failures(successor_sig, successor)
                )
                queue.append((successor, depth + 1))

        if self.collect_signatures:
            report.signatures = set(visited)
        self._attach_failures(report, raw_failures, predecessors)

    def _generic_state_failures(self, sig, state) -> List[Tuple[Hashable, str, str]]:
        failures: List[Tuple[Hashable, str, str]] = []
        if self.check_acyclicity and not state.is_acyclic():
            failures.append((sig, ACYCLIC, "directed cycle in reachable state"))
        for name, predicate in self.predicates.items():
            holds, detail = _predicate_outcome(predicate(state))
            if not holds:
                failures.append((sig, name, detail))
        return failures

    # ------------------------------------------------------------------
    # sharded multi-process path
    # ------------------------------------------------------------------
    def _run_sharded(self, report: CheckReport, vector: bool = False) -> None:
        expander = self._expander
        workers = self.workers
        context = fork_preferring_context()
        options = {
            "single_actions_only": self.single_actions_only,
            "symmetry": self.symmetry,
            "check_acyclicity": self.check_acyclicity,
            "check_progress": self.check_progress,
            "spill_threshold": self.spill_threshold,
            "spill_dir": None,
            "spill_max_runs": self.spill_max_runs,
            "track_traces": self.track_traces,
            "vectorized": vector,
        }
        connections = []
        processes = []
        for index in range(workers):
            worker_options = dict(options)
            if self.spill_dir is not None:
                worker_options["spill_dir"] = f"{self.spill_dir}/worker-{index}"
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker,
                args=(child_conn, index, workers, self.automaton, self.predicates, worker_options),
                daemon=True,
            )
            try:
                process.start()
            except Exception as error:  # spawn platforms pickle the args
                for connection in connections:
                    connection.close()
                raise ValueError(
                    f"failed to start shard workers — on spawn-only platforms the "
                    f"automaton and predicates must be picklable (lambda-based "
                    f"bundles need a fork platform or workers=1): {error}"
                ) from error
            child_conn.close()
            connections.append(parent_conn)
            processes.append(process)

        try:
            initial = expander.initial_signature()
            if self.symmetry:
                initial = expander.canonicalize(initial)
            if vector:
                report.vectorized = True
                root = (
                    np.array([initial], dtype=np.uint64),
                    np.array([initial], dtype=np.uint64),
                    np.zeros(1, dtype=np.uint64),  # token 0 marks the root
                )
                buckets: Dict[int, List] = {shard_of(initial, workers): [root]}
                empty_round = tuple(np.zeros(0, dtype=np.uint64) for _ in range(3))
            else:
                buckets = {shard_of(initial, workers): [(initial, None, None)]}

            def round_payload(entries: List):
                """Concatenate a bucket's array triples into one triple."""
                if not entries:
                    return empty_round
                if len(entries) == 1:
                    return entries[0]
                return tuple(np.concatenate(parts) for parts in zip(*entries))

            raw_failures: List[Tuple[Hashable, str, str]] = []
            round_index = 0
            while buckets:
                if report.states_explored >= self.max_states:
                    # round-granular truncation: the cap is only evaluated
                    # between BFS rounds, so the count may overshoot slightly.
                    # The pending frontier may consist entirely of duplicates
                    # (an exactly-exhausted space), so probe before declaring
                    # truncation: workers dedup the entries without checking
                    # or expanding them and report how many were new.
                    probe_new = 0
                    for index in range(workers):
                        if vector:
                            connections[index].send(
                                ("probe", round_payload(buckets.get(index, []))[0])
                            )
                        else:
                            connections[index].send(
                                ("probe", buckets.get(index, []))
                            )
                    for index in range(workers):
                        probe_new += _shard_recv(connections[index])
                    report.truncated = probe_new > 0
                    break
                for index in range(workers):
                    if vector:
                        connections[index].send(
                            ("round", round_payload(buckets.get(index, [])))
                        )
                    else:
                        connections[index].send(("round", buckets.get(index, [])))
                next_buckets: Dict[int, List] = {}
                round_new = 0
                for index in range(workers):
                    new, transitions, quiescent, out, failures = _shard_recv(
                        connections[index]
                    )
                    round_new += new
                    report.transitions_explored += transitions
                    report.quiescent_states += quiescent
                    raw_failures.extend(failures)
                    for owner, entries in out.items():
                        if vector:
                            next_buckets.setdefault(owner, []).append(entries)
                        else:
                            next_buckets.setdefault(owner, []).extend(entries)
                report.states_explored += round_new
                if round_new:
                    report.max_depth = round_index
                if vector:
                    frontier = sum(
                        int(triple[0].size)
                        for entries in next_buckets.values()
                        for triple in entries
                    )
                else:
                    frontier = sum(len(entries) for entries in next_buckets.values())
                logger.debug(
                    "sharded round %d: %d new states, frontier %d",
                    round_index, round_new, frontier,
                )
                if _telemetry.ENABLED:
                    if frontier:
                        _telemetry.REGISTRY.observe("checker.frontier", frontier)
                    if vector and round_new:
                        _telemetry.REGISTRY.inc("checker.batch_rounds")
                round_index += 1
                buckets = next_buckets

            if vector:
                # flush each worker's deferred acyclicity buffer before
                # collecting traces
                for connection in connections:
                    connection.send(("drain",))
                for connection in connections:
                    raw_failures.extend(_shard_recv(connection))
            self._collect_sharded_failures(report, raw_failures, connections)
            if self.collect_signatures:
                collected: Set[Hashable] = set()
                for connection in connections:
                    connection.send(("signatures",))
                    collected |= _shard_recv(connection)
                report.signatures = collected
            for connection in connections:
                connection.send(("stats",))
                stats = _shard_recv(connection)
                if stats["spilled_runs"]:
                    report.spilled = True
                if vector:
                    totals = report.spill_stats or {}
                    for key in ("spills", "compactions", "runs", "spilled_signatures"):
                        if key in stats:
                            totals[key] = totals.get(key, 0) + int(stats[key])
                    report.spill_stats = totals
        finally:
            for connection in connections:
                try:
                    connection.send(("stop",))
                    connection.close()
                except (BrokenPipeError, OSError):  # worker already gone
                    pass
            for process in processes:
                process.join(timeout=10)
                if process.is_alive():  # pragma: no cover - defensive
                    process.terminate()

    def _collect_sharded_failures(
        self,
        report: CheckReport,
        raw_failures: List[Tuple[Hashable, str, str]],
        connections,
    ) -> None:
        """Reconstruct failure traces by walking predecessor chains shard-wise."""
        workers = self.workers

        def parent_of(sig: Hashable) -> Optional[Tuple]:
            owner = shard_of(sig, workers)
            connections[owner].send(("parent_of", sig))
            return _shard_recv(connections[owner])

        self._build_failures(report, raw_failures, parent_of)


def check_exhaustively(
    automaton: IOAutomaton,
    predicates: Optional[Mapping[str, StatePredicate]] = None,
    **options: Any,
) -> CheckReport:
    """Convenience wrapper: build a :class:`ModelChecker` and run it."""
    return ModelChecker(automaton, predicates, **options).run()
