"""Reference breadth-first exploration of an automaton's reachable states.

The explorer performs a breadth-first search from the initial state, following
*every* enabled action (for PR that includes every non-empty subset of the
sink set — exactly the action set of Algorithm 1), deduplicating states by
their canonical :meth:`signature`.  A set of named predicates is evaluated on
every newly discovered state; any violation is recorded together with a
replayable :class:`~repro.exploration.counterexample.CounterexampleTrace`
reaching the offending state.

This is the **reference implementation**: it materialises a full state object
per transition and runs in a single process, which keeps it simple enough to
serve as the oracle that the production engine —
:class:`~repro.exploration.checker.ModelChecker`, which explores compact int
signatures directly, shards across processes, spills the visited set to disk
and applies symmetry reduction — is differentially tested against
(``tests/test_model_check_differential.py``).  Use :class:`ModelChecker` for
anything beyond toy sizes.

For the link-reversal automata the reachable space is finite: each node can
take only a bounded number of steps before the graph is destination oriented,
so exploration always terminates (the ``max_states`` bound exists as a
safety net and for exploring deliberately large instances partially).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Hashable, List, Mapping, Optional, Tuple

from repro.automata.ioa import Action, IOAutomaton
from repro.exploration.counterexample import CounterexampleTrace

#: A predicate evaluated on every reachable state.  It may return a ``bool``
#: or any object with a truthy ``holds`` attribute (e.g. an
#: :class:`~repro.verification.invariants.InvariantReport`).
StatePredicate = Callable[[object], object]


@dataclass
class PredicateFailure:
    """A reachable state violating a predicate, with its replayable trace.

    ``trace`` is a full :class:`~repro.exploration.counterexample
    .CounterexampleTrace`: replaying its actions from the initial state
    reproduces the violating state.  The legacy ``path`` view (the raw action
    tuple) is kept as a property for callers that only need the action
    sequence.
    """

    predicate_name: str
    trace: CounterexampleTrace
    detail: str

    @property
    def path(self) -> Tuple[Action, ...]:
        """The action sequence reaching the violating state."""
        return self.trace.actions


@dataclass
class ExplorationReport:
    """Summary of an exhaustive exploration run."""

    automaton_name: str
    states_explored: int = 0
    transitions_explored: int = 0
    quiescent_states: int = 0
    truncated: bool = False
    failures: List[PredicateFailure] = field(default_factory=list)
    max_depth: int = 0

    @property
    def all_predicates_hold(self) -> bool:
        """Whether no predicate was violated on any explored state."""
        return not self.failures

    def __str__(self) -> str:
        status = "OK" if self.all_predicates_hold else f"{len(self.failures)} FAILURE(S)"
        suffix = " (truncated)" if self.truncated else ""
        return (
            f"[{self.automaton_name}] {self.states_explored} states, "
            f"{self.transitions_explored} transitions, depth {self.max_depth}, "
            f"{self.quiescent_states} quiescent — {status}{suffix}"
        )


def _predicate_outcome(result: object) -> Tuple[bool, str]:
    """Normalise a predicate result to ``(holds, detail)``."""
    holds = getattr(result, "holds", None)
    if holds is None:
        return bool(result), ""
    detail = ""
    violations = getattr(result, "violations", None)
    if violations:
        detail = "; ".join(str(v) for v in list(violations)[:3])
    return bool(holds), detail


class StateSpaceExplorer:
    """Breadth-first exhaustive explorer with per-state predicate checking.

    Parameters
    ----------
    automaton:
        The automaton to explore.
    predicates:
        Mapping from predicate name to predicate.  Use the bundles in
        :mod:`repro.verification.invariants` for the paper's invariants.
    max_states:
        Exploration stops (and the report is marked ``truncated``) once this
        many distinct states have been discovered.
    use_single_actions_only:
        When ``True`` only single-node actions are followed.  For PR this
        explores the OneStepPR-reachable subset, which is often enough and
        exponentially cheaper; the default ``False`` follows every subset
        action exactly as Algorithm 1 allows.
    """

    def __init__(
        self,
        automaton: IOAutomaton,
        predicates: Optional[Mapping[str, StatePredicate]] = None,
        max_states: int = 200_000,
        use_single_actions_only: bool = False,
    ):
        self.automaton = automaton
        self.predicates = dict(predicates or {})
        self.max_states = max_states
        self.use_single_actions_only = use_single_actions_only

    # ------------------------------------------------------------------
    def explore(self) -> ExplorationReport:
        """Run the exhaustive exploration and return the report."""
        automaton = self.automaton
        report = ExplorationReport(automaton_name=automaton.name)

        initial = automaton.initial_state()
        seen = {initial.signature()}
        queue: deque = deque()
        queue.append((initial, (), 0))
        report.states_explored = 1
        self._check_state(initial, (), report)

        while queue:
            state, path, depth = queue.popleft()
            report.max_depth = max(report.max_depth, depth)

            if self.use_single_actions_only:
                actions = list(automaton.enabled_single_actions(state))
            else:
                actions = list(automaton.enabled_actions(state))
            if not actions:
                report.quiescent_states += 1
                continue

            for action in actions:
                successor = automaton.apply(state, action)
                report.transitions_explored += 1
                signature = successor.signature()
                if signature in seen:
                    continue
                if report.states_explored >= self.max_states:
                    report.truncated = True
                    return report
                seen.add(signature)
                report.states_explored += 1
                new_path = path + (action,)
                self._check_state(successor, new_path, report)
                queue.append((successor, new_path, depth + 1))
        return report

    # ------------------------------------------------------------------
    def _check_state(self, state, path: Tuple[Action, ...], report: ExplorationReport) -> None:
        for name, predicate in self.predicates.items():
            outcome = predicate(state)
            holds, detail = _predicate_outcome(outcome)
            if not holds:
                trace = CounterexampleTrace(
                    automaton_name=self.automaton.name,
                    predicate_name=name,
                    detail=detail,
                    actions=path,
                )
                report.failures.append(PredicateFailure(name, trace, detail))


def explore_and_check(
    automaton: IOAutomaton,
    predicates: Mapping[str, StatePredicate],
    max_states: int = 200_000,
    use_single_actions_only: bool = False,
) -> ExplorationReport:
    """Convenience wrapper: build a :class:`StateSpaceExplorer` and run it."""
    explorer = StateSpaceExplorer(
        automaton,
        predicates=predicates,
        max_states=max_states,
        use_single_actions_only=use_single_actions_only,
    )
    return explorer.explore()
