"""Signature-space frontier machinery for the exhaustive model checker.

The paper's invariants quantify over *every* reachable state, and PR 1 gave
every automaton state a compact **int signature** (the orientation's
edge-reversal bitmask, with per-node bookkeeping packed into the high bits).
This module makes those ints the only thing the hot path touches:

:class:`SignatureExpander`
    A compiled successor kernel for one automaton: ``successors(sig)`` maps an
    int signature directly to its successor signatures with pure integer
    arithmetic — no :class:`~repro.core.graph.Orientation`, no state objects,
    no per-transition allocation beyond the result ints.  Kernels exist for
    FR, OneStepPR, PR (subset actions) and NewPR; states are only
    re-materialised (:meth:`SignatureExpander.state_for`) when a predicate
    needs one or a counterexample is replayed.

:class:`VisitedSet`
    The deduplication set over signatures, with an optional disk spill: once
    the in-memory set reaches a threshold it is flushed as a sorted
    fixed-width run file, and membership checks binary-search the runs with
    ``O(log n)`` file seeks.  This keeps >10^7-state explorations within a
    bounded memory footprint.

Twin-node symmetry reduction
    :meth:`SignatureExpander.canonicalize` maps a signature to a canonical
    representative of its orbit under permutations of *structurally
    equivalent* nodes — non-destination nodes with identical neighbour sets
    and identical initial in-neighbour sets ("twins", e.g. the leaves of a
    star).  Any such permutation is an automorphism of the initial directed
    graph that commutes with every automaton's transition function, so the
    canonical image of a reachable state is itself reachable.  Exploration
    over canonical representatives therefore visits at least one member of
    every reachable orbit (induction over executions: if ``σ(s)`` is visited
    and ``s → s'``, then expanding ``σ(s)`` adds ``canonicalize(σ(s'))``),
    which makes the reduction *sound* for checking label-invariant
    predicates.  Caveats: when several twin classes overlap (members of one
    class adjacent to members of another) the per-class sort is not a perfect
    orbit quotient — it may keep more than one representative per orbit
    (never fewer); and predicates that depend on node labels (e.g. the
    embedding-based NewPR invariants 4.1/4.2) are evaluated on the
    representative only, which is still a reachable state but not the
    specific orbit member first encountered.
"""

from __future__ import annotations

import abc
from itertools import combinations
from pathlib import Path
from typing import Dict, FrozenSet, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.automata.ioa import Action, IOAutomaton
from repro.core.base import Reverse
from repro.core.full_reversal import FRState, FullReversal
from repro.core.graph import LinkReversalInstance, Orientation
from repro.core.new_pr import NewPartialReversal, NewPRState
from repro.core.one_step_pr import OneStepPartialReversal, OneStepPRState
from repro.core.pr import PartialReversal, PRState, ReverseSet

#: Bits reserved per node for the NewPR step counter inside the int signature.
#: Counts are bounded by the per-node work bound (O(n) for NewPR), so 16 bits
#: cover every instance the checker can exhaust; overflow raises.
_COUNT_BITS = 16
_COUNT_MASK = (1 << _COUNT_BITS) - 1


def shard_of(signature: Hashable, shards: int) -> int:
    """Deterministic owner shard of a signature.

    Uses ``hash`` — deterministic across processes for ints and tuples of
    ints (hash randomisation only affects str/bytes), which is exactly the
    signature vocabulary of the compiled expanders.
    """
    return hash(signature) % shards


# ----------------------------------------------------------------------
# mask-level structural checks (no Orientation materialisation)
# ----------------------------------------------------------------------
def mask_is_acyclic(instance: LinkReversalInstance, mask: int) -> bool:
    """Whether the orientation encoded by ``mask`` is a DAG (Kahn over ids)."""
    n = instance.node_count
    succ: List[List[int]] = [[] for _ in range(n)]
    indegree = [0] * n
    for e, (tail_id, head_id) in enumerate(instance._edge_node_ids):
        if (mask >> e) & 1:
            tail_id, head_id = head_id, tail_id
        succ[tail_id].append(head_id)
        indegree[head_id] += 1
    queue = [i for i in range(n) if indegree[i] == 0]
    removed = 0
    while queue:
        i = queue.pop()
        removed += 1
        for j in succ[i]:
            indegree[j] -= 1
            if indegree[j] == 0:
                queue.append(j)
    return removed == n


def mask_is_destination_oriented(instance: LinkReversalInstance, mask: int) -> bool:
    """Whether every node reaches the destination in the ``mask`` orientation."""
    n = instance.node_count
    pred: List[List[int]] = [[] for _ in range(n)]
    for e, (tail_id, head_id) in enumerate(instance._edge_node_ids):
        if (mask >> e) & 1:
            tail_id, head_id = head_id, tail_id
        pred[head_id].append(tail_id)
    reached = [False] * n
    dest = instance._dest_id
    reached[dest] = True
    frontier = [dest]
    count = 1
    while frontier:
        i = frontier.pop()
        for j in pred[i]:
            if not reached[j]:
                reached[j] = True
                count += 1
                frontier.append(j)
    return count == n


# ----------------------------------------------------------------------
# twin-node symmetry classes
# ----------------------------------------------------------------------
class _TwinClass:
    """One class of interchangeable nodes with its signature bit layout.

    ``fields[m]`` lists, for member ``m`` and every shared neighbour ``w`` (in
    a fixed order), the bit triple ``(edge_bit, own_row_bit, partner_row_bit)``
    — the edge-reversal bit of ``{member, w}``, the member's own bookkeeping
    bit for ``w`` and ``w``'s bookkeeping bit for the member (0 when the
    automaton keeps no per-neighbour rows).  ``count_shifts`` carries the
    members' counter fields for NewPR.  ``clear_mask`` clears every bit the
    class permutation can move.
    """

    __slots__ = ("members", "fields", "count_shifts", "clear_mask")

    def __init__(self, members, fields, count_shifts, clear_mask):
        self.members = members
        self.fields = fields
        self.count_shifts = count_shifts
        self.clear_mask = clear_mask


def twin_node_classes(instance: LinkReversalInstance) -> List[Tuple[int, ...]]:
    """Classes (size >= 2) of structurally equivalent non-destination nodes.

    Two nodes are twins when they share both the neighbour set and the
    initial in-neighbour set; swapping them is then an automorphism of the
    initial directed graph fixing everything else.  Twins are never adjacent
    (``u ∈ nbrs(v) = nbrs(u)`` would require a self loop), so all per-node
    effects commute.
    """
    groups: Dict[Tuple[FrozenSet, FrozenSet], List[int]] = {}
    for i, u in enumerate(instance.nodes):
        if i == instance._dest_id or not instance._degree[i]:
            continue
        key = (instance._nbrs[u], instance._in_nbrs[u])
        groups.setdefault(key, []).append(i)
    return [tuple(members) for members in groups.values() if len(members) >= 2]


# ----------------------------------------------------------------------
# compiled signature expanders
# ----------------------------------------------------------------------
class SignatureExpander(abc.ABC):
    """Compiled successor kernel of one automaton over int signatures.

    Having a kernel at all is what enables the sharded multi-process mode:
    workers must be able to decode any signature back into a state without
    the frontier carrying state objects.  Automata without a kernel
    (``compile_expander`` returns ``None``) run on the checker's generic
    single-process path.
    """

    def __init__(self, automaton: IOAutomaton):
        self.automaton = automaton
        self.instance: LinkReversalInstance = automaton.instance
        instance = self.instance
        self._edge_mask = (1 << instance.edge_count) - 1
        self._inc = instance._incident_mask
        self._tail = instance._tail_sel
        self._sink_candidates = tuple(
            i
            for i in range(instance.node_count)
            if instance._degree[i] and i != instance._dest_id
        )
        self._twin_classes: Optional[List[_TwinClass]] = None

    # -- core interface -------------------------------------------------
    @abc.abstractmethod
    def initial_signature(self) -> int:
        """Signature of the automaton's initial state."""

    @abc.abstractmethod
    def successors(self, sig: int) -> List[Tuple[Tuple[int, ...], int]]:
        """Every ``(actor_id_token, successor_signature)`` pair of ``sig``."""

    @abc.abstractmethod
    def state_for(self, sig: int):
        """Re-materialise the full automaton state encoded by ``sig``."""

    def encode_state(self, state) -> int:
        """Signature of a state object in *this expander's* encoding.

        Defaults to ``state.signature()``; kernels whose int layout differs
        from the state's own signature (NewPR) override this.  Trace
        verification replays through the automaton and must re-encode the
        resulting states before comparing against the recorded chain.
        """
        return state.signature()

    @property
    @abc.abstractmethod
    def signature_bits(self) -> int:
        """Upper bound on the bit width of any reachable signature."""

    def action_for(self, token: Tuple[int, ...]) -> Action:
        """Rebuild the :class:`~repro.automata.ioa.Action` of a token."""
        return Reverse(self.instance.nodes[token[0]])

    def orientation_mask(self, sig: int) -> int:
        """The edge-reversal bitmask component of ``sig``."""
        return sig & self._edge_mask

    # -- shared sink enumeration ----------------------------------------
    def sink_ids(self, sig: int) -> List[int]:
        """Ids of the non-destination sinks of the orientation in ``sig``.

        An incident edge points at node ``i`` iff its reversal bit *equals*
        ``i``'s tail-selector bit (the selector marks the edges ``i``
        initially tails; reversing exactly those turns them incoming), so
        ``i`` is a sink iff ``mask`` and ``tail_sel[i]`` agree on every
        incident bit — one XOR + AND per node, no counters.
        """
        mask = sig & self._edge_mask
        inc = self._inc
        tail = self._tail
        return [i for i in self._sink_candidates if not ((mask ^ tail[i]) & inc[i])]

    # -- symmetry reduction ---------------------------------------------
    def _own_row_bit(self, i: int, w_id: int) -> int:
        """Bookkeeping bit "node ``w`` in node ``i``'s row", 0 when rowless."""
        return 0

    def _count_shift(self, i: int) -> Optional[int]:
        """Bit offset of node ``i``'s counter field, ``None`` when absent."""
        return None

    def _build_twin_classes(self) -> List[_TwinClass]:
        instance = self.instance
        classes = []
        for members in twin_node_classes(instance):
            shared = sorted(
                instance._node_id[v] for v in instance._nbrs[instance.nodes[members[0]]]
            )
            fields = []
            count_shifts: List[int] = []
            clear = 0
            for i in members:
                u = instance.nodes[i]
                row = []
                for j in shared:
                    w = instance.nodes[j]
                    edge_bit = 1 << instance._edge_id[(u, w)]
                    own_bit = self._own_row_bit(i, j)
                    partner_bit = self._own_row_bit(j, i)
                    row.append((edge_bit, own_bit, partner_bit))
                    clear |= edge_bit | own_bit | partner_bit
                shift = self._count_shift(i)
                if shift is not None:
                    count_shifts.append(shift)
                    clear |= _COUNT_MASK << shift
                fields.append(tuple(row))
            classes.append(
                _TwinClass(members, tuple(fields), tuple(count_shifts) or None, ~clear)
            )
        return classes

    @property
    def has_symmetry(self) -> bool:
        """Whether the instance has at least one twin class to reduce over."""
        if self._twin_classes is None:
            self._twin_classes = self._build_twin_classes()
        return bool(self._twin_classes)

    def canonicalize(self, sig: int) -> int:
        """Canonical orbit representative of ``sig`` under twin permutations.

        Within each twin class the members' local signatures (edge bit, own
        bookkeeping bit and partner bookkeeping bit per shared neighbour,
        plus the counter field when present) are sorted and re-assigned to
        the members in node order.  See the module docstring for soundness
        and its caveats.
        """
        if self._twin_classes is None:
            self._twin_classes = self._build_twin_classes()
        for cls in self._twin_classes:
            keys = []
            for m in range(len(cls.members)):
                key: List = [
                    (
                        1 if sig & edge_bit else 0,
                        1 if own_bit and sig & own_bit else 0,
                        1 if partner_bit and sig & partner_bit else 0,
                    )
                    for edge_bit, own_bit, partner_bit in cls.fields[m]
                ]
                if cls.count_shifts is not None:
                    key.append((sig >> cls.count_shifts[m]) & _COUNT_MASK)
                keys.append(tuple(key))
            ordered = sorted(keys)
            if ordered == keys:
                continue
            sig &= cls.clear_mask
            for m, key in enumerate(ordered):
                if cls.count_shifts is not None:
                    sig |= key[-1] << cls.count_shifts[m]
                    key = key[:-1]
                for (edge_bit, own_bit, partner_bit), (e_on, o_on, p_on) in zip(
                    cls.fields[m], key
                ):
                    if e_on:
                        sig |= edge_bit
                    if o_on:
                        sig |= own_bit
                    if p_on:
                        sig |= partner_bit
        return sig


class FullReversalExpander(SignatureExpander):
    """FR kernel: a sink's step XORs its whole incident-edge mask."""

    def initial_signature(self) -> int:
        return 0

    @property
    def signature_bits(self) -> int:
        return self.instance.edge_count

    def successors(self, sig: int) -> List[Tuple[Tuple[int, ...], int]]:
        inc = self._inc
        return [((i,), sig ^ inc[i]) for i in self.sink_ids(sig)]

    def state_for(self, sig: int) -> FRState:
        return FRState(self.instance, Orientation(self.instance, sig & self._edge_mask))


class _ListKernelMixin:
    """Shared PR/OneStepPR machinery: ``list[u]`` rows packed above the mask.

    The signature layout is exactly :meth:`repro.core.pr.PRState.signature`:
    bit ``edge_count + csr_offset(u) + k`` is set iff ``u``'s ``k``-th
    incident neighbour is in ``list[u]``.
    """

    def _build_list_tables(self) -> None:
        instance = self.instance
        E = instance.edge_count
        offsets = instance._csr_offsets
        degrees = instance._degree
        n = instance.node_count
        self._row_shift = tuple(E + offsets[i] for i in range(n))
        self._row_mask = tuple((1 << degrees[i]) - 1 for i in range(n))
        self._row_clear = tuple(
            ~(self._row_mask[i] << self._row_shift[i]) for i in range(n)
        )
        # per node, per incident position: (position bit, edge bit, partner's
        # row bit for this node)
        entries: List[Tuple[Tuple[int, int, int], ...]] = []
        for i in range(n):
            u = instance.nodes[i]
            row = []
            for k, (e, v) in enumerate(
                zip(instance._incident_eids[i], instance._incident_nbrs[i])
            ):
                j = instance._node_id[v]
                pos_in_partner = instance._incident_nbrs[j].index(u)
                partner_bit = 1 << (E + offsets[j] + pos_in_partner)
                row.append((1 << k, 1 << e, partner_bit))
            entries.append(tuple(row))
        self._entries = tuple(entries)

    def _own_row_bit(self, i: int, w_id: int) -> int:
        w = self.instance.nodes[w_id]
        position = self.instance._incident_nbrs[i].index(w)
        return 1 << (self._row_shift[i] + position)

    def _step(self, i: int, sig: int) -> int:
        """One ``reverse(u)`` step of the PR effect, entirely on the int."""
        row = (sig >> self._row_shift[i]) & self._row_mask[i]
        if row == self._row_mask[i]:
            # list[u] holds *all* neighbours: reverse every incident edge
            row = 0
        for pos_bit, edge_bit, partner_bit in self._entries[i]:
            if not row & pos_bit:
                sig ^= edge_bit
                sig |= partner_bit
        return sig & self._row_clear[i]

    @property
    def signature_bits(self) -> int:
        # mask plus one bookkeeping bit per (node, incident edge) pair
        return 3 * self.instance.edge_count

    def _decode(self, sig: int, state_class):
        instance = self.instance
        mask = sig & self._edge_mask
        lists = instance.unpack_neighbour_sets(sig >> instance.edge_count)
        return state_class(instance, Orientation(instance, mask), lists)


class OneStepPRExpander(_ListKernelMixin, SignatureExpander):
    """OneStepPR kernel: single-node ``reverse(u)`` actions."""

    def __init__(self, automaton: OneStepPartialReversal):
        super().__init__(automaton)
        self._build_list_tables()

    def initial_signature(self) -> int:
        return self.automaton.initial_state().signature()

    def successors(self, sig: int) -> List[Tuple[Tuple[int, ...], int]]:
        return [((i,), self._step(i, sig)) for i in self.sink_ids(sig)]

    def state_for(self, sig: int) -> OneStepPRState:
        return self._decode(sig, OneStepPRState)


class PartialReversalExpander(_ListKernelMixin, SignatureExpander):
    """PR kernel: every non-empty subset of the sink set may step at once.

    Sinks are pairwise non-adjacent (an edge between two nodes points at only
    one of them), so the per-node effects touch disjoint edges and the subset
    action is the composition of the members' single steps in any order —
    exactly Algorithm 1's simultaneous effect.
    """

    def __init__(self, automaton: PartialReversal, single_actions_only: bool = False):
        super().__init__(automaton)
        self._build_list_tables()
        self.single_actions_only = single_actions_only

    def initial_signature(self) -> int:
        return self.automaton.initial_state().signature()

    def successors(self, sig: int) -> List[Tuple[Tuple[int, ...], int]]:
        sinks = self.sink_ids(sig)
        if self.single_actions_only:
            return [((i,), self._step(i, sig)) for i in sinks]
        result = []
        for size in range(1, len(sinks) + 1):
            for subset in combinations(sinks, size):
                successor = sig
                for i in subset:
                    successor = self._step(i, successor)
                result.append((subset, successor))
        return result

    def action_for(self, token: Tuple[int, ...]) -> Action:
        return ReverseSet(frozenset(self.instance.nodes[i] for i in token))

    def state_for(self, sig: int) -> PRState:
        return self._decode(sig, PRState)


class NewPRExpander(SignatureExpander):
    """NewPR kernel: parity-selected constant flip masks plus packed counters.

    The int signature is ``(count[n-1] .. count[0]) << edge_count | mask``
    with :data:`_COUNT_BITS` bits per counter — a bijective re-encoding of
    ``NewPRState.signature()`` (which is a (mask, counts-tuple) pair) chosen
    so the sharded frontier and the spillable visited set stay int-only.
    """

    def __init__(self, automaton: NewPartialReversal):
        super().__init__(automaton)
        instance = self.instance
        E = instance.edge_count
        n = instance.node_count
        self._shift = tuple(E + _COUNT_BITS * i for i in range(n))
        # parity EVEN reverses the edges to the *initial in-neighbours* (the
        # incident edges whose initial head is this node); ODD the initial
        # out-edges.  A stepping node is a sink, so every such edge currently
        # points at it and the whole mask flips.
        self._even_flip = tuple(
            instance._incident_mask[i] & ~instance._tail_sel[i] for i in range(n)
        )
        self._odd_flip = tuple(instance._tail_sel[i] for i in range(n))

    def initial_signature(self) -> int:
        return 0

    @property
    def signature_bits(self) -> int:
        return self.instance.edge_count + _COUNT_BITS * self.instance.node_count

    def _count_shift(self, i: int) -> Optional[int]:
        return self._shift[i]

    def successors(self, sig: int) -> List[Tuple[Tuple[int, ...], int]]:
        result = []
        for i in self.sink_ids(sig):
            count = (sig >> self._shift[i]) & _COUNT_MASK
            if count == _COUNT_MASK:
                raise OverflowError(
                    f"NewPR step counter of node id {i} exceeded {_COUNT_MASK}"
                )
            flip = self._even_flip[i] if count % 2 == 0 else self._odd_flip[i]
            result.append(((i,), (sig ^ flip) + (1 << self._shift[i])))
        return result

    def state_for(self, sig: int) -> NewPRState:
        instance = self.instance
        counts = {
            u: (sig >> self._shift[i]) & _COUNT_MASK
            for i, u in enumerate(instance.nodes)
        }
        return NewPRState(
            instance, Orientation(instance, sig & self._edge_mask), counts
        )

    def encode_state(self, state: NewPRState) -> int:
        sig = state.graph_signature()
        for i, u in enumerate(self.instance.nodes):
            sig |= state.counts[u] << self._shift[i]
        return sig


def compile_expander(
    automaton: IOAutomaton, single_actions_only: bool = False
) -> Optional[SignatureExpander]:
    """Compile a signature kernel for ``automaton``, or ``None`` if unsupported.

    Unsupported automata (BLL, the height formulations, custom test automata)
    fall back to the checker's generic state-materialising path, which keeps
    the legacy semantics but cannot shard or spill.
    """
    if isinstance(automaton, PartialReversal):
        return PartialReversalExpander(automaton, single_actions_only)
    if isinstance(automaton, OneStepPartialReversal):
        return OneStepPRExpander(automaton)
    if isinstance(automaton, NewPartialReversal):
        return NewPRExpander(automaton)
    if isinstance(automaton, FullReversal):
        return FullReversalExpander(automaton)
    return None


# ----------------------------------------------------------------------
# visited set with optional disk spill
# ----------------------------------------------------------------------
class VisitedSet:
    """Signature deduplication set with optional sorted-run disk spill.

    Without a ``spill_threshold`` this is a thin wrapper over a Python set.
    With one, the in-memory set is flushed to a sorted fixed-width run file
    (big-endian ``key_bytes`` records, so byte order equals numeric order)
    every time it reaches the threshold, and membership checks fall back to a
    binary search over each run with ``O(log n)`` seeks.  Runs are mutually
    disjoint by construction — a signature is only ever added after missing
    both the memory set and every run — so :meth:`__len__` stays exact.
    """

    def __init__(
        self,
        key_bytes: Optional[int] = None,
        spill_threshold: Optional[int] = None,
        spill_dir: Optional[str] = None,
    ):
        if spill_threshold is not None:
            if spill_threshold < 1:
                raise ValueError("spill_threshold must be positive")
            if key_bytes is None:
                raise ValueError(
                    "disk spill needs a fixed signature width (key_bytes); "
                    "the generic exploration path cannot spill"
                )
        self._memory: set = set()
        self._key_bytes = key_bytes
        self._threshold = spill_threshold
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._created_dir: Optional[Path] = None  # auto temp dir, removed on close
        self._runs: List[Tuple[Path, int, object]] = []  # (path, count, handle)
        self._spilled_total = 0

    # -- membership -----------------------------------------------------
    def add(self, sig) -> bool:
        """Insert ``sig``; returns ``True`` iff it was not present before."""
        if sig in self._memory:
            return False
        if self._runs and self._in_runs(sig):
            return False
        self._memory.add(sig)
        if self._threshold is not None and len(self._memory) >= self._threshold:
            self._spill()
        return True

    def __contains__(self, sig) -> bool:
        return sig in self._memory or (bool(self._runs) and self._in_runs(sig))

    def __len__(self) -> int:
        return len(self._memory) + self._spilled_total

    def __iter__(self) -> Iterator:
        yield from self._memory
        width = self._key_bytes
        for path, count, _handle in self._runs:
            data = path.read_bytes()
            for k in range(count):
                yield int.from_bytes(data[k * width:(k + 1) * width], "big")

    @property
    def spilled_runs(self) -> int:
        """Number of on-disk runs written so far."""
        return len(self._runs)

    # -- spill plumbing -------------------------------------------------
    def _spill(self) -> None:
        if self._spill_dir is None:
            import tempfile

            self._spill_dir = Path(tempfile.mkdtemp(prefix="repro-visited-"))
            self._created_dir = self._spill_dir
        self._spill_dir.mkdir(parents=True, exist_ok=True)
        width = self._key_bytes
        path = self._spill_dir / f"run-{len(self._runs):05d}.bin"
        ordered = sorted(self._memory)
        with path.open("wb") as handle:
            for sig in ordered:
                handle.write(sig.to_bytes(width, "big"))
        self._runs.append((path, len(ordered), path.open("rb")))
        self._spilled_total += len(ordered)
        self._memory.clear()

    def _in_runs(self, sig) -> bool:
        width = self._key_bytes
        key = sig.to_bytes(width, "big")
        for _path, count, handle in self._runs:
            lo, hi = 0, count - 1
            while lo <= hi:
                mid = (lo + hi) // 2
                handle.seek(mid * width)
                record = handle.read(width)
                if record == key:
                    return True
                if record < key:
                    lo = mid + 1
                else:
                    hi = mid - 1
        return False

    def close(self) -> None:
        """Close spill-run handles and delete the scratch run files.

        The runs are useless without the live handles, so they are removed;
        an auto-created temp directory is removed with them (a caller-chosen
        ``spill_dir`` itself is left in place).
        """
        for path, _count, handle in self._runs:
            handle.close()
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best-effort scratch cleanup
                pass
        self._runs.clear()
        self._spilled_total = 0
        if self._created_dir is not None:
            import shutil

            shutil.rmtree(self._created_dir, ignore_errors=True)
            self._created_dir = None
